//! # clusterio — reproduction of "Kernel-Level Caching for Optimizing I/O
//! by Exploiting Inter-Application Data Sharing" (CLUSTER 2002)
//!
//! This umbrella crate re-exports the whole system:
//!
//! * [`kcache`] — the paper's contribution: the per-node shared kernel
//!   cache module (buffer manager, flusher, harvester, socket-FSM
//!   interception, sync-write coherence).
//! * [`pvfs`] — the PVFS substrate (mgr, iods, libpvfs client).
//! * [`sim_core`] / [`sim_net`] / [`sim_disk`] — the deterministic
//!   discrete-event cluster simulator underneath.
//! * [`workload`] — the paper's parameterized micro-benchmark.
//! * [`cluster`] — cluster assembly, experiment runner, figure drivers.
//!
//! ## Quickstart
//!
//! ```
//! use clusterio::cluster::{run_experiment, ClusterSpec};
//! use clusterio::kcache::CacheConfig;
//! use clusterio::workload::{AppSpec, Mode};
//! use clusterio::sim_net::NodeId;
//! use clusterio::sim_core::Dur;
//!
//! // One 4-process application instance, 50% locality, on the paper's
//! // 6-node cluster with the 1.2 MB per-node cache module installed.
//! let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
//! let apps = vec![AppSpec {
//!     name: "quick".into(),
//!     nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
//!     total_bytes: 1 << 20,
//!     request_size: 64 << 10,
//!     mode: Mode::Read,
//!     locality: 0.5,
//!     sharing: 0.0,
//!     hotspot: 0.0,
//!     shared_file: "shared".into(),
//!     file_size: 8 << 20,
//!     start_delay: Dur::ZERO,
//!     min_requests: 1,
//!     phases: Vec::new(),
//! }];
//! let result = run_experiment(&spec, &apps);
//! assert!(result.completed);
//! assert_eq!(result.total_verify_failures(), 0);
//! ```

pub use cluster_harness as cluster;
pub use kcache;
pub use pvfs;
pub use sim_core;
pub use sim_disk;
pub use sim_net;
pub use workload;
