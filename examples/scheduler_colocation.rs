//! The paper's scheduling question (§4.2.4): given two applications that
//! share data, should the scheduler give each its own nodes (parallelism)
//! or co-locate them on the same nodes (inter-application caching)?
//!
//! This example runs both placements across locality levels and prints the
//! decision the paper's Figure 8 motivates — co-location frees half the
//! cluster for other jobs, and with enough locality it is also *faster*.
//!
//! ```text
//! cargo run --release --example scheduler_colocation
//! ```

use clusterio::cluster::{run_experiment, ClusterSpec};
use clusterio::kcache::CacheConfig;
use clusterio::sim_core::Dur;
use clusterio::sim_net::NodeId;
use clusterio::workload::{AppSpec, Mode};

fn app(name: &str, nodes: Vec<NodeId>, locality: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes,
        total_bytes: 4 << 20,
        request_size: 256 << 10,
        mode: Mode::Read,
        locality,
        sharing: 0.75,
        hotspot: 0.0,
        shared_file: "shared-dataset".into(),
        file_size: 16 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

fn nodes(range: std::ops::Range<u16>) -> Vec<NodeId> {
    range.map(NodeId).collect()
}

fn main() {
    println!("two applications, 75% shared data, 3 processes each, 6-node cluster\n");
    println!(
        "{:<10} {:>20} {:>20} {:>24}",
        "locality", "co-located+cache(s)", "spread, no cache(s)", "scheduler should pick"
    );
    for locality in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // Option 1: co-locate on nodes 0-2 with the cache module; nodes 3-5
        // stay free for other jobs.
        let colocated = run_experiment(
            &ClusterSpec::paper(Some(CacheConfig::paper())),
            &[app("a", nodes(0..3), locality), app("b", nodes(0..3), locality)],
        );
        // Option 2: full parallelism, each on its own 3 nodes, no caching.
        let spread = run_experiment(
            &ClusterSpec::paper(None),
            &[app("a", nodes(0..3), locality), app("b", nodes(3..6), locality)],
        );
        assert!(colocated.completed && spread.completed);
        let (c, s) = (colocated.mean_makespan_s(), spread.mean_makespan_s());
        let decision = if c <= s {
            "CO-LOCATE (faster AND frees 3 nodes)"
        } else if c <= s * 1.15 {
            "co-locate (within 15%, frees 3 nodes)"
        } else {
            "spread (parallelism wins)"
        };
        println!("{:<10.2} {:>20.4} {:>20.4}   {}", locality, c, s, decision);
    }
    println!("\nwith locality, inter-application caching can supplant parallelism —");
    println!("the paper's headline scheduling result (§4.2.4).");
}
