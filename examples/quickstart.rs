//! Quickstart: build the paper's 6-node cluster, run one I/O-intensive
//! application with and without the kernel cache module, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- \
//!     --trace-out trace.json --metrics-out metrics.json
//! ```
//!
//! The optional flags enable federated `kcache-obs` telemetry for the
//! cached run — one hub per node, merged by `ClusterObs` — and export
//! the Chrome-trace (`chrome://tracing` / Perfetto; `pid` lanes are
//! nodes) and metrics JSON (cluster rollup + per-node breakdown).
//! Telemetry changes no cache decision — the comparison stands.

use clusterio::cluster::{run_experiment, ClusterSpec};
use clusterio::kcache::obs::ClusterObs;
use clusterio::kcache::CacheConfig;
use clusterio::sim_core::Dur;
use clusterio::sim_net::NodeId;
use clusterio::workload::{AppSpec, Mode};

fn main() {
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = args.next(),
            "--metrics-out" => metrics_out = args.next(),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: quickstart [--trace-out FILE] [--metrics-out FILE]");
                std::process::exit(2);
            }
        }
    }
    let telemetry = trace_out.is_some() || metrics_out.is_some();
    let app = AppSpec {
        name: "quickstart".into(),
        // p = 4 processes, one per node.
        nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        total_bytes: 4 << 20,
        request_size: 64 << 10,
        mode: Mode::Read,
        locality: 0.8, // most requests re-reference recently-read data
        sharing: 0.0,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: 16 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    };

    println!(
        "workload: {} MB in {} KB requests, p=4, locality=0.8\n",
        app.total_bytes >> 20,
        app.request_size >> 10
    );

    let mut obs = None;
    for (label, cache) in [
        ("original PVFS (no caching)", None),
        ("with kernel cache module", Some(CacheConfig::paper())),
    ] {
        let cached = cache.is_some();
        let mut spec = ClusterSpec::paper(cache);
        if cached && telemetry {
            // One hub per node, federated: trace pids separate by node
            // and the metrics export carries a per-node breakdown.
            let cluster = ClusterObs::per_node(
                spec.n_nodes as usize,
                clusterio::kcache::obs::DEFAULT_TRACE_CAPACITY,
            );
            spec.obs = Some(cluster.clone());
            obs = Some(cluster);
        }
        let r = run_experiment(&spec, std::slice::from_ref(&app));
        assert!(r.completed, "run did not complete");
        assert_eq!(r.total_verify_failures(), 0, "data corruption detected");
        println!("{label}:");
        println!("  completion time      : {:.4} s", r.mean_makespan_s());
        println!("  per-request latency  : {:.3} ms", r.mean_read_latency_s() * 1e3);
        println!("  network payload bytes: {}", r.fabric.payload_bytes);
        if let Some(hit) = r.hit_ratio() {
            println!("  cache hit ratio      : {:.1}%", hit * 100.0);
        }
        println!();
    }

    if let Some(cluster) = &obs {
        if let Some(p) = &metrics_out {
            std::fs::write(p, cluster.metrics_json()).expect("write metrics");
            println!("metrics written to {p}");
        }
        if let Some(p) = &trace_out {
            std::fs::write(p, cluster.chrome_trace_json()).expect("write trace");
            println!("trace written to {p}");
        }
    }
}
