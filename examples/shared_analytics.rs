//! The paper's motivating scenario (Figure 1): a computational-science
//! analysis cycle where several applications work over the *same* dataset
//! at the same time — here, a visualization pass and a statistics pass
//! both scanning one shared simulation output file, time-shared on the
//! same nodes.
//!
//! The per-node cache module lets one application's fetches feed the
//! other's reads; this example quantifies that.
//!
//! ```text
//! cargo run --release --example shared_analytics
//! ```

use clusterio::cluster::{run_experiment, ClusterSpec};
use clusterio::kcache::CacheConfig;
use clusterio::sim_core::Dur;
use clusterio::sim_net::NodeId;
use clusterio::workload::{AppSpec, Mode};

fn analysis_app(name: &str, sharing: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        total_bytes: 4 << 20,
        request_size: 256 << 10,
        mode: Mode::Read,
        locality: 0.3,
        sharing,
        hotspot: 0.0,
        shared_file: "simulation-output".into(),
        file_size: 16 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

fn main() {
    println!("two analysis applications scanning one simulation output,");
    println!("time-shared on the same 4 nodes (256 KB requests, 4 MB each)\n");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>12}",
        "sharing of dataset", "no caching(s)", "caching(s)", "speedup", "hit+wait%"
    );
    for sharing in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let apps = vec![analysis_app("viz", sharing), analysis_app("stats", sharing)];

        let plain = run_experiment(&ClusterSpec::paper(None), &apps);
        let cached = run_experiment(&ClusterSpec::paper(Some(CacheConfig::paper())), &apps);
        assert!(plain.completed && cached.completed);
        assert_eq!(cached.total_verify_failures(), 0);

        let m = cached.module.as_ref().unwrap();
        let c = cached.cache.as_ref().unwrap();
        let reuse = (c.hits + m.dedup_blocks) as f64
            / (c.hits + m.dedup_blocks + m.blocks_fetched).max(1) as f64;
        println!(
            "{:<22} {:>14.4} {:>14.4} {:>11.2}x {:>11.1}%",
            format!("{}%", (sharing * 100.0) as u32),
            plain.mean_makespan_s(),
            cached.mean_makespan_s(),
            plain.mean_makespan_s() / cached.mean_makespan_s(),
            reuse * 100.0
        );
    }
    println!("\nthe more the applications overlap on the dataset, the more one");
    println!("application's fetches feed the other's reads (the paper's §4.2.3).");
}
