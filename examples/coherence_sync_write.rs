//! The coherence extension (§3.2): by default, reads may return stale
//! cached data after another node writes; the special **sync-write**
//! propagates the write and invalidates every other node's cached copies
//! through the per-block directory kept at the iods.
//!
//! This example runs a writer and a concurrent reader population over one
//! file, first with plain write-behind, then with sync-writes, and shows
//! the invalidation traffic doing its job.
//!
//! ```text
//! cargo run --release --example coherence_sync_write
//! ```

use clusterio::cluster::{run_experiment, ClusterSpec};
use clusterio::kcache::CacheConfig;
use clusterio::sim_core::Dur;
use clusterio::sim_net::NodeId;
use clusterio::workload::{AppSpec, Mode};

fn main() {
    for (label, mode) in
        [("plain write-behind", Mode::Write), ("coherent sync-write", Mode::SyncWrite)]
    {
        // Readers on nodes 2-3 populate their caches first; the writer on
        // nodes 0-1 then updates the same file.
        let readers = AppSpec {
            name: "readers".into(),
            nodes: vec![NodeId(2), NodeId(3)],
            total_bytes: 2 << 20,
            request_size: 128 << 10,
            mode: Mode::Read,
            locality: 0.9,
            sharing: 1.0,
            hotspot: 0.0,
            shared_file: "hot-file".into(),
            file_size: 8 << 20,
            start_delay: Dur::ZERO,
            min_requests: 1,
            phases: Vec::new(),
        };
        let writer = AppSpec {
            name: "writer".into(),
            nodes: vec![NodeId(0), NodeId(1)],
            total_bytes: 1 << 20,
            request_size: 128 << 10,
            mode,
            locality: 0.0,
            sharing: 1.0,
            hotspot: 0.0,
            shared_file: "hot-file".into(),
            file_size: 8 << 20,
            start_delay: Dur::millis(200),
            min_requests: 1,
            phases: Vec::new(),
        };
        let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
        let r = run_experiment(&spec, &[readers, writer]);
        assert!(r.completed);
        let m = r.module.as_ref().unwrap();
        let c = r.cache.as_ref().unwrap();
        println!("{label}:");
        println!("  writer completion     : {:.4} s", r.instances[1].makespan_s);
        println!("  sync writes issued    : {}", m.sync_writes);
        println!("  invalidations received: {}", m.invalidate_msgs);
        println!("  cached blocks dropped : {} ({} dirty)", c.invalidated, c.invalidated_dirty);
        println!("  directory entries     : {}", r.iod.directory_entries);
        println!();
    }
    println!("sync-writes pay an invalidation round-trip per conflicting block —");
    println!("the price of coherence the paper leaves to applications that need it.");
}
