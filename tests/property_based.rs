//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use kcache::{
    blocks_of_range, span_in_block, AppId, BlockKey, BufferManager, PartitionConfig, Span,
};
use proptest::prelude::*;
use pvfs::{split_ranges, tiles_exactly, ByteRange, Fid, StripeSpec};
use sim_disk::{BlockFs, PageCache};
use sim_net::NodeId;

proptest! {
    /// Striping: any byte range splits into per-iod lists that tile the
    /// range exactly, with every piece on its owning iod.
    #[test]
    fn striping_tiles_exactly(
        unit_pow in 12u32..18, // 4 KB .. 128 KB stripe units
        n_iods in 1u32..9,
        offset in 0u64..(1 << 30),
        len in 1u32..(4 << 20),
    ) {
        let spec = StripeSpec { unit: 1 << unit_pow, n_iods, base: 0 };
        let r = ByteRange::new(offset, len);
        let split = split_ranges(&spec, r);
        prop_assert!(tiles_exactly(&spec, r, &split));
        // Each piece stays within one stripe unit.
        for rs in &split {
            for p in rs {
                prop_assert!(p.len as u64 <= spec.unit as u64);
            }
        }
    }

    /// Block arithmetic: the per-block spans of a range reassemble to
    /// exactly the range's length.
    #[test]
    fn block_spans_cover_range(offset in 0u64..(1 << 24), len in 1u32..(1 << 20)) {
        let total: u64 = blocks_of_range(offset, len)
            .map(|b| span_in_block(b, offset, len).len() as u64)
            .sum();
        prop_assert_eq!(total, len as u64);
        // First span starts at the in-block offset; last ends at the
        // in-block end.
        let first = blocks_of_range(offset, len).next().unwrap();
        prop_assert_eq!(span_in_block(first, offset, len).start as u64, offset % 4096);
    }

    /// Buffer manager conservation: after any operation sequence, frames
    /// are exactly partitioned between the free list and the hash table,
    /// and resident keys are unique.
    #[test]
    fn buffer_manager_conserves_frames(ops in proptest::collection::vec((0u8..5, 0u64..64), 1..300)) {
        let m = BufferManager::builder(16).build();
        let buf = vec![7u8; 4096];
        let mut out = vec![0u8; 4096];
        let mut inflight: Vec<kcache::FlushItem> = Vec::new();
        for (op, blk) in ops {
            let key = BlockKey::new(Fid(1), blk);
            match op {
                0 => { let _ = m.try_read(key, Span::FULL, &mut out); }
                1 => { let _ = m.insert_clean(key, NodeId(0), Span::FULL, &buf); }
                2 => { let _ = m.write(key, NodeId(0), Span::FULL, &buf); }
                3 => { inflight.extend(m.take_dirty(4)); }
                _ => {
                    // Complete any outstanding flushes, then invalidate.
                    for it in inflight.drain(..) {
                        m.flush_complete(it.key, it.span);
                    }
                    let _ = m.invalidate([key]);
                }
            }
            let keys = m.resident_keys();
            let mut uniq = keys.clone();
            uniq.dedup();
            prop_assert_eq!(keys.len(), uniq.len(), "duplicate resident keys");
            prop_assert_eq!(keys.len() + m.free_frames(), 16, "frames not conserved");
        }
    }

    /// Strict partitioning invariants: under any operation sequence by a
    /// mix of quota'd, unquota'd, and unknown applications, no quota'd
    /// app's resident-frame count ever exceeds its quota, total residency
    /// never exceeds the pool, and frames stay conserved.
    #[test]
    fn strict_quotas_never_exceeded(
        ops in proptest::collection::vec((0u8..6, 0u64..48, 0u32..4), 1..300),
    ) {
        const CAP: usize = 16;
        let quotas = [(0u32, 5usize), (1, 7)];
        let m = BufferManager::builder(CAP)
            .watermarks(0, CAP)
            .partitioning(PartitionConfig::strict(quotas))
            .build();
        let buf = vec![3u8; 4096];
        let mut out = vec![0u8; 4096];
        let mut inflight: Vec<kcache::FlushItem> = Vec::new();
        for (op, blk, who) in ops {
            // App 0 and 1 are quota'd, 2 is unlisted, 3 maps to UNKNOWN.
            let app = if who == 3 { AppId::UNKNOWN } else { AppId(who) };
            let key = BlockKey::new(Fid(1), blk);
            match op {
                0 => { let _ = m.try_read_by(key, Span::FULL, &mut out, app); }
                1 | 2 => { let _ = m.insert_clean_by(key, NodeId(0), Span::FULL, &buf, app); }
                3 => { let _ = m.write_by(key, NodeId(0), Span::FULL, &buf, app); }
                4 => { inflight.extend(m.take_dirty(4)); }
                _ => {
                    for it in inflight.drain(..) {
                        m.flush_complete(it.key, it.span);
                    }
                    let _ = m.invalidate([key]);
                }
            }
            for (id, q) in quotas {
                prop_assert!(
                    m.resident_of(AppId(id)) <= q,
                    "app {} holds {} frames over its strict quota {}",
                    id, m.resident_of(AppId(id)), q
                );
            }
            let keys = m.resident_keys();
            prop_assert!(keys.len() <= CAP, "total residency exceeds the pool");
            prop_assert_eq!(keys.len() + m.free_frames(), CAP, "frames not conserved");
        }
    }

    /// Cooperative directory coherence: three node-local caches process a
    /// random operation interleaving while a model directory is fed
    /// exactly what the cache modules publish — installs as additions and
    /// `take_evicted()` (evictions *and* invalidations) as removals.
    /// After every step the directory's per-node view must equal that
    /// node's actual resident set: the delta protocol loses nothing,
    /// regardless of interleaving.
    #[test]
    fn directory_view_tracks_resident_union(
        ops in proptest::collection::vec((0u8..6, 0usize..3, 0u64..48), 1..250),
    ) {
        use std::collections::{HashMap, HashSet};
        let nodes: Vec<BufferManager> = (0..3)
            .map(|_| {
                BufferManager::builder(8)
                    .watermarks(0, 8)
                    .cooperative(Some(kcache::CooperativeConfig::default()))
                    .build()
            })
            .collect();
        // blk -> set of nodes the directory believes cache it.
        let mut dir: HashMap<u64, HashSet<usize>> = HashMap::new();
        let buf = vec![3u8; 4096];
        let mut out = vec![0u8; 4096];
        let mut inflight: Vec<Vec<kcache::FlushItem>> = vec![Vec::new(); 3];
        for (op, node, blk) in ops {
            let m = &nodes[node];
            let key = BlockKey::new(Fid(1), blk);
            let installing = matches!(op, 1..=3);
            match op {
                0 => { let _ = m.try_read(key, Span::FULL, &mut out); }
                1 | 2 => { let _ = m.insert_clean(key, NodeId(0), Span::FULL, &buf); }
                3 => { let _ = m.write(key, NodeId(0), Span::FULL, &buf); }
                4 => { inflight[node].extend(m.take_dirty(4)); }
                _ => {
                    for it in inflight[node].drain(..) {
                        m.flush_complete(it.key, it.span);
                    }
                    let _ = m.invalidate([key]);
                }
            }
            // Publish the node's delta the way a cache module would.
            for k in m.take_evicted() {
                dir.entry(k.blk).or_default().remove(&node);
            }
            if installing && m.contains(key) {
                dir.entry(blk).or_default().insert(node);
            }
            // The directory's view of every node matches reality.
            for (n, mgr) in nodes.iter().enumerate() {
                let believed: std::collections::BTreeSet<u64> = dir
                    .iter()
                    .filter(|(_, who)| who.contains(&n))
                    .map(|(b, _)| *b)
                    .collect();
                let actual: std::collections::BTreeSet<u64> =
                    mgr.resident_keys().into_iter().map(|k| k.blk).collect();
                prop_assert_eq!(
                    believed, actual,
                    "directory diverged from node {}'s residency", n
                );
            }
        }
    }

    /// Reads through the buffer manager always return the bytes most
    /// recently written for the covered span.
    #[test]
    fn buffer_manager_read_your_writes(
        writes in proptest::collection::vec((0u64..8, 0u32..5), 1..40),
    ) {
        let m = BufferManager::builder(32).build();
        // Model: per block, the last written fill value.
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for (i, (blk, _)) in writes.iter().enumerate() {
            let fill = (i % 251) as u8;
            let data = vec![fill; 4096];
            if m.write(BlockKey::new(Fid(1), *blk), NodeId(0), Span::FULL, &data)
                == kcache::WriteOutcome::Absorbed
            {
                model.insert(*blk, fill);
            }
            // Verify all modelled blocks still read back correctly.
            for (b, f) in &model {
                let mut out = vec![0u8; 4096];
                if m.try_read(BlockKey::new(Fid(1), *b), Span::FULL, &mut out) {
                    prop_assert!(out.iter().all(|x| x == f), "stale bytes for block {}", b);
                }
            }
        }
    }

    /// File system: random writes followed by reads return exactly the
    /// written bytes (sparse holes read as zeros).
    #[test]
    fn blockfs_write_read_round_trip(
        writes in proptest::collection::vec((0u64..(1 << 16), 1usize..5000, 0u8..255), 1..20),
    ) {
        let mut fs = BlockFs::new(4096);
        let ino = fs.create("f").unwrap();
        let mut model = vec![None::<u8>; 1 << 17];
        for (off, len, fill) in writes {
            let data = vec![fill; len];
            fs.write(ino, off, &data).unwrap();
            for i in 0..len {
                model[off as usize + i] = Some(fill);
            }
        }
        let size = fs.size(ino).unwrap() as usize;
        let mut out = vec![0xAAu8; size];
        let r = fs.read(ino, 0, &mut out).unwrap();
        prop_assert_eq!(r.bytes, size);
        for i in 0..size {
            let expect = model[i].unwrap_or(0);
            prop_assert_eq!(out[i], expect, "byte {} mismatch", i);
        }
    }

    /// Page cache never exceeds capacity and eviction reports are exact.
    #[test]
    fn pagecache_capacity_invariant(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..500)) {
        let mut pc = PageCache::new(8);
        for (pblk, dirty) in ops {
            if !pc.lookup(pblk) {
                pc.insert(pblk, dirty);
            }
            prop_assert!(pc.len() <= 8);
        }
        let s = pc.stats();
        prop_assert_eq!(
            s.insertions,
            (s.clean_evictions + s.dirty_evictions) + pc.len() as u64
        );
    }

    /// Span algebra: merge of mergeable spans covers both inputs.
    #[test]
    fn span_merge_covers_inputs(a in 0u32..4096, b in 0u32..4096, c in 0u32..4096, d in 0u32..4096) {
        let s1 = Span::new(a.min(b), a.max(b));
        let s2 = Span::new(c.min(d), c.max(d));
        if s1.mergeable(s2) {
            let m = s1.merge(s2);
            prop_assert!(m.covers(s1) && m.covers(s2));
            prop_assert!(m.len() <= s1.len() + s2.len() + 4096, "merge is bounded");
        }
    }
}
