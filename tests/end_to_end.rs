//! End-to-end integration tests across the whole stack: workload →
//! libpvfs → cache module → fabric → iod → page cache → disk, and back.

use cluster_harness::{run_experiment, ClusterSpec};
use kcache::{CacheConfig, CooperativeConfig, DirectoryMode};
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode};

fn app(name: &str, nodes: &[u16], total: u64, d: u32, mode: Mode, l: f64, s: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        total_bytes: total,
        request_size: d,
        mode,
        locality: l,
        sharing: s,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: 8 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

#[test]
fn single_instance_reads_complete_with_verified_data() {
    for caching in [false, true] {
        let spec = ClusterSpec::paper(caching.then(CacheConfig::paper));
        let apps = vec![app("a", &[0, 1, 2, 3], 1 << 20, 64 << 10, Mode::Read, 0.5, 0.0)];
        let r = run_experiment(&spec, &apps);
        assert!(r.completed, "caching={caching} did not finish");
        assert_eq!(r.total_verify_failures(), 0, "caching={caching} corrupted data");
        assert_eq!(r.instances[0].requests, 16 * 4, "16 app requests x 4 processes");
        assert!(r.instances[0].makespan_s > 0.0);
    }
}

#[test]
fn caching_version_hits_with_locality() {
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![app("a", &[0, 1], 1 << 20, 32 << 10, Mode::Read, 1.0, 0.0)];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    let hit = r.hit_ratio().expect("caching run must report hit ratio");
    assert!(hit > 0.8, "l=1 should be nearly all hits, got {hit}");
    let m = r.module.as_ref().unwrap();
    assert!(m.fake_read_acks > 0, "full hits must fake acknowledgments");
}

#[test]
fn zero_locality_misses() {
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    // Partitions far larger than the cache: fresh blocks never revisit.
    let apps = vec![app("a", &[0, 1], 2 << 20, 64 << 10, Mode::Read, 0.0, 0.0)];
    let r = run_experiment(&spec, &apps);
    let hit = r.hit_ratio().unwrap_or(0.0);
    assert!(hit < 0.1, "l=0 single instance should mostly miss, got {hit}");
}

#[test]
fn inter_application_sharing_produces_cross_hits() {
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![
        app("a", &[0, 1], 1 << 20, 64 << 10, Mode::Read, 0.0, 1.0),
        app("b", &[0, 1], 1 << 20, 64 << 10, Mode::Read, 0.0, 1.0),
    ];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    assert_eq!(r.total_verify_failures(), 0);
    let m = r.module.as_ref().unwrap();
    // With two synchronized instances over one shared file, roughly half
    // the blocks should be served by the other instance's fetches (hits or
    // pending-block waits).
    let cross = r.cache.as_ref().unwrap().hits + m.dedup_blocks;
    assert!(
        cross as f64 >= 0.25 * m.blocks_fetched as f64,
        "expected substantial cross-application reuse: hits+dedup={cross}, fetched={}",
        m.blocks_fetched
    );
}

#[test]
fn write_behind_then_read_back_round_trips() {
    // Writes go through the cache (write-behind + flusher); a second
    // instance then reads the same file and must see pattern bytes.
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![
        app("w", &[0, 1], 512 << 10, 64 << 10, Mode::Write, 0.0, 1.0),
        AppSpec {
            start_delay: Dur::secs(3), // after the writer and its flusher
            ..app("r", &[2, 3], 512 << 10, 64 << 10, Mode::Read, 0.0, 1.0)
        },
    ];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    assert_eq!(r.total_verify_failures(), 0, "reader saw non-pattern bytes");
    let m = r.module.as_ref().unwrap();
    assert!(m.flush_msgs > 0, "writer's flusher must have pushed dirty blocks");
}

#[test]
fn sync_writes_complete_under_full_sharing() {
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![
        app("a", &[0, 1], 256 << 10, 32 << 10, Mode::SyncWrite, 0.3, 1.0),
        app("b", &[2, 3], 256 << 10, 32 << 10, Mode::SyncWrite, 0.3, 1.0),
    ];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    let m = r.module.as_ref().unwrap();
    assert!(m.sync_writes > 0);
    assert!(r.iod.sync_writes > 0, "sync writes must reach the iods");
}

#[test]
fn multiprogramming_two_instances_per_node() {
    // Two instances time-sharing the same nodes: both must finish, and the
    // cache stats must reflect both.
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![
        app("a", &[0, 1, 2], 1 << 20, 128 << 10, Mode::Read, 0.5, 0.5),
        app("b", &[0, 1, 2], 1 << 20, 128 << 10, Mode::Read, 0.5, 0.5),
    ];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    assert_eq!(r.instances.len(), 2);
    for i in &r.instances {
        assert!(i.makespan_s > 0.0);
        assert_eq!(i.verify_failures, 0);
    }
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
        let apps = vec![
            app("a", &[0, 1, 2, 3], 1 << 20, 64 << 10, Mode::Read, 0.5, 0.5),
            app("b", &[0, 1, 2, 3], 1 << 20, 64 << 10, Mode::Write, 0.5, 0.5),
        ];
        run_experiment(&spec, &apps)
    };
    let r1 = mk();
    let r2 = mk();
    assert_eq!(r1.events, r2.events, "event counts differ between identical runs");
    assert_eq!(r1.sim_end, r2.sim_end, "end times differ between identical runs");
    for (a, b) in r1.instances.iter().zip(r2.instances.iter()) {
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits(), "makespans differ");
        assert_eq!(a.read_latency_s.to_bits(), b.read_latency_s.to_bits());
    }
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        let mut spec = ClusterSpec::paper(Some(CacheConfig::paper()));
        spec.seed = seed;
        let apps = vec![app("a", &[0, 1], 1 << 20, 64 << 10, Mode::Read, 0.5, 0.5)];
        run_experiment(&spec, &apps)
    };
    let r1 = mk(1);
    let r2 = mk(2);
    assert!(
        r1.sim_end != r2.sim_end || r1.events != r2.events,
        "different seeds should perturb the run"
    );
}

#[test]
fn no_caching_run_reports_no_cache_stats() {
    let spec = ClusterSpec::paper(None);
    let apps = vec![app("a", &[0, 1], 256 << 10, 64 << 10, Mode::Read, 0.0, 0.0)];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    assert!(r.cache.is_none());
    assert!(r.module.is_none());
    assert!(r.hit_ratio().is_none());
}

#[test]
fn network_traffic_shrinks_with_caching_at_high_locality() {
    let run = |cache| {
        let spec = ClusterSpec::paper(cache);
        let apps = vec![app("a", &[0, 1], 2 << 20, 64 << 10, Mode::Read, 1.0, 0.0)];
        run_experiment(&spec, &apps)
    };
    let cached = run(Some(CacheConfig::paper()));
    let plain = run(None);
    assert!(
        cached.fabric.payload_bytes < plain.fabric.payload_bytes / 2,
        "l=1 caching should cut network bytes by far more than half: {} vs {}",
        cached.fabric.payload_bytes,
        plain.fabric.payload_bytes
    );
}

#[test]
fn single_process_single_node_works() {
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![app("solo", &[5], 256 << 10, 16 << 10, Mode::Read, 0.5, 0.0)];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    assert_eq!(r.instances[0].requests, 16);
}

#[test]
fn tiny_and_unaligned_request_sizes() {
    // Sub-block and non-power-of-two request sizes must round-trip
    // correctly through block-granular caching.
    for d in [1000u32, 3000, 5000, 12_345] {
        let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
        let apps = vec![app("a", &[0, 1], 128 << 10, d, Mode::Read, 0.5, 0.0)];
        let r = run_experiment(&spec, &apps);
        assert!(r.completed, "d={d} stalled");
        assert_eq!(r.total_verify_failures(), 0, "d={d} corrupted data");
    }
}

#[test]
fn stale_hints_degrade_to_disk_never_wrong_data() {
    // Hint-mode directory over a deliberately tiny, churning cache: the
    // directory only ever *grows* (hint mode publishes no evictions), so
    // most of what it believes is long gone. Misdirected peer fetches
    // must fall through to disk — degraded performance is acceptable,
    // wrong data never is. The two instances stripe the shared file
    // across the client nodes in opposite orders so partition `k` is
    // cached on two different nodes and the peer tier sees real traffic.
    let mut spec = ClusterSpec::paper(Some(CacheConfig {
        capacity_blocks: 64,
        low_watermark: 6,
        high_watermark: 16,
        cooperative: Some(CooperativeConfig {
            directory: DirectoryMode::Hint,
            singleton_preserving: true,
        }),
        ..CacheConfig::paper()
    }));
    spec.seed = 7;
    let apps = vec![
        app("a", &[0, 1, 2, 3], 1 << 20, 64 << 10, Mode::Read, 0.2, 1.0),
        app("b", &[3, 2, 1, 0], 1 << 20, 64 << 10, Mode::Read, 0.2, 1.0),
    ];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed, "hint-mode run stalled");
    assert_eq!(r.total_verify_failures(), 0, "stale hints must never corrupt data");
    let m = r.module.as_ref().unwrap();
    assert!(m.dir_queries > 0, "cooperative tier never engaged");
    assert!(m.remote_stale_blocks > 0, "a churning hint directory must misdirect some fetches");
    assert!(m.disk_fetch_blocks > 0, "misdirected fetches must land on disk");
    // Hint mode publishes additions only — nothing was ever retracted.
    assert!(m.dir_updates > 0);
}

#[test]
fn write_workload_flushes_all_dirty_eventually() {
    // Write more than the cache can hold so the flusher/harvester must run
    // *during* the workload (a small write burst can finish before the
    // first flusher tick).
    let spec = ClusterSpec::paper(Some(CacheConfig::paper()));
    let apps = vec![app("w", &[0, 1], 4 << 20, 64 << 10, Mode::Write, 0.0, 0.0)];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    let m = r.module.as_ref().unwrap();
    assert!(m.fake_write_acks > 0, "write-behind must fake some acks");
    assert!(r.iod.flush_reqs > 0, "flusher must reach the iods");
    let c = r.cache.as_ref().unwrap();
    assert!(c.flush_blocks > 0, "dirty blocks must have been taken for flushing");
}
