//! Randomized-configuration robustness: many small experiments with
//! arbitrary (but deterministic) knob combinations must all complete
//! without stalls, protocol violations, or data corruption.

use cluster_harness::config::{AdaptiveCfg, AppCfg, ClusterCfg, ExperimentConfig, PhaseCfg};
use cluster_harness::{run_experiment, ClusterSpec};
use kcache::{
    AdaptiveConfig, CacheConfig, EvictPolicy, PartitionConfig, PartitionMode, PolicyKind,
};
use sim_core::{DetRng, Dur};
use sim_net::{NetConfig, NodeId};
use workload::{AppSpec, Mode};

fn random_app(rng: &mut DetRng, idx: u32, n_nodes: u16) -> AppSpec {
    let p = rng.range_inclusive(1, 4) as u16;
    let base = rng.range_inclusive(0, (n_nodes - p) as u64) as u16;
    let modes = [Mode::Read, Mode::Write, Mode::SyncWrite];
    let d_choices = [1000u32, 4096, 10_000, 65_536, 262_144];
    AppSpec {
        name: format!("app{idx}"),
        nodes: (base..base + p).map(NodeId).collect(),
        total_bytes: 256 << 10,
        request_size: d_choices[rng.below(d_choices.len() as u64) as usize],
        mode: modes[rng.below(3) as usize],
        locality: rng.f64(),
        sharing: rng.f64(),
        // Half the apps run skewed so every policy's hot-set logic is
        // exercised under arbitrary knob combinations.
        hotspot: if rng.chance(0.5) { rng.f64() } else { 0.0 },
        shared_file: "shared".into(),
        file_size: 8 << 20,
        start_delay: Dur::millis(rng.below(50)),
        min_requests: 1,
        phases: Vec::new(),
    }
}

/// A random partitioning config over `n_apps` instances: any mode, each
/// app independently quota'd (or not) with an arbitrary in-range quota.
fn random_partitioning(rng: &mut DetRng, n_apps: u32, capacity: usize) -> PartitionConfig {
    let mode =
        [PartitionMode::Shared, PartitionMode::Strict, PartitionMode::Soft][rng.below(3) as usize];
    let mut quotas = std::collections::BTreeMap::new();
    for i in 0..n_apps {
        if rng.chance(0.7) {
            quotas.insert(i, rng.range_inclusive(1, capacity as u64) as usize);
        }
    }
    PartitionConfig { mode, quotas }
}

#[test]
fn randomized_configurations_all_complete_cleanly() {
    for seed in 0..12u64 {
        let mut rng = DetRng::stream(0xF00D, seed);
        let n_apps = rng.range_inclusive(1, 3) as u32;
        let apps: Vec<AppSpec> = (0..n_apps).map(|i| random_app(&mut rng, i, 6)).collect();

        let caching = rng.chance(0.7);
        let mut spec = ClusterSpec::paper(caching.then(|| {
            let capacity_blocks = [75, 300, 600][rng.below(3) as usize];
            CacheConfig {
                capacity_blocks,
                low_watermark: 8,
                high_watermark: 16,
                policy: EvictPolicy {
                    kind: PolicyKind::ALL[rng.below(PolicyKind::ALL.len() as u64) as usize],
                    clean_first: rng.chance(0.8),
                },
                partitioning: random_partitioning(&mut rng, n_apps, capacity_blocks),
                write_behind: rng.chance(0.8),
                // A third of the caching runs wrap the policy in the
                // adaptive meta-policy with a random candidate subset.
                adaptive: rng.chance(0.33).then(|| {
                    let n = rng.range_inclusive(1, 4) as usize;
                    let mut cfg =
                        AdaptiveConfig::new((0..n).map(|_| PolicyKind::ALL[rng.below(6) as usize]));
                    cfg.hysteresis = rng.f64() * 0.1;
                    cfg.quota_tuning = rng.chance(0.5);
                    cfg.quota_step = rng.range_inclusive(1, 16) as usize;
                    cfg
                }),
                epoch_accesses: [0, 32, 128, 512][rng.below(4) as usize],
                ..CacheConfig::paper()
            }
        }));
        if rng.chance(0.3) {
            spec.net = NetConfig::switch_100mbps();
        }
        spec.seed = seed;

        let r = run_experiment(&spec, &apps);
        assert!(
            r.completed,
            "seed {seed}: experiment stalled (apps: {:?})",
            apps.iter().map(|a| (&a.name, a.request_size, a.mode)).collect::<Vec<_>>()
        );
        // Read verification only applies where reads happen; writers write
        // pattern bytes so mixed runs stay verifiable too.
        assert_eq!(r.total_verify_failures(), 0, "seed {seed}: data corruption");
        for i in &r.instances {
            assert!(i.requests > 0, "seed {seed}: instance {} did no work", i.name);
        }
    }
}

#[test]
fn degenerate_cache_sizes_survive() {
    // One-block and two-block caches exercise the eviction/throttle edge
    // paths on every single request.
    for cap in [1usize, 2, 3] {
        let spec = {
            let mut s = ClusterSpec::paper(Some(CacheConfig {
                capacity_blocks: cap,
                low_watermark: 0,
                high_watermark: cap.min(1),
                ..CacheConfig::paper()
            }));
            s.seed = cap as u64;
            s
        };
        let apps = vec![AppSpec {
            name: "tiny".into(),
            nodes: vec![NodeId(0), NodeId(1)],
            total_bytes: 128 << 10,
            request_size: 16 << 10,
            mode: Mode::Read,
            locality: 0.5,
            sharing: 0.0,
            hotspot: 0.0,
            shared_file: "shared".into(),
            file_size: 4 << 20,
            start_delay: Dur::ZERO,
            min_requests: 1,
            phases: Vec::new(),
        }];
        let r = run_experiment(&spec, &apps);
        assert!(r.completed, "cap={cap} stalled");
        assert_eq!(r.total_verify_failures(), 0, "cap={cap} corrupted data");
    }
}

#[test]
fn write_saturation_under_tiny_cache_throttles_not_stalls() {
    let spec = {
        let mut s = ClusterSpec::paper(Some(CacheConfig {
            capacity_blocks: 8,
            low_watermark: 1,
            high_watermark: 2,
            ..CacheConfig::paper()
        }));
        s.seed = 99;
        s
    };
    let apps = vec![AppSpec {
        name: "burst".into(),
        nodes: vec![NodeId(0)],
        total_bytes: 1 << 20,
        request_size: 64 << 10,
        mode: Mode::Write,
        locality: 0.0,
        sharing: 0.0,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: 4 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed);
    let c = r.cache.as_ref().unwrap();
    assert!(
        c.writes_passthrough > 0,
        "a 32 KB cache under a 1 MB write burst must throttle to pass-through"
    );
}

/// Random partitioning (and, since PR 4, adaptive-policy) JSON configs
/// round-trip through serde and lower to the configuration they describe;
/// pre-PR-3 configs (no partitioning fields anywhere) keep parsing to the
/// shared pool.
#[test]
fn partitioning_configs_round_trip_through_json() {
    for seed in 0..20u64 {
        let mut rng = DetRng::stream(0xCAFE, seed);
        let n_apps = rng.range_inclusive(1, 3) as u32;
        let mode = ["shared", "strict", "soft"][rng.below(3) as usize];
        // A third of the configs run the adaptive meta-policy with a
        // random candidate list and epoch/tuner knobs.
        let adaptive = rng.chance(0.33);
        let policy: String = if adaptive {
            "adaptive".into()
        } else {
            PolicyKind::ALL[rng.below(6) as usize].name().into()
        };
        let adaptive_cfg = if adaptive {
            AdaptiveCfg {
                candidates: (0..rng.range_inclusive(0, 3))
                    .map(|_| PolicyKind::ALL[rng.below(6) as usize].name().to_string())
                    .collect(),
                epoch_accesses: [0, 64, 256][rng.below(3) as usize],
                hysteresis: rng.f64() * 0.1,
                quota_tuning: rng.chance(0.5),
                quota_step: rng.range_inclusive(1, 16) as usize,
                quota_floor: rng.range_inclusive(1, 8) as usize,
            }
        } else {
            AdaptiveCfg::default()
        };
        let cfg = ExperimentConfig {
            cluster: ClusterCfg {
                nodes: 4,
                seed,
                cache_blocks: 300,
                policy,
                partitioning: mode.into(),
                adaptive: adaptive_cfg,
                ..ClusterCfg::default()
            },
            apps: (0..n_apps)
                .map(|i| AppCfg {
                    name: format!("app{i}"),
                    nodes: vec![0],
                    total_mb: 1,
                    request_kb: 64,
                    mode: "read".into(),
                    locality: rng.f64(),
                    sharing: 0.0,
                    hotspot: 0.0,
                    start_delay_ms: 0,
                    quota_blocks: if rng.chance(0.6) {
                        rng.range_inclusive(1, 300) as usize
                    } else {
                        0
                    },
                    // Some apps carry a phase schedule through JSON too.
                    phases: if rng.chance(0.3) {
                        vec![
                            PhaseCfg {
                                requests: rng.range_inclusive(4, 32),
                                locality: rng.f64(),
                                sharing: 0.0,
                                hotspot: rng.f64(),
                            },
                            PhaseCfg {
                                requests: rng.range_inclusive(4, 32),
                                locality: 0.0,
                                sharing: rng.f64(),
                                hotspot: 0.0,
                            },
                        ]
                    } else {
                        Vec::new()
                    },
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&cfg).expect("serialize config");
        let back = ExperimentConfig::from_json(&json).expect("re-parse config");
        assert_eq!(back, cfg, "seed {seed}: JSON round-trip changed the config");
        let part = back.partitioning().expect("lower partitioning");
        assert_eq!(part.mode, PartitionMode::parse(mode).unwrap());
        for (i, a) in cfg.apps.iter().enumerate() {
            assert_eq!(
                part.quotas.get(&(i as u32)).copied(),
                (a.quota_blocks > 0).then_some(a.quota_blocks),
                "seed {seed}: quota for app {i} lost in lowering"
            );
        }
        // The lowered spec must actually build and run.
        let (spec, apps) = back.to_spec().expect("lower spec");
        let r = run_experiment(&spec, &apps);
        assert!(r.completed, "seed {seed}: lowered config stalled");
        assert_eq!(r.total_verify_failures(), 0, "seed {seed}: data corruption");
    }
}

/// A config written before partitioning existed — no `partitioning`, no
/// `quota_blocks`, not even a `policy` — parses to the exact defaults
/// (shared pool, clock) and still runs.
#[test]
fn pre_partitioning_json_still_parses_and_runs() {
    let cfg = ExperimentConfig::from_json(
        r#"{
            "cluster": { "nodes": 4, "caching": true, "seed": 7 },
            "apps": [
                { "name": "legacy", "nodes": [0, 1], "total_mb": 1,
                  "request_kb": 64, "mode": "read", "locality": 0.5 }
            ]
        }"#,
    )
    .expect("legacy config must parse");
    assert_eq!(cfg.cluster.partitioning, "shared");
    assert_eq!(cfg.cluster.policy, "clock");
    assert!(cfg.apps.iter().all(|a| a.quota_blocks == 0));
    let (spec, apps) = cfg.to_spec().unwrap();
    assert!(!spec.cache.as_ref().unwrap().partitioning.is_partitioned());
    let r = run_experiment(&spec, &apps);
    assert!(r.completed && r.total_verify_failures() == 0);
}
