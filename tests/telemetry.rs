//! Cluster telemetry plane, end to end: federated per-node hubs must
//! agree with a single shared hub on every total, cooperative fetches
//! must export as cross-node Chrome-trace flows, and the telemetry
//! report must surface per-node breakdowns plus SLO percentiles.

use cluster_harness::{run_experiment, ClusterSpec, TelemetryReport};
use kcache::obs::{ClusterObs, Phase, DEFAULT_TRACE_CAPACITY};
use kcache::{CacheConfig, CooperativeConfig, DirectoryMode, ObsHub};
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode};

fn app(name: &str, nodes: &[u16], total: u64, mode: Mode, l: f64, s: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        total_bytes: total,
        request_size: 64 << 10,
        mode,
        locality: l,
        sharing: s,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: 8 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

/// A small cooperative cache config: tiny enough to churn (peer + disk
/// traffic on both tiers), hint-mode directory so the mgr lane sees
/// lookups.
fn coop_cache() -> CacheConfig {
    CacheConfig {
        capacity_blocks: 64,
        low_watermark: 6,
        high_watermark: 16,
        cooperative: Some(CooperativeConfig {
            directory: DirectoryMode::Hint,
            singleton_preserving: true,
        }),
        ..CacheConfig::paper()
    }
}

/// Two instances striping the shared file in opposite node orders, so
/// partition `k` is cached on two different nodes and the peer tier
/// sees real traffic.
fn coop_apps() -> Vec<AppSpec> {
    vec![
        app("a", &[0, 1, 2, 3], 1 << 20, Mode::Read, 0.2, 1.0),
        app("b", &[3, 2, 1, 0], 1 << 20, Mode::Read, 0.2, 1.0),
    ]
}

#[test]
fn federated_per_node_totals_match_shared_hub_totals() {
    // The same deterministic workload, observed two ways: one hub shared
    // by every module vs one hub per node federated by ClusterObs. The
    // topology must not change what is counted — rollup counters and
    // histogram totals have to agree exactly. (Gauges legitimately
    // differ: concurrent modules clobber one shared gauge cell, which is
    // exactly the artifact federation removes.)
    let mut shared_spec = ClusterSpec::paper(Some(CacheConfig {
        obs: Some(ObsHub::new(DEFAULT_TRACE_CAPACITY)),
        ..coop_cache()
    }));
    shared_spec.seed = 7;
    let shared_run = run_experiment(&shared_spec, &coop_apps());
    assert!(shared_run.completed);
    let shared = shared_run.obs.as_ref().expect("shared hub wraps into a ClusterObs");
    assert!(shared.is_shared());
    let shared_rollup = shared.rollup();

    let mut fed_spec = ClusterSpec::paper(Some(coop_cache()));
    fed_spec.seed = 7;
    fed_spec.obs = Some(ClusterObs::per_node(fed_spec.n_nodes as usize, DEFAULT_TRACE_CAPACITY));
    let fed_run = run_experiment(&fed_spec, &coop_apps());
    assert!(fed_run.completed);
    let fed = fed_run.obs.as_ref().expect("federated spec carries its ClusterObs");
    assert!(!fed.is_shared());
    let fed_rollup = fed.rollup();

    assert_eq!(
        shared_rollup.counters, fed_rollup.counters,
        "per-node counter totals must match the shared hub"
    );
    assert_eq!(
        shared_rollup.histograms.keys().collect::<Vec<_>>(),
        fed_rollup.histograms.keys().collect::<Vec<_>>()
    );
    for (name, s) in &shared_rollup.histograms {
        let f = &fed_rollup.histograms[name];
        assert_eq!((s.count, s.sum), (f.count, f.sum), "histogram {name} diverged");
        assert_eq!(s.buckets, f.buckets, "histogram {name} bucket shape diverged");
    }
    // Same workload, same SLO sketches.
    let s_slo = shared_run.slo.as_ref().expect("telemetry run reports SLO lines");
    let f_slo = fed_run.slo.as_ref().unwrap();
    assert_eq!(s_slo.len(), f_slo.len());
    for (a, b) in s_slo.iter().zip(f_slo) {
        assert_eq!(
            (a.class.as_str(), a.samples, a.p99_ns),
            (b.class.as_str(), b.samples, b.p99_ns)
        );
    }
}

#[test]
fn cooperative_run_exports_cross_node_flows_that_pair_start_to_finish() {
    let mut spec = ClusterSpec::paper(Some(coop_cache()));
    spec.seed = 7;
    spec.obs = Some(ClusterObs::per_node(spec.n_nodes as usize, DEFAULT_TRACE_CAPACITY));
    let r = run_experiment(&spec, &coop_apps());
    assert!(r.completed);
    assert!(r.module.as_ref().unwrap().remote_hit_blocks > 0, "peer tier never engaged");

    let cluster = r.obs.as_ref().unwrap();
    assert_eq!(cluster.trace_dropped(), 0, "rings must keep up for pairing to be checkable");
    let events = cluster.drain_trace();
    assert!(!events.is_empty());

    let mut starts: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    let mut steps: std::collections::BTreeMap<u64, Vec<u32>> = std::collections::BTreeMap::new();
    let mut ends: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for e in &events {
        match e.phase {
            Phase::FlowStart => {
                starts.insert(e.flow_id, e.pid);
            }
            Phase::FlowStep => steps.entry(e.flow_id).or_default().push(e.pid),
            Phase::FlowEnd => {
                ends.insert(e.flow_id);
            }
            _ => {}
        }
    }
    assert!(!starts.is_empty(), "cooperative fetches must open flows");
    // Every conversation funnels through finish_coop, so each flow start
    // has exactly one matching finish.
    for id in starts.keys() {
        assert!(ends.contains(id), "flow {id:#x} started but never finished");
    }
    // At least one flow must stitch across machines: the requester's
    // miss (its node's pid) and a directory-lookup or peer-serve step on
    // a different node's pid.
    let cross =
        starts.iter().any(|(id, pid)| steps.get(id).is_some_and(|s| s.iter().any(|p| p != pid)));
    assert!(cross, "no flow crossed nodes: starts={}, stepped={}", starts.len(), steps.len());

    // The Chrome export carries the flow phases with ids.
    let json = kcache::obs::chrome_trace_json(&events);
    assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
    assert!(json.contains("\"cat\":\"flow\""));
}

#[test]
fn telemetry_report_breaks_out_nodes_and_slo_percentiles() {
    let mut spec = ClusterSpec::paper(Some(coop_cache()));
    spec.seed = 7;
    spec.obs = Some(ClusterObs::per_node(spec.n_nodes as usize, DEFAULT_TRACE_CAPACITY));
    let r = run_experiment(&spec, &coop_apps());
    assert!(r.completed);

    let report = TelemetryReport::from_run(&r).expect("telemetry run yields a report");
    assert_eq!(report.nodes.len(), spec.n_nodes as usize);
    // Rollup counters are the sum of the per-node breakdown.
    for (name, total) in &report.counters {
        let sum: u64 = report.nodes.iter().filter_map(|n| n.counters.get(name)).sum();
        assert_eq!(*total, sum, "rollup counter {name} != sum over nodes");
    }
    // Fetch-latency percentiles per traffic tier, ordered and targeted.
    assert!(!report.slo.is_empty(), "caching traffic must produce SLO lines");
    for line in &report.slo {
        assert!(line.samples > 0, "class {} reported without samples", line.class);
        assert!(line.p50_ns <= line.p95_ns && line.p95_ns <= line.p99_ns);
        assert!(line.target_p99_ns > 0);
        assert!((0.0..=1.0).contains(&line.burn_ratio));
    }
    assert!(
        report.slo.iter().any(|l| l.class == "peer"),
        "cooperative traffic must surface the peer tier"
    );
    // Histogram digests expose ordered percentiles too.
    let (name, h) = report
        .histograms
        .iter()
        .find(|(_, h)| h.count > 0)
        .expect("at least one populated histogram");
    assert!(h.p50 <= h.p95 && h.p95 <= h.p99, "{name} percentiles out of order");
}
