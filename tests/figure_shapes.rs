//! Shape tests: pin the *qualitative* claims of every figure in the
//! paper's evaluation on a reduced grid, so a regression that flips a
//! conclusion fails CI even though absolute numbers are free to move.

use cluster_harness::figures::{fig4, fig5, fig6, fig8, Grid};

fn grid() -> Grid {
    Grid::smoke()
}

#[test]
fn fig4a_read_overhead_is_small() {
    let figs = fig4(&grid());
    let f = &figs[0];
    let caching = f.column("caching").unwrap();
    let plain = f.column("no caching").unwrap();
    for (i, (&c, &p)) in caching.iter().zip(plain.iter()).enumerate() {
        assert!(c < p * 1.35, "fig4a row {}: caching read overhead too large ({} vs {})", i, c, p);
    }
}

#[test]
fn fig4b_writes_win_and_converge() {
    // Saturating the 1.2 MB cache needs enough written data at the largest
    // d: with min_requests=32, d=1M writes 32 MB per instance.
    let g = Grid {
        d_values: vec![16 << 10, 64 << 10, 1 << 20],
        total_bytes: 1 << 20,
        file_size: 8 << 20,
        seed: 42,
    };
    let figs = fig4(&g);
    let f = &figs[1];
    let caching = f.column("caching").unwrap();
    let plain = f.column("no caching").unwrap();
    // Small writes: write-behind wins.
    assert!(
        caching[0] < plain[0],
        "small writes should benefit from write-behind: {} vs {}",
        caching[0],
        plain[0]
    );
    // Large writes: the cache saturates with dirty data awaiting drain and
    // the gap narrows from its peak (the paper's "writes may need to block
    // for availability of cache space").
    let gaps: Vec<f64> = caching.iter().zip(plain.iter()).map(|(c, p)| p / c).collect();
    let peak = gaps[..gaps.len() - 1].iter().cloned().fold(0.0, f64::max);
    let last = *gaps.last().unwrap();
    assert!(
        last < peak,
        "write-behind gap should shrink once the cache saturates: gaps {:?}",
        gaps
    );
}

#[test]
fn fig5_locality_benefit_grows_with_request_size() {
    let figs = fig5(&grid());
    for f in &figs {
        let caching = f.column("caching").unwrap();
        let plain = f.column("no caching").unwrap();
        let last = caching.len() - 1;
        assert!(
            caching[last] < plain[last] * 0.75,
            "{}: l=1 caching should clearly win at the largest size ({} vs {})",
            f.id,
            caching[last],
            plain[last]
        );
        let first_ratio = plain[0] / caching[0];
        let last_ratio = plain[last] / caching[last];
        assert!(
            last_ratio >= first_ratio * 0.9,
            "{}: benefit should grow (or hold) with request size: {}x -> {}x",
            f.id,
            first_ratio,
            last_ratio
        );
    }
}

#[test]
fn fig6_sharing_beats_no_caching_even_without_locality() {
    let figs = fig6(&grid());
    // Subplot (a): l = 0.
    let f = &figs[0];
    let plain = f.column("no caching").unwrap();
    let c100 = f.column("caching 100%").unwrap();
    let last = plain.len() - 1;
    assert!(
        c100[last] < plain[last],
        "fig6a: full sharing should beat no caching at the largest d ({} vs {})",
        c100[last],
        plain[last]
    );
    // Subplot (c): l = 1 — caching must win everywhere.
    let f = &figs[2];
    let plain = f.column("no caching").unwrap();
    for series in ["caching 25%", "caching 100%"] {
        let c = f.column(series).unwrap();
        for i in 0..c.len() {
            assert!(
                c[i] < plain[i] * 1.05,
                "fig6c row {i}: {series} should not lose to no caching ({} vs {})",
                c[i],
                plain[i]
            );
        }
    }
}

#[test]
fn fig6_more_sharing_helps_at_large_requests() {
    let figs = fig6(&grid());
    let f = &figs[0]; // l = 0: the inter-application effect in isolation
    let c25 = f.column("caching 25%").unwrap();
    let c100 = f.column("caching 100%").unwrap();
    let last = c25.len() - 1;
    assert!(
        c100[last] < c25[last],
        "fig6a: 100% sharing should beat 25% at the largest d ({} vs {})",
        c100[last],
        c25[last]
    );
}

#[test]
fn fig8_parallelism_wins_without_locality_but_caching_wins_with_it() {
    let figs = fig8(&grid());
    // (a) l = 0, low sharing: running on 6 distinct nodes must beat
    // co-located caching at the smallest request size (overhead-bound,
    // no locality to exploit).
    let f = &figs[0];
    let disjoint = f.column("no caching (6 distinct nodes)").unwrap();
    let c25 = f.column("caching 25% (3 nodes)").unwrap();
    assert!(
        disjoint[0] < c25[0],
        "fig8a: parallelism should win at l=0/s=25%/small d ({} vs {})",
        disjoint[0],
        c25[0]
    );
    // (c) l = 1: co-located caching must offset the lost parallelism at
    // the largest request size (the paper's scheduling headline).
    let f = &figs[2];
    let disjoint = f.column("no caching (6 distinct nodes)").unwrap();
    let c100 = f.column("caching 100% (3 nodes)").unwrap();
    let last = disjoint.len() - 1;
    assert!(
        c100[last] < disjoint[last],
        "fig8c: caching should beat extra parallelism at l=1 ({} vs {})",
        c100[last],
        disjoint[last]
    );
    // And caching co-located always beats no-caching co-located.
    let same = f.column("no caching (same 3 nodes)").unwrap();
    for i in 0..same.len() {
        assert!(
            c100[i] < same[i] * 1.05,
            "fig8c row {i}: caching must not lose to no-caching on the same nodes"
        );
    }
}
