//! Per-application cache partitioning: the adversarial co-schedule
//! acceptance tests and the quota-equals-capacity differential pins.
//!
//! The adversarial co-schedule pairs a **reuse-heavy victim** (Zipf hot
//! set over its private file) with a **scanner** that streams fresh
//! blocks through the same node's cache. In a shared pool the scanner
//! evicts the victim's hot set; a strict quota walls the victim off; soft
//! borrowing recovers the capacity a strict wall wastes when the
//! co-tenant goes idle.

use cluster_harness::{run_experiment, ClusterSpec, ExperimentResult};
use kcache::{CacheConfig, EvictPolicy, PartitionConfig, PartitionMode, PolicyKind};
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode};

/// The reuse-heavy victim: Zipf(1.0) traffic over a 4 MB private file in
/// 16 KB requests, always application instance 0 on node 0.
fn victim() -> AppSpec {
    AppSpec {
        name: "victim".into(),
        nodes: vec![NodeId(0)],
        total_bytes: 4 << 20,
        request_size: 16 << 10,
        mode: Mode::Read,
        locality: 0.2,
        sharing: 0.0,
        hotspot: 1.0,
        shared_file: "shared".into(),
        file_size: 4 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

/// The scanner: sequential fresh reads in 64 KB requests from its own
/// private file, application instance 1 on the victim's node. `total_mb`
/// sets how aggressive (8 MB = active polluter, 1 MB = mostly idle).
fn scanner(total_mb: u64) -> AppSpec {
    AppSpec {
        name: "scanner".into(),
        nodes: vec![NodeId(0)],
        total_bytes: total_mb << 20,
        request_size: 64 << 10,
        mode: Mode::Read,
        locality: 0.0,
        sharing: 0.0,
        hotspot: 0.0,
        shared_file: "shared".into(),
        file_size: 4 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }
}

/// Run the co-schedule under one partitioning config and return the
/// victim's own hit ratio (per-app attribution from the quota subsystem).
fn victim_hit_ratio(partitioning: PartitionConfig, apps: &[AppSpec]) -> f64 {
    let mut spec = ClusterSpec::paper(Some(CacheConfig { partitioning, ..CacheConfig::paper() }));
    spec.n_nodes = 4;
    spec.seed = 42;
    let r = run_experiment(&spec, apps);
    assert!(r.completed && r.total_verify_failures() == 0);
    r.app_hit_ratio(0).expect("victim produced no attributed traffic")
}

/// Satellite acceptance: under an *active* scanner, a strict quota that
/// covers the victim's hot set strictly improves the victim's hit ratio
/// over the shared pool — the isolation the partitioning subsystem exists
/// to provide.
#[test]
fn strict_quota_protects_victim_from_active_scanner() {
    let apps = vec![victim(), scanner(8)];
    let quotas = [(0u32, 240usize), (1u32, 60usize)];
    let shared = victim_hit_ratio(PartitionConfig::shared(), &apps);
    let strict = victim_hit_ratio(PartitionConfig::strict(quotas), &apps);
    assert!(
        strict > shared,
        "strict quota must strictly beat the shared pool for the victim: \
         strict {strict:.4} vs shared {shared:.4}"
    );
    // Sanity: the scenario is a real contest, not a degenerate one.
    assert!(shared > 0.1 && strict < 0.99, "degenerate ratios: {shared:.4}/{strict:.4}");
}

/// Satellite acceptance: when the scanner is (mostly) idle, soft
/// borrowing beats the strict wall — the victim grows past its quota into
/// the idle capacity a strict partition would waste.
#[test]
fn soft_borrowing_beats_strict_when_scanner_is_idle() {
    let apps = vec![victim(), scanner(1)];
    let quotas = [(0u32, 60usize), (1u32, 240usize)];
    let strict = victim_hit_ratio(PartitionConfig::strict(quotas), &apps);
    let soft = victim_hit_ratio(PartitionConfig::soft(quotas), &apps);
    assert!(
        soft > strict,
        "soft borrowing must beat the strict wall under an idle co-tenant: \
         soft {soft:.4} vs strict {strict:.4}"
    );
}

// ---------------------------------------------------------------------
// Differential: quota == capacity ≡ unpartitioned shared pool.
// ---------------------------------------------------------------------

fn run_single_app(partitioning: PartitionConfig, kind: PolicyKind, mode: Mode) -> ExperimentResult {
    let mut spec = ClusterSpec::paper(Some(CacheConfig {
        policy: EvictPolicy::of(kind),
        partitioning,
        ..CacheConfig::paper()
    }));
    spec.n_nodes = 4;
    spec.seed = 7;
    let apps = vec![AppSpec {
        name: "solo".into(),
        nodes: vec![NodeId(0), NodeId(1)],
        total_bytes: 2 << 20,
        request_size: 64 << 10,
        mode,
        locality: 0.5,
        sharing: 0.0,
        hotspot: 0.8,
        shared_file: "shared".into(),
        file_size: 4 << 20,
        start_delay: Dur::ZERO,
        min_requests: 1,
        phases: Vec::new(),
    }];
    let r = run_experiment(&spec, &apps);
    assert!(r.completed && r.total_verify_failures() == 0);
    r
}

/// Satellite: a single-app cluster whose quota is the whole pool is
/// byte-for-byte equivalent (hits, misses, evictions, the entire cache
/// and policy ledgers) to the unpartitioned shared pool, for every
/// replacement policy and for both strict and soft modes. Partitioning
/// must be pay-for-what-you-use: a quota nobody can exceed changes
/// nothing.
#[test]
fn quota_equals_capacity_is_identical_to_shared_pool_for_every_policy() {
    let cap = CacheConfig::paper().capacity_blocks;
    for kind in PolicyKind::ALL {
        for mode in [Mode::Read, Mode::Write] {
            let base = run_single_app(PartitionConfig::shared(), kind, mode);
            for pmode in [PartitionMode::Strict, PartitionMode::Soft] {
                let part = PartitionConfig { mode: pmode, quotas: [(0, cap)].into() };
                let run = run_single_app(part, kind, mode);
                let (b, r) = (base.cache.as_ref().unwrap(), run.cache.as_ref().unwrap());
                assert_eq!(
                    format!("{b:?}"),
                    format!("{r:?}"),
                    "{kind}/{mode:?}/{pmode:?}: cache stats diverged from the shared pool"
                );
                assert_eq!(
                    base.policy_stats, run.policy_stats,
                    "{kind}/{mode:?}/{pmode:?}: policy ledger diverged from the shared pool"
                );
                assert_eq!(
                    base.sim_end, run.sim_end,
                    "{kind}/{mode:?}/{pmode:?}: simulated time diverged"
                );
                assert_eq!(
                    base.events, run.events,
                    "{kind}/{mode:?}/{pmode:?}: event count diverged"
                );
            }
        }
    }
}

/// Strict quotas never let any app exceed its share, whatever the policy —
/// checked end-to-end through the full cluster (module interception,
/// flusher, harvester), not just the manager API.
#[test]
fn strict_quotas_hold_end_to_end_for_every_policy() {
    for kind in PolicyKind::ALL {
        let quotas = [(0u32, 200usize), (1u32, 100usize)];
        let mut spec = ClusterSpec::paper(Some(CacheConfig {
            policy: EvictPolicy::of(kind),
            partitioning: PartitionConfig::strict(quotas),
            ..CacheConfig::paper()
        }));
        spec.n_nodes = 4;
        spec.seed = 13;
        let apps = vec![victim(), scanner(4)];
        let r = run_experiment(&spec, &apps);
        assert!(r.completed && r.total_verify_failures() == 0, "{kind}");
        let usage = r.app_usage.expect("caching run reports app usage");
        for u in &usage {
            let quota = quotas.iter().find(|(id, _)| *id == u.app).map(|&(_, q)| q as u64);
            if let Some(q) = quota {
                assert!(
                    u.resident <= q,
                    "{kind}: app {} finished holding {} frames over its quota {q}",
                    u.app,
                    u.resident
                );
                assert_eq!(u.quota, q, "{kind}: reported quota mismatch");
            }
        }
    }
}
