//! Acceptance tests for the `kcache-adaptive` subsystem at the full
//! experiment level: the single-candidate differential (an adaptive
//! wrapper with one candidate is byte-for-byte the static policy), an
//! end-to-end phase-shifting run exercising real switches, and quota
//! preservation under the meta-policy.

use cluster_harness::{run_experiment, ClusterSpec};
use kcache::{AdaptiveConfig, CacheConfig, EvictPolicy, PartitionConfig, PolicyKind};
use sim_core::Dur;
use sim_net::NodeId;
use workload::{AppSpec, Mode, PhaseSpec};

fn reader(name: &str, sharing: f64, hotspot: f64) -> AppSpec {
    AppSpec {
        name: name.into(),
        nodes: vec![NodeId(0)],
        total_bytes: 512 << 10,
        request_size: 64 << 10,
        mode: Mode::Read,
        locality: 0.3,
        sharing,
        hotspot,
        shared_file: "shared".into(),
        file_size: 4 << 20,
        start_delay: Dur::ZERO,
        min_requests: 64,
        phases: Vec::new(),
    }
}

fn spec_with(cache: CacheConfig, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::paper(Some(cache));
    spec.seed = seed;
    spec
}

/// Acceptance part (b): `adaptive` with a single candidate is
/// byte-for-byte identical to that static policy — same cache stats, same
/// policy ledger, same hit ratio — for every built-in policy, epochs on.
#[test]
fn adaptive_single_candidate_matches_static_experiment() {
    for kind in PolicyKind::ALL {
        let apps = vec![reader("a", 0.4, 0.9), reader("b", 0.4, 0.9)];
        let stat = CacheConfig {
            policy: EvictPolicy::of(kind),
            epoch_accesses: 256,
            ..CacheConfig::paper()
        };
        let adap = CacheConfig {
            policy: EvictPolicy::of(kind),
            adaptive: Some(AdaptiveConfig::new([kind])),
            epoch_accesses: 256,
            ..CacheConfig::paper()
        };
        let rs = run_experiment(&spec_with(stat, 7), &apps);
        let ra = run_experiment(&spec_with(adap, 7), &apps);
        assert!(rs.completed && ra.completed);
        assert_eq!(rs.total_verify_failures() + ra.total_verify_failures(), 0);
        let (cs, ca) = (rs.cache.as_ref().unwrap(), ra.cache.as_ref().unwrap());
        assert_eq!(
            (cs.hits, cs.misses, cs.insertions, cs.evictions_clean, cs.evictions_dirty),
            (ca.hits, ca.misses, ca.insertions, ca.evictions_clean, ca.evictions_dirty),
            "{kind}: cache stats diverged"
        );
        assert_eq!(rs.policy_stats, ra.policy_stats, "{kind}: policy ledger diverged");
        assert_eq!(rs.hit_ratio(), ra.hit_ratio(), "{kind}: hit ratio diverged");
        assert_eq!(rs.mean_makespan_s(), ra.mean_makespan_s(), "{kind}: timing diverged");
        // Labels tell the runs apart even though behavior is identical.
        assert_eq!(rs.policy.as_deref(), Some(kind.name()));
        assert_eq!(ra.policy.as_deref(), Some("adaptive"));
        let stats = ra.adaptive.as_ref().expect("adaptive run must report adaptive stats");
        assert_eq!(stats.switches, 0, "{kind}: single candidate must never switch");
        assert!(stats.epochs > 0, "{kind}: epochs must tick");
        assert!(rs.adaptive.is_none(), "{kind}: static run must not report adaptive stats");
    }
}

/// End-to-end: a phase-shifting co-schedule under the full candidate set
/// completes cleanly, ticks epochs on every module, keeps the ghost
/// ledgers consistent, and records any switches coherently.
#[test]
fn adaptive_phase_shifting_run_is_coherent() {
    let phases = vec![
        PhaseSpec { requests: 32, locality: 0.2, sharing: 0.0, hotspot: 1.2 },
        PhaseSpec { requests: 32, locality: 0.0, sharing: 0.0, hotspot: 0.0 },
        PhaseSpec { requests: 32, locality: 0.2, sharing: 1.0, hotspot: 0.9 },
    ];
    let mut a = reader("a", 0.0, 0.0);
    let mut b = reader("b", 0.0, 0.0);
    a.phases = phases.clone();
    b.phases = phases.into_iter().rev().collect();
    a.min_requests = 192;
    b.min_requests = 192;
    let cache = CacheConfig {
        policy: EvictPolicy::of(PolicyKind::Clock),
        adaptive: Some(AdaptiveConfig {
            hysteresis: 0.01,
            ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::Lfu, PolicyKind::SharingAware])
        }),
        epoch_accesses: 128,
        ..CacheConfig::paper()
    };
    let r = run_experiment(&spec_with(cache, 11), &[a, b]);
    assert!(r.completed);
    assert_eq!(r.total_verify_failures(), 0);
    assert_eq!(r.policy.as_deref(), Some("adaptive"));
    let stats = r.adaptive.as_ref().expect("adaptive stats");
    assert!(stats.epochs > 0, "no epochs ticked");
    assert_eq!(stats.switches as usize, stats.switch_log.len(), "switch log out of sync");
    for s in &stats.switch_log {
        assert_ne!(s.from, s.to, "switch to the same policy");
        assert!(s.to_rate >= s.from_rate, "switch against the ghost evidence");
    }
    assert_eq!(stats.ghost_rates.len(), 3, "one ghost ledger per candidate");
    let total = r.cache.as_ref().unwrap().hits + r.cache.as_ref().unwrap().misses;
    for g in &stats.ghost_rates {
        assert!(g.hits + g.misses > 0, "{}: ghost saw no traffic", g.kind);
        assert!(
            g.hits + g.misses <= total,
            "{}: ghost saw more accesses than the live cache",
            g.kind
        );
    }
}

/// Strict quotas stay enforced under the meta-policy (tuner off: the
/// partition boundaries themselves must be invariant across switches).
#[test]
fn adaptive_switching_preserves_strict_quotas() {
    let mut a = reader("a", 0.0, 1.1);
    let mut b = reader("b", 0.0, 0.0);
    a.min_requests = 96;
    b.min_requests = 96;
    let cache = CacheConfig {
        policy: EvictPolicy::of(PolicyKind::Clock),
        partitioning: PartitionConfig::strict([(0u32, 180), (1u32, 120)]),
        adaptive: Some(AdaptiveConfig {
            hysteresis: 0.0,
            quota_tuning: false,
            ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru, PolicyKind::Lfu])
        }),
        epoch_accesses: 64,
        ..CacheConfig::paper()
    };
    let r = run_experiment(&spec_with(cache, 13), &[a, b]);
    assert!(r.completed && r.total_verify_failures() == 0);
    let usage = r.app_usage.as_deref().unwrap();
    for u in usage {
        assert!(u.quota > 0, "app {} lost its quota", u.app);
        assert!(
            u.resident <= u.quota,
            "app {}: residency {} exceeds strict quota {} under switching",
            u.app,
            u.resident,
            u.quota
        );
    }
}
