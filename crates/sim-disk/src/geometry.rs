//! Disk service-time model.
//!
//! Classic three-component model: seek (square-root curve over cylinder
//! distance), rotational latency (half a revolution on average, taken as its
//! expectation to keep runs deterministic), and media transfer. Sequential
//! accesses that continue where the head left off skip seek and rotation,
//! which is what makes streaming I/O an order of magnitude faster than
//! random I/O — a ratio the paper's results depend on.

use sim_core::Dur;

/// Parameters of a disk drive.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    /// Spindle speed.
    pub rpm: u32,
    /// Single-cylinder (track-to-track) seek.
    pub min_seek: Dur,
    /// Full-stroke seek.
    pub max_seek: Dur,
    /// Sustained media transfer rate, bytes/second.
    pub media_rate: u64,
    /// Per-request controller + bus overhead.
    pub controller_overhead: Dur,
    /// Total cylinders (for mapping block numbers to head positions).
    pub cylinders: u32,
    /// Capacity in 4 KB blocks.
    pub capacity_blocks: u64,
}

/// Size of a physical disk block in this simulator (matches the Linux page
/// size and the paper's cache block size).
pub const BLOCK_SIZE: usize = 4096;

impl DiskGeometry {
    /// A Maxtor-class 20 GB IDE drive of the paper's era (2001/2002):
    /// 7200 rpm, ~9 ms average seek, ~25 MB/s sustained.
    pub fn maxtor_20gb() -> DiskGeometry {
        DiskGeometry {
            rpm: 7200,
            min_seek: Dur::millis(1),
            max_seek: Dur::micros(17_000),
            media_rate: 25_000_000,
            controller_overhead: Dur::micros(300),
            cylinders: 17_000,
            capacity_blocks: 20 * 1024 * 1024 * 1024 / BLOCK_SIZE as u64,
        }
    }

    /// Time for one full revolution.
    pub fn rotation_time(&self) -> Dur {
        Dur::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Expected rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> Dur {
        self.rotation_time() / 2
    }

    /// Cylinder holding a physical block (blocks striped evenly).
    pub fn cylinder_of(&self, pblk: u64) -> u32 {
        let per_cyl = (self.capacity_blocks / self.cylinders as u64).max(1);
        ((pblk / per_cyl) as u32).min(self.cylinders - 1)
    }

    /// Seek time between two cylinders: `min + (max-min) * sqrt(d/D)`.
    pub fn seek_time(&self, from_cyl: u32, to_cyl: u32) -> Dur {
        let d = from_cyl.abs_diff(to_cyl);
        if d == 0 {
            return Dur::ZERO;
        }
        let frac = (d as f64 / self.cylinders as f64).sqrt();
        let span = self.max_seek.as_nanos().saturating_sub(self.min_seek.as_nanos()) as f64;
        self.min_seek + Dur::nanos((span * frac) as u64)
    }

    /// Media transfer time for `blocks` 4 KB blocks.
    pub fn transfer_time(&self, blocks: u32) -> Dur {
        Dur::from_secs_f64((blocks as u64 * BLOCK_SIZE as u64) as f64 / self.media_rate as f64)
    }

    /// Full service time of a request, given the previous head cylinder and
    /// whether the access continues sequentially from the last one.
    pub fn service_time(&self, from_cyl: u32, pblk: u64, blocks: u32, sequential: bool) -> Dur {
        let mut t = self.controller_overhead + self.transfer_time(blocks);
        if !sequential {
            t += self.seek_time(from_cyl, self.cylinder_of(pblk));
            t += self.avg_rotational_latency();
        }
        t
    }

    /// Average random-access service time for sizing checks.
    pub fn avg_access_time(&self) -> Dur {
        // Average seek distance on a uniform workload is ~1/3 stroke;
        // sqrt(1/3) ≈ 0.577 of the full-stroke fraction.
        let avg_seek = self.min_seek
            + Dur::nanos(
                ((self.max_seek.as_nanos() - self.min_seek.as_nanos()) as f64 * 0.577) as u64,
            );
        avg_seek + self.avg_rotational_latency() + self.controller_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_matches_rpm() {
        let g = DiskGeometry::maxtor_20gb();
        // 7200 rpm = 8.333 ms/rev, 4.167 ms average latency.
        assert_eq!(g.rotation_time(), Dur::nanos(8_333_333));
        assert_eq!(g.avg_rotational_latency(), Dur::nanos(4_166_666));
    }

    #[test]
    fn seek_zero_for_same_cylinder() {
        let g = DiskGeometry::maxtor_20gb();
        assert_eq!(g.seek_time(100, 100), Dur::ZERO);
    }

    #[test]
    fn seek_monotone_in_distance() {
        let g = DiskGeometry::maxtor_20gb();
        let near = g.seek_time(0, 10);
        let mid = g.seek_time(0, g.cylinders / 2);
        let far = g.seek_time(0, g.cylinders - 1);
        assert!(near < mid && mid < far);
        assert!(near >= g.min_seek);
        assert!(far <= g.max_seek + Dur::micros(1));
    }

    #[test]
    fn transfer_time_linear() {
        let g = DiskGeometry::maxtor_20gb();
        let one = g.transfer_time(1);
        assert_eq!(g.transfer_time(10), Dur::nanos(one.as_nanos() * 10));
        // 4 KB at 25 MB/s = 163.84 microseconds.
        assert_eq!(one, Dur::nanos(163_840));
    }

    #[test]
    fn sequential_skips_positioning() {
        let g = DiskGeometry::maxtor_20gb();
        let seq = g.service_time(0, 1_000_000, 8, true);
        let rnd = g.service_time(0, 1_000_000, 8, false);
        assert!(
            rnd > seq + Dur::millis(3),
            "random {} must pay seek+rotation over sequential {}",
            rnd,
            seq
        );
    }

    #[test]
    fn cylinder_mapping_covers_disk() {
        let g = DiskGeometry::maxtor_20gb();
        assert_eq!(g.cylinder_of(0), 0);
        assert_eq!(g.cylinder_of(g.capacity_blocks - 1), g.cylinders - 1);
        // Integer blocks-per-cylinder rounds down, so the midpoint maps a
        // fraction of a percent above the geometric middle.
        let mid = g.cylinder_of(g.capacity_blocks / 2);
        let half = g.cylinders / 2;
        assert!(
            (half..half + g.cylinders / 100).contains(&mid),
            "mid cylinder {} vs half {}",
            mid,
            half
        );
    }

    #[test]
    fn avg_access_in_realistic_range() {
        let g = DiskGeometry::maxtor_20gb();
        let t = g.avg_access_time();
        assert!((Dur::millis(8)..Dur::millis(20)).contains(&t), "unrealistic average access {}", t);
    }
}
