//! The disk actor: a request queue in front of the mechanical model.
//!
//! Requests are (physical block, count) extents. The queue can be served
//! FIFO or with a C-LOOK elevator (ascending sweeps), the policy Linux-era
//! IDE drivers effectively gave the paper's iod nodes. One request is in
//! service at a time; completion posts a [`DiskReply`] to the requester.

use crate::geometry::DiskGeometry;
use sim_core::{Actor, ActorId, Ctx, Dur, LogHistogram, Msg, SimTime, TimeWeighted};
use std::any::Any;
use std::collections::VecDeque;

/// Queue scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskSched {
    Fifo,
    /// C-LOOK elevator: serve ascending block numbers, wrap to the lowest
    /// pending request when the sweep passes the end.
    CLook,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    Read,
    Write,
}

/// A request for the disk actor.
#[derive(Debug)]
pub struct DiskRequest {
    pub op: DiskOp,
    /// First physical 4 KB block.
    pub pblk: u64,
    /// Number of contiguous blocks.
    pub blocks: u32,
    /// Actor to notify on completion.
    pub reply_to: ActorId,
    /// Opaque token echoed in the reply.
    pub token: u64,
}

/// Completion notice.
#[derive(Debug, Clone, Copy)]
pub struct DiskReply {
    pub op: DiskOp,
    pub pblk: u64,
    pub blocks: u32,
    pub token: u64,
    /// Total time the request spent at the disk (queue + service).
    pub latency: Dur,
}

struct Pending {
    req: DiskRequest,
    arrived: SimTime,
}

/// Internal completion event.
struct ServiceDone;

/// Per-disk statistics.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    pub requests: u64,
    pub blocks_read: u64,
    pub blocks_written: u64,
    pub sequential_hits: u64,
    pub busy: Dur,
}

/// The disk actor.
pub struct Disk {
    geom: DiskGeometry,
    sched: DiskSched,
    queue: VecDeque<Pending>,
    in_service: Option<Pending>,
    head_cylinder: u32,
    /// Block immediately after the last serviced extent (sequential
    /// detection).
    next_seq_pblk: u64,
    stats: DiskStats,
    latency: LogHistogram,
    depth: TimeWeighted,
}

impl Disk {
    pub fn new(geom: DiskGeometry, sched: DiskSched) -> Disk {
        Disk {
            geom,
            sched,
            queue: VecDeque::new(),
            in_service: None,
            head_cylinder: 0,
            next_seq_pblk: u64::MAX,
            stats: DiskStats::default(),
            latency: LogHistogram::new(),
            depth: TimeWeighted::new(),
        }
    }

    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latency
    }

    pub fn mean_queue_depth(&self, now: SimTime) -> f64 {
        self.depth.average(now)
    }

    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            0.0
        } else {
            self.stats.busy.as_nanos() as f64 / now.nanos() as f64
        }
    }

    fn pick_next(&mut self) -> Option<Pending> {
        match self.sched {
            DiskSched::Fifo => self.queue.pop_front(),
            DiskSched::CLook => {
                if self.queue.is_empty() {
                    return None;
                }
                // Next request at or above the head position; wrap to the
                // lowest if the sweep is exhausted.
                let here = self.next_seq_pblk;
                let mut best: Option<(usize, u64)> = None;
                let mut lowest: (usize, u64) = (0, u64::MAX);
                for (i, p) in self.queue.iter().enumerate() {
                    if p.req.pblk < lowest.1 {
                        lowest = (i, p.req.pblk);
                    }
                    if here != u64::MAX && p.req.pblk >= here {
                        match best {
                            Some((_, b)) if p.req.pblk >= b => {}
                            _ => best = Some((i, p.req.pblk)),
                        }
                    }
                }
                let idx = best.map(|(i, _)| i).unwrap_or(lowest.0);
                self.queue.remove(idx)
            }
        }
    }

    fn start_service(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.in_service.is_none());
        let Some(p) = self.pick_next() else { return };
        let sequential = p.req.pblk == self.next_seq_pblk;
        if sequential {
            self.stats.sequential_hits += 1;
        }
        let t = self.geom.service_time(self.head_cylinder, p.req.pblk, p.req.blocks, sequential);
        self.stats.busy += t;
        self.head_cylinder = self.geom.cylinder_of(p.req.pblk + p.req.blocks as u64 - 1);
        self.next_seq_pblk = p.req.pblk + p.req.blocks as u64;
        self.in_service = Some(p);
        ctx.schedule_self(t, ServiceDone);
        self.depth.update(ctx.now(), (self.queue.len() + 1) as f64);
    }
}

impl Actor for Disk {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.cast::<DiskRequest>() {
            Ok(req) => {
                debug_assert!(req.blocks > 0, "zero-length disk request");
                self.stats.requests += 1;
                self.queue.push_back(Pending { req: *req, arrived: ctx.now() });
                self.depth.update(
                    ctx.now(),
                    (self.queue.len() + self.in_service.is_some() as usize) as f64,
                );
                if self.in_service.is_none() {
                    self.start_service(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        if msg.is::<ServiceDone>() {
            let p = self.in_service.take().expect("ServiceDone with nothing in service");
            let latency = ctx.now().since(p.arrived);
            self.latency.record(latency);
            match p.req.op {
                DiskOp::Read => self.stats.blocks_read += p.req.blocks as u64,
                DiskOp::Write => self.stats.blocks_written += p.req.blocks as u64,
            }
            ctx.schedule_in(
                Dur::ZERO,
                p.req.reply_to,
                DiskReply {
                    op: p.req.op,
                    pblk: p.req.pblk,
                    blocks: p.req.blocks,
                    token: p.req.token,
                    latency,
                },
            );
            self.depth.update(ctx.now(), self.queue.len() as f64);
            self.start_service(ctx);
        } else {
            panic!("disk received unexpected message");
        }
    }

    fn name(&self) -> String {
        "disk".into()
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Engine;

    struct Collector {
        replies: Vec<(u64, SimTime)>,
    }
    impl Actor for Collector {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if let Ok(r) = msg.cast::<DiskReply>() {
                self.replies.push((r.token, ctx.now()));
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn setup(sched: DiskSched) -> (Engine, ActorId, ActorId) {
        let mut eng = Engine::new(0);
        let col = eng.add_actor(Box::new(Collector { replies: vec![] }));
        let disk = eng.add_actor(Box::new(Disk::new(DiskGeometry::maxtor_20gb(), sched)));
        (eng, disk, col)
    }

    fn req(pblk: u64, blocks: u32, reply_to: ActorId, token: u64) -> DiskRequest {
        DiskRequest { op: DiskOp::Read, pblk, blocks, reply_to, token }
    }

    #[test]
    fn single_request_takes_positioning_plus_transfer() {
        let (mut eng, disk, col) = setup(DiskSched::Fifo);
        eng.post(Dur::ZERO, disk, req(1_000_000, 8, col, 1));
        eng.run();
        let g = DiskGeometry::maxtor_20gb();
        let expect = g.service_time(0, 1_000_000, 8, false);
        let got = eng.actor_as::<Collector>(col).unwrap().replies[0].1;
        assert_eq!(got, SimTime::ZERO + expect);
    }

    #[test]
    fn sequential_follow_up_is_fast() {
        let (mut eng, disk, col) = setup(DiskSched::Fifo);
        eng.post(Dur::ZERO, disk, req(500, 8, col, 1));
        eng.post(Dur::ZERO, disk, req(508, 8, col, 2));
        eng.run();
        let d = eng.actor_as::<Disk>(disk).unwrap();
        assert_eq!(d.stats().sequential_hits, 1);
        let replies = &eng.actor_as::<Collector>(col).unwrap().replies;
        let gap = replies[1].1.since(replies[0].1);
        let g = DiskGeometry::maxtor_20gb();
        assert_eq!(gap, g.controller_overhead + g.transfer_time(8));
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let (mut eng, disk, col) = setup(DiskSched::Fifo);
        for (i, p) in [900_000u64, 100, 500_000].iter().enumerate() {
            eng.post(Dur::ZERO, disk, req(*p, 1, col, i as u64));
        }
        eng.run();
        let tokens: Vec<u64> =
            eng.actor_as::<Collector>(col).unwrap().replies.iter().map(|r| r.0).collect();
        assert_eq!(tokens, vec![0, 1, 2]);
    }

    #[test]
    fn clook_sweeps_ascending() {
        let (mut eng, disk, col) = setup(DiskSched::CLook);
        // First request seeds service; the remaining three queue up and are
        // served in ascending block order regardless of arrival order.
        eng.post(Dur::ZERO, disk, req(10, 1, col, 0));
        eng.post(Dur::ZERO, disk, req(900_000, 1, col, 1));
        eng.post(Dur::ZERO, disk, req(50_000, 1, col, 2));
        eng.post(Dur::ZERO, disk, req(400_000, 1, col, 3));
        eng.run();
        let tokens: Vec<u64> =
            eng.actor_as::<Collector>(col).unwrap().replies.iter().map(|r| r.0).collect();
        assert_eq!(tokens, vec![0, 2, 3, 1]);
    }

    #[test]
    fn clook_wraps_to_lowest() {
        let (mut eng, disk, col) = setup(DiskSched::CLook);
        eng.post(Dur::ZERO, disk, req(800_000, 1, col, 0));
        // Queued while the head sweeps past them: must wrap around.
        eng.post(Dur::ZERO, disk, req(100, 1, col, 1));
        eng.post(Dur::ZERO, disk, req(200, 1, col, 2));
        eng.run();
        let tokens: Vec<u64> =
            eng.actor_as::<Collector>(col).unwrap().replies.iter().map(|r| r.0).collect();
        assert_eq!(tokens, vec![0, 1, 2]);
    }

    #[test]
    fn stats_account_reads_and_writes() {
        let (mut eng, disk, col) = setup(DiskSched::Fifo);
        eng.post(Dur::ZERO, disk, req(0, 4, col, 0));
        eng.post(
            Dur::ZERO,
            disk,
            DiskRequest { op: DiskOp::Write, pblk: 100, blocks: 2, reply_to: col, token: 1 },
        );
        eng.run();
        let d = eng.actor_as::<Disk>(disk).unwrap();
        assert_eq!(d.stats().requests, 2);
        assert_eq!(d.stats().blocks_read, 4);
        assert_eq!(d.stats().blocks_written, 2);
        assert!(d.utilization(eng.now()) > 0.9, "disk was the only activity");
        assert!(d.latency_histogram().count() == 2);
    }

    #[test]
    fn queueing_latency_visible_under_load() {
        let (mut eng, disk, col) = setup(DiskSched::Fifo);
        for i in 0..10 {
            eng.post(Dur::ZERO, disk, req(i * 1000, 1, col, i));
        }
        eng.run();
        let replies = &eng.actor_as::<Collector>(col).unwrap().replies;
        let first = replies.first().unwrap().1;
        let last = replies.last().unwrap().1;
        assert!(last.since(first) > Dur::millis(5), "later requests must queue");
    }
}
