//! Server-side OS page cache.
//!
//! The paper's no-caching baseline still ran on Linux iod nodes whose kernel
//! cached file data. Modelling that cache keeps the baseline honest: reads
//! that hit server memory skip the disk, and writes are absorbed and flushed
//! in the background (kupdate-style).
//!
//! Exact LRU over physical 4 KB blocks, O(1) per operation via an intrusive
//! doubly-linked list on a slab.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pblk: u64,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// What fell out of the cache when a new page came in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    pub pblk: u64,
    /// Dirty victims must be written to disk by the caller.
    pub dirty: bool,
}

#[derive(Debug, Default, Clone)]
pub struct PageCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub clean_evictions: u64,
    pub dirty_evictions: u64,
}

/// Fixed-capacity exact-LRU page cache.
pub struct PageCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    dirty_count: usize,
    stats: PageCacheStats,
}

impl PageCache {
    pub fn new(capacity_pages: usize) -> PageCache {
        assert!(capacity_pages > 0, "page cache needs at least one page");
        PageCache {
            capacity: capacity_pages,
            map: HashMap::with_capacity(capacity_pages),
            slab: Vec::with_capacity(capacity_pages),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty_count: 0,
            stats: PageCacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn dirty_pages(&self) -> usize {
        self.dirty_count
    }

    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    pub fn contains(&self, pblk: u64) -> bool {
        self.map.contains_key(&pblk)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Reference a page for reading. Returns `true` on hit (and promotes the
    /// page to MRU).
    pub fn lookup(&mut self, pblk: u64) -> bool {
        match self.map.get(&pblk).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Insert (or re-reference) a page, optionally dirty. Returns the evicted
    /// victim if the cache was full.
    pub fn insert(&mut self, pblk: u64, dirty: bool) -> Option<Eviction> {
        if let Some(&idx) = self.map.get(&pblk) {
            if dirty && !self.slab[idx].dirty {
                self.slab[idx].dirty = true;
                self.dirty_count += 1;
            }
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        self.stats.insertions += 1;
        let victim = if self.map.len() >= self.capacity { self.evict_lru() } else { None };
        let entry = Entry { pblk, dirty, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if dirty {
            self.dirty_count += 1;
        }
        self.map.insert(pblk, idx);
        self.push_front(idx);
        victim
    }

    fn evict_lru(&mut self) -> Option<Eviction> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        let e = self.slab[idx];
        self.unlink(idx);
        self.map.remove(&e.pblk);
        self.free.push(idx);
        if e.dirty {
            self.dirty_count -= 1;
            self.stats.dirty_evictions += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        Some(Eviction { pblk: e.pblk, dirty: e.dirty })
    }

    /// Mark a resident page dirty; returns `false` if it is not resident.
    pub fn mark_dirty(&mut self, pblk: u64) -> bool {
        match self.map.get(&pblk).copied() {
            Some(idx) => {
                if !self.slab[idx].dirty {
                    self.slab[idx].dirty = true;
                    self.dirty_count += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Collect up to `limit` dirty pages (oldest first) and mark them clean;
    /// the caller is responsible for issuing the disk writes.
    pub fn drain_dirty(&mut self, limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut idx = self.tail;
        while idx != NIL && out.len() < limit {
            if self.slab[idx].dirty {
                self.slab[idx].dirty = false;
                self.dirty_count -= 1;
                out.push(self.slab[idx].pblk);
            }
            idx = self.slab[idx].prev;
        }
        out
    }

    /// LRU-order iterator (oldest first), for tests and diagnostics.
    pub fn lru_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            out.push(self.slab[idx].pblk);
            idx = self.slab[idx].prev;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut pc = PageCache::new(4);
        assert!(!pc.lookup(1));
        pc.insert(1, false);
        assert!(pc.lookup(1));
        assert_eq!(pc.stats().hits, 1);
        assert_eq!(pc.stats().misses, 1);
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut pc = PageCache::new(3);
        pc.insert(1, false);
        pc.insert(2, false);
        pc.insert(3, false);
        // Touch 1 so 2 becomes LRU.
        assert!(pc.lookup(1));
        let ev = pc.insert(4, false).expect("must evict");
        assert_eq!(ev, Eviction { pblk: 2, dirty: false });
        assert!(pc.contains(1) && pc.contains(3) && pc.contains(4));
        assert_eq!(pc.len(), 3);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut pc = PageCache::new(2);
        pc.insert(1, true);
        pc.insert(2, false);
        let ev = pc.insert(3, false).unwrap();
        assert_eq!(ev, Eviction { pblk: 1, dirty: true });
        assert_eq!(pc.stats().dirty_evictions, 1);
        assert_eq!(pc.dirty_pages(), 0);
    }

    #[test]
    fn reinsert_promotes_and_merges_dirty() {
        let mut pc = PageCache::new(2);
        pc.insert(1, false);
        pc.insert(2, false);
        assert!(pc.insert(1, true).is_none(), "re-insert must not evict");
        assert_eq!(pc.dirty_pages(), 1);
        // 2 is now LRU.
        assert_eq!(pc.lru_order(), vec![2, 1]);
    }

    #[test]
    fn mark_dirty_only_resident() {
        let mut pc = PageCache::new(2);
        pc.insert(7, false);
        assert!(pc.mark_dirty(7));
        assert!(pc.mark_dirty(7), "idempotent");
        assert_eq!(pc.dirty_pages(), 1);
        assert!(!pc.mark_dirty(8));
    }

    #[test]
    fn drain_dirty_oldest_first_and_cleans() {
        let mut pc = PageCache::new(4);
        pc.insert(1, true);
        pc.insert(2, false);
        pc.insert(3, true);
        pc.insert(4, true);
        let drained = pc.drain_dirty(2);
        assert_eq!(drained, vec![1, 3], "oldest dirty first");
        assert_eq!(pc.dirty_pages(), 1);
        let rest = pc.drain_dirty(10);
        assert_eq!(rest, vec![4]);
        assert_eq!(pc.dirty_pages(), 0);
    }

    #[test]
    fn lru_order_tracks_access_pattern() {
        let mut pc = PageCache::new(3);
        pc.insert(1, false);
        pc.insert(2, false);
        pc.insert(3, false);
        pc.lookup(2);
        pc.lookup(1);
        assert_eq!(pc.lru_order(), vec![3, 2, 1]);
    }

    #[test]
    fn slab_slots_recycled() {
        let mut pc = PageCache::new(2);
        for i in 0..100 {
            pc.insert(i, i % 2 == 0);
        }
        assert_eq!(pc.len(), 2);
        assert!(pc.contains(98) && pc.contains(99));
        assert_eq!(pc.stats().insertions, 100);
        assert_eq!(
            pc.stats().clean_evictions + pc.stats().dirty_evictions,
            98,
            "every displaced page reported exactly once"
        );
    }

    #[test]
    fn stress_against_reference_model() {
        use std::collections::VecDeque;
        let mut pc = PageCache::new(8);
        let mut model: VecDeque<u64> = VecDeque::new(); // front = MRU
        let mut x: u64 = 0x12345;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pblk = (x >> 33) % 24;
            let hit = pc.lookup(pblk);
            let model_hit = model.contains(&pblk);
            assert_eq!(hit, model_hit, "hit status diverged for {}", pblk);
            if model_hit {
                let pos = model.iter().position(|&p| p == pblk).unwrap();
                model.remove(pos);
                model.push_front(pblk);
            } else {
                pc.insert(pblk, false);
                if model.len() == 8 {
                    model.pop_back();
                }
                model.push_front(pblk);
            }
            assert_eq!(pc.lru_order().last(), model.front(), "MRU diverged");
        }
    }
}
