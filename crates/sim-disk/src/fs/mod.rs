//! A small local block file system for iod nodes.
//!
//! Holds real file bytes (so end-to-end data-integrity tests work through
//! the whole stack) and reports the *physical extents* each operation
//! touches, so the caller can charge page-cache and disk time. Supports
//! sparse files — PVFS stripes mean each iod sees its own slice of a
//! logical file at scattered local offsets.

pub mod alloc;

use crate::geometry::BLOCK_SIZE;
use alloc::BlockAllocator;
use std::collections::BTreeMap;
use std::fmt;

/// A run of contiguous physical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub pblk: u64,
    pub blocks: u32,
}

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u32);

/// File system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    NoSpace,
    NoSuchFile,
    AlreadyExists,
    BadInode,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSpace => write!(f, "out of disk blocks"),
            FsError::NoSuchFile => write!(f, "no such file"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::BadInode => write!(f, "bad inode"),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug, Default)]
struct Inode {
    size: u64,
    /// Logical block index → physical block; `None` is a hole.
    blocks: Vec<Option<u64>>,
}

/// Result of a write: which physical extents were touched (for page-cache /
/// disk accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoExtents {
    pub extents: Vec<Extent>,
    pub bytes: usize,
}

/// The file system.
pub struct BlockFs {
    alloc: BlockAllocator,
    inodes: Vec<Option<Inode>>,
    root: BTreeMap<String, Ino>,
    data: BTreeMap<u64, Box<[u8; BLOCK_SIZE]>>,
}

fn coalesce(mut pblks: Vec<u64>) -> Vec<Extent> {
    pblks.sort_unstable();
    pblks.dedup();
    let mut out: Vec<Extent> = Vec::new();
    for p in pblks {
        match out.last_mut() {
            Some(e) if e.pblk + e.blocks as u64 == p => e.blocks += 1,
            _ => out.push(Extent { pblk: p, blocks: 1 }),
        }
    }
    out
}

impl BlockFs {
    pub fn new(capacity_blocks: u64) -> BlockFs {
        BlockFs {
            alloc: BlockAllocator::new(capacity_blocks),
            inodes: Vec::new(),
            root: BTreeMap::new(),
            data: BTreeMap::new(),
        }
    }

    pub fn create(&mut self, name: &str) -> Result<Ino, FsError> {
        if self.root.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = Ino(self.inodes.len() as u32);
        self.inodes.push(Some(Inode::default()));
        self.root.insert(name.to_string(), ino);
        Ok(ino)
    }

    pub fn open(&self, name: &str) -> Option<Ino> {
        self.root.get(name).copied()
    }

    /// Open the file, creating it if absent.
    pub fn open_or_create(&mut self, name: &str) -> Result<Ino, FsError> {
        match self.open(name) {
            Some(ino) => Ok(ino),
            None => self.create(name),
        }
    }

    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        let ino = self.root.remove(name).ok_or(FsError::NoSuchFile)?;
        let inode = self.inodes[ino.0 as usize].take().ok_or(FsError::BadInode)?;
        for p in inode.blocks.into_iter().flatten() {
            self.alloc.free(Extent { pblk: p, blocks: 1 });
            self.data.remove(&p);
        }
        Ok(())
    }

    pub fn size(&self, ino: Ino) -> Result<u64, FsError> {
        Ok(self.inode(ino)?.size)
    }

    pub fn files(&self) -> impl Iterator<Item = (&str, Ino)> {
        self.root.iter().map(|(n, i)| (n.as_str(), *i))
    }

    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    fn inode(&self, ino: Ino) -> Result<&Inode, FsError> {
        self.inodes.get(ino.0 as usize).and_then(|o| o.as_ref()).ok_or(FsError::BadInode)
    }

    fn inode_mut(&mut self, ino: Ino) -> Result<&mut Inode, FsError> {
        self.inodes.get_mut(ino.0 as usize).and_then(|o| o.as_mut()).ok_or(FsError::BadInode)
    }

    /// Write `buf` at `offset`, allocating blocks (including for any hole
    /// being filled). Returns the physical extents touched.
    pub fn write(&mut self, ino: Ino, offset: u64, buf: &[u8]) -> Result<IoExtents, FsError> {
        if buf.is_empty() {
            return Ok(IoExtents { extents: vec![], bytes: 0 });
        }
        self.inode(ino)?; // validate before mutating
        let first_lblk = offset / BLOCK_SIZE as u64;
        let last_lblk = (offset + buf.len() as u64 - 1) / BLOCK_SIZE as u64;

        // Ensure the block table covers the write and allocate any missing
        // physical blocks in one allocator call for contiguity.
        let (needed, hint) = {
            let inode = self.inode(ino)?;
            let mut needed = 0u64;
            for l in first_lblk..=last_lblk {
                let missing = inode.blocks.get(l as usize).is_none_or(|slot| slot.is_none());
                if missing {
                    needed += 1;
                }
            }
            let hint = inode.blocks.iter().rev().flatten().next().map(|p| p + 1).unwrap_or(0);
            (needed, hint)
        };
        let mut fresh: Vec<u64> = Vec::new();
        if needed > 0 {
            let extents = self.alloc.allocate(needed, hint).ok_or(FsError::NoSpace)?;
            for e in extents {
                for p in e.pblk..e.pblk + e.blocks as u64 {
                    fresh.push(p);
                }
            }
        }
        let mut fresh_iter = fresh.into_iter();
        let inode = self.inode_mut(ino)?;
        if inode.blocks.len() <= last_lblk as usize {
            inode.blocks.resize(last_lblk as usize + 1, None);
        }
        let mut touched: Vec<u64> = Vec::with_capacity((last_lblk - first_lblk + 1) as usize);
        for l in first_lblk..=last_lblk {
            let slot = &mut inode.blocks[l as usize];
            let p = match *slot {
                Some(p) => p,
                None => {
                    let p = fresh_iter.next().expect("allocated count mismatch");
                    *slot = Some(p);
                    p
                }
            };
            touched.push(p);
        }
        inode.size = inode.size.max(offset + buf.len() as u64);

        // Copy the bytes.
        let mut written = 0usize;
        let mut pos = offset;
        for (i, l) in (first_lblk..=last_lblk).enumerate() {
            let p = touched[i];
            let block = self.data.entry(p).or_insert_with(|| Box::new([0u8; BLOCK_SIZE]));
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_block).min(buf.len() - written);
            block[in_block..in_block + n].copy_from_slice(&buf[written..written + n]);
            written += n;
            pos += n as u64;
            let _ = l;
        }
        debug_assert_eq!(written, buf.len());
        Ok(IoExtents { extents: coalesce(touched), bytes: written })
    }

    /// Read up to `buf.len()` bytes at `offset`. Holes read as zeros (and
    /// cost no physical extents). Returns bytes read and extents touched.
    pub fn read(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> Result<IoExtents, FsError> {
        let inode = self.inode(ino)?;
        if offset >= inode.size || buf.is_empty() {
            return Ok(IoExtents { extents: vec![], bytes: 0 });
        }
        let len = buf.len().min((inode.size - offset) as usize);
        let first_lblk = offset / BLOCK_SIZE as u64;
        let last_lblk = (offset + len as u64 - 1) / BLOCK_SIZE as u64;
        let mut touched: Vec<u64> = Vec::new();
        let mut read = 0usize;
        let mut pos = offset;
        for l in first_lblk..=last_lblk {
            let in_block = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - in_block).min(len - read);
            match inode.blocks.get(l as usize).copied().flatten() {
                Some(p) => {
                    touched.push(p);
                    match self.data.get(&p) {
                        Some(block) => {
                            buf[read..read + n].copy_from_slice(&block[in_block..in_block + n])
                        }
                        None => buf[read..read + n].fill(0),
                    }
                }
                None => buf[read..read + n].fill(0),
            }
            read += n;
            pos += n as u64;
        }
        debug_assert_eq!(read, len);
        Ok(IoExtents { extents: coalesce(touched), bytes: read })
    }

    /// Physical extents backing a byte range (what a read *would* touch),
    /// without copying data. Used by the iod to plan disk I/O.
    pub fn extents_of(&self, ino: Ino, offset: u64, len: usize) -> Result<Vec<Extent>, FsError> {
        let inode = self.inode(ino)?;
        if len == 0 || offset >= inode.size {
            return Ok(vec![]);
        }
        let len = len.min((inode.size - offset) as usize);
        let first = offset / BLOCK_SIZE as u64;
        let last = (offset + len as u64 - 1) / BLOCK_SIZE as u64;
        let touched: Vec<u64> = (first..=last)
            .filter_map(|l| inode.blocks.get(l as usize).copied().flatten())
            .collect();
        Ok(coalesce(touched))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> BlockFs {
        BlockFs::new(4096)
    }

    #[test]
    fn create_open_remove() {
        let mut f = fs();
        let ino = f.create("a").unwrap();
        assert_eq!(f.open("a"), Some(ino));
        assert_eq!(f.create("a"), Err(FsError::AlreadyExists));
        assert_eq!(f.open_or_create("a").unwrap(), ino);
        f.remove("a").unwrap();
        assert_eq!(f.open("a"), None);
        assert_eq!(f.remove("a"), Err(FsError::NoSuchFile));
    }

    #[test]
    fn write_read_round_trip() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let w = f.write(ino, 0, &data).unwrap();
        assert_eq!(w.bytes, 10_000);
        assert_eq!(f.size(ino).unwrap(), 10_000);
        let mut out = vec![0u8; 10_000];
        let r = f.read(ino, 0, &mut out).unwrap();
        assert_eq!(r.bytes, 10_000);
        assert_eq!(out, data);
    }

    #[test]
    fn unaligned_overwrite_preserves_neighbors() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        f.write(ino, 0, &[1u8; 8192]).unwrap();
        f.write(ino, 1000, &[2u8; 100]).unwrap();
        let mut out = vec![0u8; 8192];
        f.read(ino, 0, &mut out).unwrap();
        assert!(out[..1000].iter().all(|&b| b == 1));
        assert!(out[1000..1100].iter().all(|&b| b == 2));
        assert!(out[1100..].iter().all(|&b| b == 1));
    }

    #[test]
    fn sparse_holes_read_zero_and_cost_nothing() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        // Write one block at 1 MB; everything before is a hole.
        f.write(ino, 1 << 20, &[7u8; 4096]).unwrap();
        assert_eq!(f.size(ino).unwrap(), (1 << 20) + 4096);
        let mut out = vec![0xFFu8; 4096];
        let r = f.read(ino, 0, &mut out).unwrap();
        assert_eq!(r.bytes, 4096);
        assert!(out.iter().all(|&b| b == 0));
        assert!(r.extents.is_empty(), "hole read touches no physical blocks");
        let ext = f.extents_of(ino, 1 << 20, 4096).unwrap();
        assert_eq!(ext.iter().map(|e| e.blocks).sum::<u32>(), 1);
    }

    #[test]
    fn sequential_growth_is_contiguous() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        for i in 0..16u64 {
            f.write(ino, i * 4096, &[i as u8; 4096]).unwrap();
        }
        let ext = f.extents_of(ino, 0, 16 * 4096).unwrap();
        assert_eq!(ext.len(), 1, "sequential file fragmented: {:?}", ext);
        assert_eq!(ext[0].blocks, 16);
    }

    #[test]
    fn read_past_eof_truncates() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        f.write(ino, 0, &[5u8; 1000]).unwrap();
        let mut out = vec![0u8; 4096];
        let r = f.read(ino, 500, &mut out).unwrap();
        assert_eq!(r.bytes, 500);
        assert!(out[..500].iter().all(|&b| b == 5));
        let r2 = f.read(ino, 5000, &mut out).unwrap();
        assert_eq!(r2.bytes, 0);
    }

    #[test]
    fn extents_reported_match_write() {
        let mut f = fs();
        let ino = f.create("x").unwrap();
        let w = f.write(ino, 0, &[1u8; 4096 * 3]).unwrap();
        assert_eq!(w.extents.iter().map(|e| e.blocks).sum::<u32>(), 3);
        // Overwrite touches the same extents, allocates nothing.
        let free_before = f.free_blocks();
        let w2 = f.write(ino, 0, &[2u8; 4096 * 3]).unwrap();
        assert_eq!(w2.extents, w.extents);
        assert_eq!(f.free_blocks(), free_before);
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut f = BlockFs::new(4);
        let ino = f.create("x").unwrap();
        assert!(f.write(ino, 0, &[0u8; 4096 * 4]).is_ok());
        let err = f.write(ino, 4096 * 4, &[0u8; 4096]).unwrap_err();
        assert_eq!(err, FsError::NoSpace);
    }

    #[test]
    fn remove_frees_space() {
        let mut f = BlockFs::new(8);
        let ino = f.create("x").unwrap();
        f.write(ino, 0, &[1u8; 4096 * 8]).unwrap();
        assert_eq!(f.free_blocks(), 0);
        f.remove("x").unwrap();
        assert_eq!(f.free_blocks(), 8);
        assert_eq!(f.files().count(), 0);
    }

    #[test]
    fn bad_inode_rejected() {
        let f = fs();
        assert_eq!(f.size(Ino(99)), Err(FsError::BadInode));
        let mut buf = [0u8; 10];
        assert!(f.read(Ino(99), 0, &mut buf).is_err());
    }
}
