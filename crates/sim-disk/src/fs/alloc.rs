//! Bitmap block allocator for the local file system.
//!
//! First-fit with a per-call placement hint so a growing file stays mostly
//! contiguous on disk — which is what gives the iod its sequential-transfer
//! performance on streaming workloads.

use crate::fs::Extent;

/// Allocates physical 4 KB blocks out of a fixed-size volume.
pub struct BlockAllocator {
    bitmap: Vec<u64>,
    capacity: u64,
    free_count: u64,
}

impl BlockAllocator {
    pub fn new(capacity_blocks: u64) -> BlockAllocator {
        assert!(capacity_blocks > 0);
        let words = capacity_blocks.div_ceil(64) as usize;
        BlockAllocator {
            bitmap: vec![0; words],
            capacity: capacity_blocks,
            free_count: capacity_blocks,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn free_blocks(&self) -> u64 {
        self.free_count
    }

    #[inline]
    fn is_set(&self, b: u64) -> bool {
        self.bitmap[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    #[inline]
    fn set(&mut self, b: u64) {
        debug_assert!(!self.is_set(b), "double allocation of block {}", b);
        self.bitmap[(b / 64) as usize] |= 1 << (b % 64);
        self.free_count -= 1;
    }

    #[inline]
    fn clear(&mut self, b: u64) {
        debug_assert!(self.is_set(b), "freeing unallocated block {}", b);
        self.bitmap[(b / 64) as usize] &= !(1 << (b % 64));
        self.free_count += 1;
    }

    pub fn is_allocated(&self, b: u64) -> bool {
        b < self.capacity && self.is_set(b)
    }

    /// Allocate `n` blocks, preferring a contiguous run starting at or after
    /// `hint`. Returns the extents actually allocated (possibly fragmented),
    /// or `None` if the volume lacks `n` free blocks.
    pub fn allocate(&mut self, n: u64, hint: u64) -> Option<Vec<Extent>> {
        if n == 0 {
            return Some(Vec::new());
        }
        if self.free_count < n {
            return None;
        }
        if let Some(start) = self.find_contiguous(n, hint) {
            for b in start..start + n {
                self.set(b);
            }
            return Some(vec![Extent { pblk: start, blocks: n as u32 }]);
        }
        // Fragmented fallback: take free blocks in ascending order from the
        // hint, wrapping around, coalescing adjacent picks.
        let mut out: Vec<Extent> = Vec::new();
        let mut remaining = n;
        let start = hint.min(self.capacity - 1);
        let mut scanned = 0;
        let mut b = start;
        while remaining > 0 && scanned < self.capacity {
            if !self.is_set(b) {
                self.set(b);
                remaining -= 1;
                match out.last_mut() {
                    Some(e) if e.pblk + e.blocks as u64 == b => e.blocks += 1,
                    _ => out.push(Extent { pblk: b, blocks: 1 }),
                }
            }
            b = (b + 1) % self.capacity;
            scanned += 1;
        }
        debug_assert_eq!(remaining, 0, "free_count said enough blocks existed");
        Some(out)
    }

    fn find_contiguous(&self, n: u64, hint: u64) -> Option<u64> {
        let start = hint.min(self.capacity.saturating_sub(1));
        // Scan [hint, end), then [0, hint).
        self.scan_range(start, self.capacity, n).or_else(|| self.scan_range(0, start, n))
    }

    fn scan_range(&self, lo: u64, hi: u64, n: u64) -> Option<u64> {
        let mut run_start = lo;
        let mut run_len = 0;
        let mut b = lo;
        while b < hi {
            if self.is_set(b) {
                run_len = 0;
                run_start = b + 1;
            } else {
                run_len += 1;
                if run_len == n {
                    return Some(run_start);
                }
            }
            b += 1;
        }
        None
    }

    /// Free a previously allocated extent.
    pub fn free(&mut self, e: Extent) {
        for b in e.pblk..e.pblk + e.blocks as u64 {
            self.clear(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_contiguously_from_hint() {
        let mut a = BlockAllocator::new(1000);
        let e = a.allocate(10, 100).unwrap();
        assert_eq!(e, vec![Extent { pblk: 100, blocks: 10 }]);
        assert_eq!(a.free_blocks(), 990);
        let e2 = a.allocate(5, 100).unwrap();
        assert_eq!(e2, vec![Extent { pblk: 110, blocks: 5 }]);
    }

    #[test]
    fn wraps_to_low_blocks_when_tail_full() {
        let mut a = BlockAllocator::new(100);
        a.allocate(50, 50).unwrap(); // fill the tail
        let e = a.allocate(20, 90).unwrap();
        assert_eq!(e, vec![Extent { pblk: 0, blocks: 20 }]);
    }

    #[test]
    fn fragments_when_no_contiguous_run() {
        let mut a = BlockAllocator::new(64);
        // Occupy every even block.
        for b in (0..64).step_by(2) {
            let got = a.allocate(1, b).unwrap();
            assert_eq!(got[0].pblk, b);
        }
        let e = a.allocate(4, 0).unwrap();
        let total: u32 = e.iter().map(|x| x.blocks).sum();
        assert_eq!(total, 4);
        assert!(e.len() == 4, "all odd singleton blocks: {:?}", e);
        assert!(e.iter().all(|x| x.pblk % 2 == 1));
    }

    #[test]
    fn exhaustion_returns_none_and_keeps_state() {
        let mut a = BlockAllocator::new(10);
        a.allocate(8, 0).unwrap();
        assert!(a.allocate(3, 0).is_none());
        assert_eq!(a.free_blocks(), 2);
        assert!(a.allocate(2, 0).is_some());
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn free_returns_blocks() {
        let mut a = BlockAllocator::new(100);
        let e = a.allocate(30, 0).unwrap();
        assert_eq!(a.free_blocks(), 70);
        a.free(e[0]);
        assert_eq!(a.free_blocks(), 100);
        // Reallocation finds the same spot.
        let e2 = a.allocate(30, 0).unwrap();
        assert_eq!(e2[0].pblk, 0);
    }

    #[test]
    fn zero_allocation_is_empty() {
        let mut a = BlockAllocator::new(10);
        assert_eq!(a.allocate(0, 0).unwrap(), vec![]);
        assert_eq!(a.free_blocks(), 10);
    }

    #[test]
    fn fragmented_picks_coalesce() {
        let mut a = BlockAllocator::new(16);
        a.allocate(1, 0).unwrap(); // block 0
        a.allocate(1, 5).unwrap(); // block 5
                                   // Ask for more than any run from hint 0: runs are [1..5] (4) and
                                   // [6..16) (10); 12 needs fragmentation into two extents.
        let e = a.allocate(12, 0).unwrap();
        assert_eq!(e.len(), 2, "{:?}", e);
        assert_eq!(e[0], Extent { pblk: 1, blocks: 4 });
        assert_eq!(e[1], Extent { pblk: 6, blocks: 8 });
    }
}
