//! # sim-disk — storage substrate
//!
//! Everything below the iod daemon in the paper's stack:
//!
//! * [`geometry`] — mechanical disk timing (seek curve, rotation, media
//!   rate), preset to a Maxtor-class 20 GB IDE drive like the platform's.
//! * [`disk`] — the disk actor: request queue with FIFO or C-LOOK elevator
//!   scheduling, one request in service at a time.
//! * [`pagecache`] — the iod node's OS page cache (exact LRU, write-back),
//!   which keeps the paper's no-caching baseline honest.
//! * [`fs`] — a small sparse block file system holding real bytes and
//!   reporting physical extents for timing.

pub mod disk;
pub mod fs;
pub mod geometry;
pub mod pagecache;

pub use disk::{Disk, DiskOp, DiskReply, DiskRequest, DiskSched, DiskStats};
pub use fs::{BlockFs, Extent, FsError, Ino, IoExtents};
pub use geometry::{DiskGeometry, BLOCK_SIZE};
pub use pagecache::{Eviction, PageCache, PageCacheStats};
