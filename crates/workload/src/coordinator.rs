//! Run coordinator: kicks processes off, collects their results, stops the
//! simulation when every process finished.

use crate::process::{ProcDone, ProcResult};
use sim_core::{Actor, Ctx, Msg, SimTime};
use std::any::Any;

/// Collects [`ProcResult`]s; stops the engine when all arrived.
pub struct Coordinator {
    expected: usize,
    results: Vec<ProcResult>,
    all_done_at: Option<SimTime>,
}

impl Coordinator {
    pub fn new(expected: usize) -> Coordinator {
        assert!(expected > 0, "coordinator with nothing to wait for");
        Coordinator { expected, results: Vec::with_capacity(expected), all_done_at: None }
    }

    pub fn results(&self) -> &[ProcResult] {
        &self.results
    }

    pub fn is_complete(&self) -> bool {
        self.results.len() == self.expected
    }

    /// Simulated instant the last process finished.
    pub fn all_done_at(&self) -> Option<SimTime> {
        self.all_done_at
    }

    /// Wall-clock span of one instance: first process start to last finish.
    pub fn instance_makespan(&self, instance: u32) -> Option<(SimTime, SimTime)> {
        let procs: Vec<&ProcResult> =
            self.results.iter().filter(|r| r.instance == instance).collect();
        if procs.is_empty() {
            return None;
        }
        let start = procs.iter().map(|r| r.started).min().unwrap();
        let end = procs.iter().map(|r| r.finished).max().unwrap();
        Some((start, end))
    }
}

impl Actor for Coordinator {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.cast::<ProcDone>() {
            Ok(d) => {
                self.results.push(d.0);
                if self.is_complete() {
                    self.all_done_at = Some(ctx.now());
                    ctx.stop();
                }
            }
            Err(m) => panic!("coordinator received unexpected message: {:?}", m),
        }
    }

    fn name(&self) -> String {
        "coordinator".into()
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{Dur, Engine, Tally};
    use sim_net::NodeId;

    fn result(instance: u32, start_ms: u64, end_ms: u64) -> ProcResult {
        ProcResult {
            instance,
            proc_index: 0,
            node: NodeId(0),
            read_latency: Tally::new(),
            write_latency: Tally::new(),
            requests: 1,
            bytes: 1,
            started: SimTime::ZERO + Dur::millis(start_ms),
            finished: SimTime::ZERO + Dur::millis(end_ms),
            verify_failures: 0,
        }
    }

    #[test]
    fn stops_engine_when_all_report() {
        let mut eng = Engine::new(0);
        let c = eng.add_actor(Box::new(Coordinator::new(2)));
        eng.post(Dur::millis(1), c, ProcDone(result(0, 0, 1)));
        eng.post(Dur::millis(5), c, ProcDone(result(1, 0, 5)));
        eng.post(Dur::millis(9), c, ProcDone(result(9, 0, 9))); // never dispatched
        let report = eng.run();
        assert_eq!(report.stop, sim_core::StopReason::Stopped);
        let coord = eng.actor_as::<Coordinator>(c).unwrap();
        assert!(coord.is_complete());
        assert_eq!(coord.all_done_at(), Some(SimTime::ZERO + Dur::millis(5)));
    }

    #[test]
    fn makespan_spans_instance_processes() {
        let mut eng = Engine::new(0);
        let c = eng.add_actor(Box::new(Coordinator::new(3)));
        eng.post(Dur::ZERO, c, ProcDone(result(0, 2, 10)));
        eng.post(Dur::ZERO, c, ProcDone(result(0, 1, 7)));
        eng.post(Dur::ZERO, c, ProcDone(result(1, 0, 20)));
        eng.run();
        let coord = eng.actor_as::<Coordinator>(c).unwrap();
        let (s, e) = coord.instance_makespan(0).unwrap();
        assert_eq!(s, SimTime::ZERO + Dur::millis(1));
        assert_eq!(e, SimTime::ZERO + Dur::millis(10));
        assert!(coord.instance_makespan(7).is_none());
    }
}
