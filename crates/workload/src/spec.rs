//! Workload specification — the paper's micro-benchmark knobs (§4.1).

use sim_core::Dur;
use sim_net::NodeId;

/// Read or write benchmark (the paper runs one or the other per experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Read,
    Write,
    /// Paper extension: coherent writes through the sync-write path.
    SyncWrite,
}

/// One phase of a phase-shifting workload: for `requests` per-process
/// requests the instance runs with these locality/sharing/hotspot knobs,
/// then moves to the next phase (cycling). Built to exercise adaptive
/// replacement: a schedule alternating a Zipf-skewed phase, a sequential
/// scan phase, and a shared-file phase changes which replacement policy is
/// best every few thousand accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Per-process requests before the next phase starts (≥ 1).
    pub requests: u64,
    /// Degree of locality `l` ∈ [0, 1] during this phase.
    pub locality: f64,
    /// Degree of inter-application sharing `s` ∈ [0, 1] during this phase.
    pub sharing: f64,
    /// Zipf skew of fresh accesses (0 = sequential walk).
    pub hotspot: f64,
}

impl PhaseSpec {
    /// Sanity-check one phase (same ranges as the instance-level knobs).
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("phase with zero requests".into());
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(format!("phase locality {} out of range", self.locality));
        }
        if !(0.0..=1.0).contains(&self.sharing) {
            return Err(format!("phase sharing {} out of range", self.sharing));
        }
        if !(0.0..=4.0).contains(&self.hotspot) {
            return Err(format!("phase hotspot {} out of range", self.hotspot));
        }
        Ok(())
    }
}

/// One application instance of the micro-benchmark.
///
/// An *application-level* request moves `request_size` (`d`) bytes; each of
/// the instance's `nodes.len()` (`p`) processes moves its `d/p` share from
/// its own partition of the file — "each processor/node in an application
/// accesses a distinct portion of the file (completely data parallel)".
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Instance label (also names its private file).
    pub name: String,
    /// Nodes running this instance's processes (`p` = `nodes.len()`).
    pub nodes: Vec<NodeId>,
    /// Total bytes the application moves over the run (kept constant across
    /// a `d` sweep, as in Figures 6-8).
    pub total_bytes: u64,
    /// Application-level request size `d`.
    pub request_size: u32,
    pub mode: Mode,
    /// Degree of locality `l` ∈ [0, 1].
    pub locality: f64,
    /// Degree of inter-application sharing `s` ∈ [0, 1]: fraction of
    /// requests that go to the shared file instead of the private file.
    pub sharing: f64,
    /// Popularity skew of *fresh* accesses. `0.0` (the default — old specs
    /// parse and behave identically) keeps the paper's sequential partition
    /// walk; `> 0.0` draws fresh offsets Zipf(θ = `hotspot`)-distributed
    /// over the partition's request slots, concentrating traffic on a hot
    /// set. This is what lets frequency-aware policies (LFU/ARC/2Q) and
    /// the sharing-aware policy differentiate from plain clock.
    pub hotspot: f64,
    /// Name of the file shared across instances.
    pub shared_file: String,
    /// Logical size of each file.
    pub file_size: u64,
    /// Start offset (instances normally start together).
    pub start_delay: Dur,
    /// Floor on the request count (latency-per-request experiments need
    /// enough iterations that cold-start misses wash out).
    pub min_requests: u64,
    /// Phase schedule: empty (the default — every pre-existing spec
    /// behaves identically) runs the instance-level `locality` / `sharing`
    /// / `hotspot` for the whole run; non-empty cycles through the phases,
    /// overriding those three knobs per phase.
    pub phases: Vec<PhaseSpec>,
}

impl AppSpec {
    pub fn p(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Per-process share of one application request.
    pub fn d_proc(&self) -> u32 {
        (self.request_size / self.p()).max(1)
    }

    /// Application-level request count (= per-process request count).
    pub fn n_requests(&self) -> u64 {
        (self.total_bytes / self.request_size as u64).max(self.min_requests).max(1)
    }

    pub fn private_file(&self) -> String {
        format!("{}-private", self.name)
    }

    /// Sanity-check the spec.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("no nodes".into());
        }
        if self.request_size == 0 {
            return Err("zero request size".into());
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(format!("locality {} out of range", self.locality));
        }
        if !(0.0..=1.0).contains(&self.sharing) {
            return Err(format!("sharing {} out of range", self.sharing));
        }
        if !(0.0..=4.0).contains(&self.hotspot) {
            return Err(format!("hotspot {} out of range (0 = sequential, ≤ 4)", self.hotspot));
        }
        let (_, len) = crate::stream::partition_of(self.file_size, self.p() - 1, self.p());
        if len < self.d_proc() as u64 {
            return Err("file too small for per-process partitions".into());
        }
        for (i, ph) in self.phases.iter().enumerate() {
            ph.validate().map_err(|e| format!("phase {i}: {e}"))?;
        }
        Ok(())
    }
}

/// Default micro-benchmark sizing: file large enough that partitions fit
/// every `d` in the sweep; totals sized to the paper's second-scale runs.
pub fn default_file_size() -> u64 {
    16 << 20 // 16 MB per file
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AppSpec {
        AppSpec {
            name: "app0".into(),
            nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            total_bytes: 6 << 20,
            request_size: 65536,
            mode: Mode::Read,
            locality: 0.5,
            sharing: 0.25,
            hotspot: 0.0,
            shared_file: "shared".into(),
            file_size: default_file_size(),
            start_delay: Dur::ZERO,
            min_requests: 1,
            phases: Vec::new(),
        }
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert_eq!(s.p(), 4);
        assert_eq!(s.d_proc(), 16384);
        assert_eq!(s.n_requests(), (6 << 20) / 65536);
        assert_eq!(s.private_file(), "app0-private");
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let mut s = spec();
        s.locality = 1.5;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.request_size = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.nodes.clear();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.file_size = 1000;
        assert!(s.validate().is_err(), "partitions smaller than d/p");
        let mut s = spec();
        s.hotspot = -0.1;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.hotspot = 0.9;
        assert!(s.validate().is_ok(), "skewed hotspot is a legal knob");
    }

    #[test]
    fn tiny_request_sizes_clamp_d_proc() {
        let mut s = spec();
        s.request_size = 2; // d < p
        assert_eq!(s.d_proc(), 1);
    }
}
