//! The application-process actor: one OS process of a micro-benchmark
//! instance, with libpvfs linked in.

use crate::spec::{Mode, PhaseSpec};
use crate::stream::AccessStream;
use pvfs::{Completion, Fid, PvfsClient};
use sim_core::{Actor, ActorId, Ctx, DetRng, Dur, Msg, SimTime, Tally};
use sim_net::{Deliver, NodeId};
use std::any::Any;

/// Bootstrap message posted by the harness.
pub struct Kickoff;

/// Internal: issue the next request.
struct IssueNext;

/// Final per-process measurement, reported to the coordinator.
#[derive(Debug, Clone)]
pub struct ProcResult {
    pub instance: u32,
    pub proc_index: u32,
    pub node: NodeId,
    /// Per-request latency in nanoseconds.
    pub read_latency: Tally,
    pub write_latency: Tally,
    pub requests: u64,
    pub bytes: u64,
    pub started: SimTime,
    pub finished: SimTime,
    pub verify_failures: u64,
}

/// Sent to the coordinator when the process completes its request budget.
pub struct ProcDone(pub ProcResult);

/// Execution plan for one process (derived from the instance `AppSpec` by
/// the cluster builder).
pub struct ProcPlan {
    pub instance: u32,
    pub proc_index: u32,
    pub shared_file: String,
    pub private_file: String,
    pub n_requests: u64,
    pub d_proc: u32,
    pub mode: Mode,
    pub locality: f64,
    pub sharing: f64,
    /// Zipf popularity skew of fresh accesses (0 = sequential walk).
    pub hotspot: f64,
    /// This process's partition of each file.
    pub partition: (u64, u64),
    /// Locality window sizing (see [`AccessStream`]).
    pub window_bytes: u64,
    pub start_delay: Dur,
    /// Phase schedule (empty = the instance-level knobs for the whole
    /// run; see [`PhaseSpec`]).
    pub phases: Vec<PhaseSpec>,
}

enum Phase {
    Idle,
    Opening,
    Running,
    Done,
}

/// The process actor.
pub struct AppProcess {
    client: PvfsClient,
    plan: ProcPlan,
    rng: DetRng,
    coordinator: ActorId,
    phase: Phase,
    shared: Option<(Fid, AccessStream)>,
    private: Option<(Fid, AccessStream)>,
    issued: u64,
    /// Index into `plan.phases` (phase-shifting runs only).
    phase_idx: usize,
    /// Requests left in the current phase.
    phase_left: u64,
    /// Effective knobs for the current phase (the plan's instance-level
    /// values when no schedule is set).
    cur_locality: f64,
    cur_sharing: f64,
    cur_hotspot: f64,
    result: ProcResult,
}

impl AppProcess {
    pub fn new(
        client: PvfsClient,
        plan: ProcPlan,
        rng: DetRng,
        coordinator: ActorId,
    ) -> AppProcess {
        let node = client.config().node;
        let result = ProcResult {
            instance: plan.instance,
            proc_index: plan.proc_index,
            node,
            read_latency: Tally::new(),
            write_latency: Tally::new(),
            requests: 0,
            bytes: 0,
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            verify_failures: 0,
        };
        let (phase_left, cur_locality, cur_sharing, cur_hotspot) = match plan.phases.first() {
            Some(p) => (p.requests, p.locality, p.sharing, p.hotspot),
            None => (0, plan.locality, plan.sharing, plan.hotspot),
        };
        AppProcess {
            client,
            plan,
            rng,
            coordinator,
            phase: Phase::Idle,
            shared: None,
            private: None,
            issued: 0,
            phase_idx: 0,
            phase_left,
            cur_locality,
            cur_sharing,
            cur_hotspot,
            result,
        }
    }

    pub fn result(&self) -> &ProcResult {
        &self.result
    }

    pub fn client(&self) -> &PvfsClient {
        &self.client
    }

    /// Advance the phase schedule by one completed request; on a phase
    /// boundary, cycle to the next phase and re-skew both access streams.
    fn advance_phase(&mut self) {
        if self.plan.phases.is_empty() {
            return;
        }
        self.phase_left = self.phase_left.saturating_sub(1);
        if self.phase_left > 0 {
            return;
        }
        self.phase_idx = (self.phase_idx + 1) % self.plan.phases.len();
        let p = self.plan.phases[self.phase_idx];
        self.phase_left = p.requests;
        self.cur_locality = p.locality;
        self.cur_sharing = p.sharing;
        self.cur_hotspot = p.hotspot;
        for slot in [self.shared.as_mut(), self.private.as_mut()].into_iter().flatten() {
            slot.1.set_hotspot(p.hotspot);
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_>) {
        let use_shared = {
            let s = self.cur_sharing;
            self.rng.chance(s)
        };
        let l = self.cur_locality;
        let (fid, offset, len) = {
            let slot = if use_shared { self.shared.as_mut() } else { self.private.as_mut() };
            let (fid, stream) = slot.expect("file not opened before issue");
            let off = stream.next(l, &mut self.rng);
            (*fid, off, stream.req_len())
        };
        match self.plan.mode {
            Mode::Read => {
                self.client.read(ctx, fid, offset, len);
            }
            Mode::Write => {
                self.client.write(ctx, fid, offset, len, false);
            }
            Mode::SyncWrite => {
                self.client.write(ctx, fid, offset, len, true);
            }
        }
    }

    fn on_completion(&mut self, ctx: &mut Ctx<'_>, c: Completion) {
        match c {
            Completion::Meta { handle, at, .. } => {
                // Match open completions by file name convention: the
                // shared file is opened first, then the private file.
                let stream = AccessStream::with_hotspot(
                    self.plan.partition,
                    self.plan.d_proc,
                    self.plan.window_bytes,
                    self.cur_hotspot,
                );
                if self.shared.is_none() {
                    self.shared = Some((handle.fid, stream));
                    let name = self.plan.private_file.clone();
                    self.client.open(ctx, &name);
                } else {
                    self.private = Some((handle.fid, stream));
                    self.phase = Phase::Running;
                    self.result.started = at;
                    self.issue_next(ctx);
                }
            }
            Completion::MetaErr { reason, .. } => {
                panic!(
                    "process {}/{} open failed: {}",
                    self.plan.instance, self.plan.proc_index, reason
                )
            }
            Completion::Read { bytes, latency, at, .. } => {
                self.result.read_latency.record(latency.as_nanos() as f64);
                self.finish_request(ctx, bytes, at);
            }
            Completion::Write { bytes, latency, at, .. } => {
                self.result.write_latency.record(latency.as_nanos() as f64);
                self.finish_request(ctx, bytes, at);
            }
        }
    }

    fn finish_request(&mut self, ctx: &mut Ctx<'_>, bytes: u64, at: SimTime) {
        self.issued += 1;
        self.result.requests += 1;
        self.result.bytes += bytes;
        self.advance_phase();
        if self.issued >= self.plan.n_requests {
            self.phase = Phase::Done;
            self.result.finished = at;
            self.result.verify_failures = self.client.stats().verify_failures;
            let done = ProcDone(self.result.clone());
            ctx.schedule_in(at.since(ctx.now()), self.coordinator, done);
        } else {
            // Resume when the completing request's CPU work is done.
            ctx.schedule_self(at.since(ctx.now()), IssueNext);
        }
    }
}

impl Actor for AppProcess {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.cast::<Kickoff>() {
            Ok(_) => {
                debug_assert!(matches!(self.phase, Phase::Idle));
                self.phase = Phase::Opening;
                let name = self.plan.shared_file.clone();
                self.client.open(ctx, &name);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.cast::<IssueNext>() {
            Ok(_) => {
                if matches!(self.phase, Phase::Running) {
                    self.issue_next(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.cast::<Deliver>() {
            Ok(d) => {
                if let Some(c) = self.client.on_deliver(ctx, d.0) {
                    self.on_completion(ctx, c);
                }
            }
            Err(m) => panic!("app process received unexpected message: {:?}", m),
        }
    }

    fn name(&self) -> String {
        format!("app{}-p{}", self.plan.instance, self.plan.proc_index)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}
