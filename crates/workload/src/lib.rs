//! # workload — the paper's micro-benchmark (§4.1)
//!
//! "A customizable micro-benchmark which generates different access
//! patterns depending upon the command line values": file size, request
//! size `d`, parallelism `p`, read/write mode, iteration count, degree of
//! locality `l`, and degree of inter-application data sharing `s`.
//!
//! * [`spec`] — the instance specification ([`AppSpec`]) and knobs.
//! * [`stream`] — per-process access streams implementing `l` and the
//!   data-parallel partitioning.
//! * [`process`] — the application-process actor (libpvfs linked in).
//! * [`coordinator`] — run controller collecting per-process results.

pub mod coordinator;
pub mod process;
pub mod spec;
pub mod stream;

pub use coordinator::Coordinator;
pub use process::{AppProcess, Kickoff, ProcDone, ProcPlan, ProcResult};
pub use spec::{default_file_size, AppSpec, Mode, PhaseSpec};
pub use stream::{partition_of, AccessStream};
