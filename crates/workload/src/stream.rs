//! Access-stream generation: the `l` (locality) knob of the paper's
//! micro-benchmark, plus the `hotspot` popularity-skew extension.
//!
//! Each process owns a distinct partition of each file (completely
//! data-parallel, §4.1). Fresh accesses walk the partition sequentially in
//! `d/p`-byte steps (wrapping); with probability `l` the next access
//! instead *re-references* an offset from a recent window sized to stay
//! cache-resident — "a pre-speciﬁed cache hit ratio in I/O accesses".
//! With `hotspot > 0`, fresh accesses are drawn Zipf(θ)-distributed over
//! the partition's request slots instead of walking sequentially, so a hot
//! subset of the partition dominates and frequency-aware replacement
//! policies have something to exploit.

use sim_core::{DetRng, Zipf};
use std::collections::VecDeque;

/// Per-(process, file) offset generator.
#[derive(Debug, Clone)]
pub struct AccessStream {
    partition_start: u64,
    partition_len: u64,
    req_len: u32,
    cursor: u64,
    window: VecDeque<u64>,
    window_cap: usize,
    /// `Some` when `hotspot > 0`: fresh slots are Zipf-sampled.
    zipf: Option<Zipf>,
}

impl AccessStream {
    /// `partition`: this process's `(start, len)` slice of the file.
    /// `req_len`: bytes moved per access (`d / p`).
    /// `window_bytes`: how much recently-touched data counts as "local"
    /// (sized below the per-process share of the node cache).
    pub fn new(partition: (u64, u64), req_len: u32, window_bytes: u64) -> AccessStream {
        Self::with_hotspot(partition, req_len, window_bytes, 0.0)
    }

    /// Like [`AccessStream::new`] with a Zipf popularity skew over fresh
    /// accesses: `hotspot = 0` keeps the sequential walk, larger values
    /// concentrate fresh traffic on low-ranked request slots.
    pub fn with_hotspot(
        partition: (u64, u64),
        req_len: u32,
        window_bytes: u64,
        hotspot: f64,
    ) -> AccessStream {
        assert!(req_len > 0, "zero request length");
        assert!(partition.1 >= req_len as u64, "partition smaller than one request");
        assert!(hotspot >= 0.0, "negative hotspot skew");
        let window_cap = (window_bytes / req_len as u64).max(1) as usize;
        let slots = (partition.1 / req_len as u64).max(1) as usize;
        AccessStream {
            partition_start: partition.0,
            partition_len: partition.1,
            req_len,
            cursor: 0,
            window: VecDeque::with_capacity(window_cap),
            window_cap,
            zipf: (hotspot > 0.0).then(|| Zipf::new(slots, hotspot)),
        }
    }

    /// Re-skew fresh accesses mid-stream (phase-shifting workloads): `0`
    /// returns to the sequential walk, `> 0` re-draws fresh offsets
    /// Zipf(θ)-distributed. The locality window and the sequential cursor
    /// survive the switch — a phase change redirects *fresh* traffic, it
    /// does not erase what the process touched recently.
    pub fn set_hotspot(&mut self, hotspot: f64) {
        assert!(hotspot >= 0.0, "negative hotspot skew");
        let slots = (self.partition_len / self.req_len as u64).max(1) as usize;
        self.zipf = (hotspot > 0.0).then(|| Zipf::new(slots, hotspot));
    }

    /// Next access offset: re-reference with probability `locality`, else a
    /// fresh step (sequential, or Zipf-sampled under a hotspot skew).
    pub fn next(&mut self, locality: f64, rng: &mut DetRng) -> u64 {
        if !self.window.is_empty() && rng.chance(locality) {
            let i = rng.below(self.window.len() as u64) as usize;
            return self.window[i];
        }
        let off = match &self.zipf {
            Some(z) => self.partition_start + z.sample(rng) as u64 * self.req_len as u64,
            None => {
                let off = self.partition_start + self.cursor;
                self.cursor += self.req_len as u64;
                if self.cursor + self.req_len as u64 > self.partition_len {
                    self.cursor = 0; // wrap to keep every request inside the slice
                }
                off
            }
        };
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(off);
        off
    }

    pub fn req_len(&self) -> u32 {
        self.req_len
    }
}

/// The `(start, len)` partition of process `k` of `p` over a file of
/// `file_size` bytes.
pub fn partition_of(file_size: u64, k: u32, p: u32) -> (u64, u64) {
    assert!(p > 0 && k < p);
    let base = file_size / p as u64;
    let start = base * k as u64;
    let len = if k == p - 1 { file_size - start } else { base };
    (start, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_tile_the_file() {
        for p in 1..6u32 {
            let size = 6_000_001u64;
            let mut covered = 0;
            for k in 0..p {
                let (start, len) = partition_of(size, k, p);
                assert_eq!(start, covered);
                covered += len;
            }
            assert_eq!(covered, size);
        }
    }

    #[test]
    fn zero_locality_is_purely_sequential() {
        let mut s = AccessStream::new((1000, 10_000), 500, 2_000);
        let mut rng = DetRng::stream(1, 1);
        let offs: Vec<u64> = (0..5).map(|_| s.next(0.0, &mut rng)).collect();
        assert_eq!(offs, vec![1000, 1500, 2000, 2500, 3000]);
    }

    #[test]
    fn full_locality_rereferences_window() {
        let mut s = AccessStream::new((0, 100_000), 1000, 4_000);
        let mut rng = DetRng::stream(2, 2);
        let first = s.next(1.0, &mut rng); // window empty: fresh
        assert_eq!(first, 0);
        for _ in 0..100 {
            let o = s.next(1.0, &mut rng);
            assert_eq!(o, 0, "with l=1 only the single windowed offset repeats");
        }
    }

    #[test]
    fn intermediate_locality_mixes() {
        // Partition large enough that the cursor never wraps (wrapping
        // makes fresh offsets repeat and would undercount them here).
        let mut s = AccessStream::new((0, 100_000_000), 1000, 8_000);
        let mut rng = DetRng::stream(3, 3);
        let mut fresh = 0;
        let mut seen = std::collections::HashSet::new();
        let n = 10_000;
        for _ in 0..n {
            let o = s.next(0.5, &mut rng);
            if seen.insert(o) {
                fresh += 1;
            }
        }
        let frac = fresh as f64 / n as f64;
        assert!((0.4..0.6).contains(&frac), "fresh fraction {} should be near 1 - l = 0.5", frac);
    }

    #[test]
    fn wraps_within_partition() {
        let mut s = AccessStream::new((100, 3_000), 1000, 1_000);
        let mut rng = DetRng::stream(4, 4);
        for _ in 0..10 {
            let o = s.next(0.0, &mut rng);
            assert!(
                (100..100 + 3_000).contains(&o) && o + 1000 <= 100 + 3000,
                "offset {} escapes the partition",
                o
            );
        }
    }

    #[test]
    fn hotspot_skews_fresh_accesses() {
        // 64 slots, strong skew: the most popular slot must dominate and
        // every offset must stay slot-aligned inside the partition.
        let mut s = AccessStream::with_hotspot((4096, 64 * 1024), 1024, 2048, 1.2);
        let mut rng = DetRng::stream(7, 7);
        let mut counts = std::collections::HashMap::new();
        let n = 4000;
        for _ in 0..n {
            let o = s.next(0.0, &mut rng);
            assert!((4096..4096 + 64 * 1024).contains(&o), "offset {o} escapes the partition");
            assert_eq!((o - 4096) % 1024, 0, "offset {o} not slot-aligned");
            *counts.entry(o).or_insert(0u64) += 1;
        }
        let top = counts.values().copied().max().unwrap();
        assert!(
            top as f64 / n as f64 > 0.15,
            "Zipf(1.2) hottest slot should dominate, got {top}/{n}"
        );
        assert!(counts.len() > 8, "skew must not collapse to a single slot");
    }

    #[test]
    fn zero_hotspot_is_identical_to_sequential() {
        let mut a = AccessStream::new((1000, 10_000), 500, 2_000);
        let mut b = AccessStream::with_hotspot((1000, 10_000), 500, 2_000, 0.0);
        let mut ra = DetRng::stream(9, 9);
        let mut rb = DetRng::stream(9, 9);
        for _ in 0..200 {
            assert_eq!(a.next(0.4, &mut ra), b.next(0.4, &mut rb));
        }
    }

    #[test]
    fn window_bounded() {
        let mut s = AccessStream::new((0, 1_000_000), 1000, 3_000);
        let mut rng = DetRng::stream(5, 5);
        for _ in 0..100 {
            s.next(0.0, &mut rng);
        }
        assert!(s.window.len() <= 3);
    }
}
