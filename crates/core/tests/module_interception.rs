//! Direct tests of the cache module's interception FSM against a scripted
//! iod: fake acknowledgments, request discounting and splitting, pending-
//! block dedup, write absorption and pass-through, flush protocol, and
//! invalidation handling — the mechanisms of §3.2, tested in isolation
//! from the full cluster.

use kcache::{CacheConfig, CacheModule};
use pvfs::{
    pattern_bytes, ByteRange, CostModel, Fid, FlushAck, FlushBlocks, Invalidate, InvalidateAck,
    ReadAck, ReadData, ReadReq, WriteAck, WritePart, WriteReq, CACHE_PORT, CLIENT_PORT_BASE,
    IOD_FLUSH_PORT, IOD_PORT,
};
use sim_core::{Actor, ActorId, Ctx, Dur, Engine, FifoResource, Msg, SimTime};
use sim_net::{Deliver, NetMessage, NodeId, Port, Xmit};
use std::any::Any;

const CLIENT: u16 = 0; // node 0 runs the module + client; node 1 the iod
const IOD: u16 = 1;

/// Scripted iod: answers read requests with pattern data after a fixed
/// delay; records everything it sees.
struct ScriptedIod {
    fabric: ActorId,
    reads: Vec<ReadReq>,
    writes: Vec<WriteReq>,
    flushes: Vec<FlushBlocks>,
    delay: Dur,
    tag: u64,
}

impl ScriptedIod {
    fn reply(&mut self, ctx: &mut Ctx<'_>, dst: (NodeId, Port), wire: u32, payload: impl Any) {
        self.tag += 1;
        let m = NetMessage::new((NodeId(IOD), IOD_PORT), dst, wire, self.tag, payload);
        ctx.schedule_in(self.delay, self.fabric, Xmit(m));
    }
}

impl Actor for ScriptedIod {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let d = match msg.cast::<Deliver>() {
            Ok(d) => d.0,
            Err(_) => return,
        };
        let d = match d.cast::<ReadReq>() {
            Ok((_, rr)) => {
                let total: u64 = rr.ranges.iter().map(|r| r.len as u64).sum();
                self.reply(ctx, rr.reply_to, 64, ReadAck { req_id: rr.req_id, bytes: total });
                for r in &rr.ranges {
                    let rd = ReadData {
                        req_id: rr.req_id,
                        fid: rr.fid,
                        range: *r,
                        data: pattern_bytes(rr.fid, r.offset, r.len as usize),
                    };
                    let wire = rd.wire_bytes();
                    self.reply(ctx, rr.reply_to, wire, rd);
                }
                self.reads.push(*rr);
                return;
            }
            Err(d) => d,
        };
        let d = match d.cast::<WriteReq>() {
            Ok((_, wr)) => {
                let ack = WriteAck { req_id: wr.req_id, bytes: wr.total_bytes() };
                self.reply(ctx, wr.reply_to, 64, ack);
                self.writes.push(*wr);
                return;
            }
            Err(d) => d,
        };
        if let Ok((_, f)) = d.cast::<FlushBlocks>() {
            let ack = FlushAck { req_id: f.req_id };
            self.tag += 1;
            let m = NetMessage::new((NodeId(IOD), IOD_FLUSH_PORT), f.reply_to, 64, self.tag, ack);
            ctx.schedule_in(self.delay, self.fabric, Xmit(m));
            self.flushes.push(*f);
        }
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// Records what the client process receives.
struct ClientProbe {
    acks: Vec<(ReadAck, SimTime)>,
    data: Vec<ReadData>,
    wacks: Vec<WriteAck>,
}
impl Actor for ClientProbe {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let d = match msg.cast::<Deliver>() {
            Ok(d) => d.0,
            Err(_) => return,
        };
        let d = match d.cast::<ReadAck>() {
            Ok((_, a)) => return self.acks.push((*a, ctx.now())),
            Err(d) => d,
        };
        let d = match d.cast::<ReadData>() {
            Ok((_, r)) => return self.data.push(*r),
            Err(d) => d,
        };
        if let Ok((_, a)) = d.cast::<WriteAck>() {
            self.wacks.push(*a);
        }
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

struct Rig {
    eng: Engine,
    module: ActorId,
    iod: ActorId,
    client: ActorId,
}

fn rig_with(cfg: CacheConfig) -> Rig {
    let mut eng = Engine::new(3);
    let fabric_slot = eng.reserve_actor();
    let net0 = eng.reserve_actor();
    let net1 = eng.reserve_actor();
    eng.install(
        fabric_slot,
        Box::new(sim_net::Fabric::new(sim_net::NetConfig::hub_100mbps(), vec![net0, net1])),
    );
    let iod = eng.add_actor(Box::new(ScriptedIod {
        fabric: fabric_slot,
        reads: vec![],
        writes: vec![],
        flushes: vec![],
        delay: Dur::micros(500),
        tag: 0,
    }));
    let client = eng.add_actor(Box::new(ClientProbe { acks: vec![], data: vec![], wacks: vec![] }));
    let mut module = CacheModule::new(
        NodeId(CLIENT),
        fabric_slot,
        FifoResource::shared("cpu0"),
        CostModel::default(),
        cfg,
    );
    let client_port = Port(CLIENT_PORT_BASE);
    module.register_client(client_port, client, kcache::AppId(0));
    let module = eng.add_actor(Box::new(module));
    // Node 0: client port + cache port → module. Node 1: iod ports.
    let mut n0 = sim_net::NodeNet::new(NodeId(CLIENT));
    n0.bind(client_port, module);
    n0.bind(CACHE_PORT, module);
    eng.install(net0, Box::new(n0));
    let mut n1 = sim_net::NodeNet::new(NodeId(IOD));
    n1.bind(IOD_PORT, iod);
    n1.bind(IOD_FLUSH_PORT, iod);
    eng.install(net1, Box::new(n1));
    Rig { eng, module, iod, client }
}

fn rig() -> Rig {
    rig_with(CacheConfig::paper())
}

/// The client's outbound request, as libpvfs would send it.
fn read_req(req_id: u64, ranges: Vec<ByteRange>) -> Xmit {
    let rr = ReadReq {
        req_id,
        fid: Fid(1),
        ranges,
        reply_to: (NodeId(CLIENT), Port(CLIENT_PORT_BASE)),
        caching: true,
    };
    let wire = rr.wire_bytes();
    Xmit(NetMessage::new(
        (NodeId(CLIENT), Port(CLIENT_PORT_BASE)),
        (NodeId(IOD), IOD_PORT),
        wire,
        0,
        rr,
    ))
}

fn write_req(req_id: u64, range: ByteRange, sync: bool) -> Xmit {
    let wr = WriteReq {
        req_id,
        fid: Fid(1),
        parts: vec![WritePart {
            range,
            data: pattern_bytes(Fid(1), range.offset, range.len as usize),
        }],
        reply_to: (NodeId(CLIENT), Port(CLIENT_PORT_BASE)),
        caching: true,
        sync,
    };
    let wire = wr.wire_bytes();
    Xmit(NetMessage::new(
        (NodeId(CLIENT), Port(CLIENT_PORT_BASE)),
        (NodeId(IOD), IOD_PORT),
        wire,
        0,
        wr,
    ))
}

#[test]
fn cold_read_forwards_block_aligned_then_repeat_is_faked_locally() {
    let mut r = rig();
    // 6000 bytes at offset 1000: blocks 0 and 1.
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(1000, 6000)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(100));
    {
        let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
        assert_eq!(iod.reads.len(), 1, "miss must forward");
        // Fetch is rounded to whole blocks.
        assert_eq!(iod.reads[0].ranges, vec![ByteRange::new(0, 8192)]);
        let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
        assert_eq!(c.acks.len(), 1, "iod ack forwarded");
        assert_eq!(c.data.len(), 1);
        assert_eq!(c.data[0].range, ByteRange::new(1000, 6000), "client sees its own range");
        let expect = pattern_bytes(Fid(1), 1000, 6000);
        assert_eq!(c.data[0].data, expect, "assembled bytes match the file pattern");
    }
    // Same read again: served from cache, nothing new on the wire, ack faked.
    r.eng.post(Dur::ZERO, r.module, read_req(2, vec![ByteRange::new(1000, 6000)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(200));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.reads.len(), 1, "hit must not reach the iod");
    let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
    assert_eq!(c.acks.len(), 2);
    assert_eq!(c.data.len(), 2);
    assert_eq!(c.data[1].data, pattern_bytes(Fid(1), 1000, 6000));
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(m.stats().full_hits, 1);
    assert_eq!(m.stats().fake_read_acks, 1);
}

#[test]
fn cached_block_in_the_middle_splits_the_request() {
    let mut r = rig();
    // Warm block 1 (bytes 4096..8192).
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(4096, 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(100));
    // Request blocks 0..2: block 1 is cached, so the outgoing request must
    // carry two ranges around it (the paper's request splitting).
    r.eng.post(Dur::ZERO, r.module, read_req(2, vec![ByteRange::new(0, 3 * 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(200));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.reads.len(), 2);
    assert_eq!(
        iod.reads[1].ranges,
        vec![ByteRange::new(0, 4096), ByteRange::new(8192, 4096)],
        "cached middle block must be discounted"
    );
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert!(m.stats().request_splits >= 1);
    // Client still receives its single contiguous range, correct bytes.
    let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
    let last = c.data.last().unwrap();
    assert_eq!(last.range, ByteRange::new(0, 3 * 4096));
    assert_eq!(last.data, pattern_bytes(Fid(1), 0, 3 * 4096));
}

#[test]
fn concurrent_requests_for_same_block_fetch_once() {
    let mut r = rig();
    // Two different "processes" (same port here, distinct req ids) ask for
    // the same cold block back to back, before the fetch returns.
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(0, 4096)]));
    r.eng.post(Dur::micros(10), r.module, read_req(2, vec![ByteRange::new(0, 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(100));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.reads.len(), 1, "second fetch must be deduplicated");
    let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
    assert_eq!(c.acks.len(), 2, "both requests acknowledged (one real, one faked)");
    assert_eq!(c.data.len(), 2, "both requests served data");
    assert_eq!(c.data[0].data, c.data[1].data);
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(m.stats().dedup_blocks, 1);
}

#[test]
fn write_is_absorbed_acked_locally_then_flushed() {
    let mut r = rig();
    r.eng.post(Dur::ZERO, r.module, write_req(1, ByteRange::new(0, 8192), false));
    // Run shortly: ack must be faked before any flush round-trip.
    r.eng.run_until(SimTime::ZERO + Dur::millis(2));
    {
        let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
        assert_eq!(c.wacks.len(), 1, "write-behind must ack locally");
        let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
        assert!(iod.writes.is_empty(), "no synchronous write to the iod");
        assert!(iod.flushes.is_empty(), "flusher has not ticked yet");
    }
    // After a flush interval the dirty blocks reach the iod's flush port.
    r.eng.run_until(SimTime::ZERO + Dur::secs(2));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.flushes.len(), 1);
    let f = &iod.flushes[0];
    assert_eq!(f.blocks.len(), 2);
    assert_eq!(f.blocks[0].data, pattern_bytes(Fid(1), 0, 4096));
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(m.stats().fake_write_acks, 1);
    assert_eq!(m.stats().flush_msgs, 1);
}

#[test]
fn write_through_ablation_forwards_everything() {
    let cfg = CacheConfig { write_behind: false, ..CacheConfig::paper() };
    let mut r = rig_with(cfg);
    r.eng.post(Dur::ZERO, r.module, write_req(1, ByteRange::new(0, 4096), false));
    r.eng.run_until(SimTime::ZERO + Dur::millis(100));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.writes.len(), 1, "write-through must reach the iod");
    let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
    assert_eq!(c.wacks.len(), 1, "ack comes from the iod");
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(m.stats().fake_write_acks, 0);
}

#[test]
fn sync_write_passes_through_and_updates_cached_copy() {
    let mut r = rig();
    // Cache block 0 via a read.
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(0, 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(50));
    // Sync-write the same block.
    r.eng.post(Dur::ZERO, r.module, write_req(2, ByteRange::new(0, 4096), true));
    r.eng.run_until(SimTime::ZERO + Dur::millis(150));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.writes.len(), 1, "sync write must reach the iod");
    assert!(iod.writes[0].sync);
    let m = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(m.stats().sync_writes, 1);
    // A subsequent read hits the (updated) local copy.
    r.eng.post(Dur::ZERO, r.module, read_req(3, vec![ByteRange::new(0, 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(250));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.reads.len(), 1, "read after sync-write still hits locally");
}

#[test]
fn invalidation_drops_blocks_and_acks_the_iod() {
    let mut r = rig();
    // Cache blocks 0-1.
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(0, 8192)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(50));
    // The iod (conceptually, on behalf of another node's sync write) sends
    // an invalidation to the module's cache port.
    let inv = Invalidate {
        req_id: 77,
        fid: Fid(1),
        blocks: vec![0, 1],
        reply_to: (NodeId(IOD), IOD_PORT),
    };
    let wire = inv.wire_bytes();
    let m = NetMessage::new((NodeId(IOD), IOD_PORT), (NodeId(CLIENT), CACHE_PORT), wire, 0, inv);
    // Deliver through the fabric like real traffic.
    let fabric = {
        // fabric is actor 0 (first reserved); simplest: send via module's rig
        // knowledge — post directly to the module as a Deliver.
        m
    };
    r.eng.post(Dur::ZERO, r.module, Deliver(fabric));
    r.eng.run_until(SimTime::ZERO + Dur::millis(100));
    let module = r.eng.actor_as::<CacheModule>(r.module).unwrap();
    assert_eq!(module.stats().invalidate_msgs, 1);
    assert_eq!(module.cache().stats().invalidated, 2);
    // Next read misses and refetches.
    r.eng.post(Dur::ZERO, r.module, read_req(2, vec![ByteRange::new(0, 8192)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(200));
    let iod = r.eng.actor_as::<ScriptedIod>(r.iod).unwrap();
    assert_eq!(iod.reads.len(), 2, "invalidated blocks must be refetched");
}

#[test]
fn invalidate_ack_reaches_the_iod_port() {
    // Ensure the InvalidateAck is actually emitted onto the wire toward the
    // iod (the sync-writer's ack depends on it).
    struct AckCatcher {
        acks: u64,
    }
    impl Actor for AckCatcher {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            if let Ok(d) = msg.cast::<Deliver>() {
                if d.0.peek::<InvalidateAck>().is_some() {
                    self.acks += 1;
                }
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }
    let mut eng = Engine::new(5);
    let fabric_slot = eng.reserve_actor();
    let net0 = eng.reserve_actor();
    let net1 = eng.reserve_actor();
    eng.install(
        fabric_slot,
        Box::new(sim_net::Fabric::new(sim_net::NetConfig::hub_100mbps(), vec![net0, net1])),
    );
    let catcher = eng.add_actor(Box::new(AckCatcher { acks: 0 }));
    let module = eng.add_actor(Box::new(CacheModule::new(
        NodeId(0),
        fabric_slot,
        FifoResource::shared("cpu"),
        CostModel::default(),
        CacheConfig::paper(),
    )));
    let mut n0 = sim_net::NodeNet::new(NodeId(0));
    n0.bind(CACHE_PORT, module);
    eng.install(net0, Box::new(n0));
    let mut n1 = sim_net::NodeNet::new(NodeId(1));
    n1.bind(IOD_PORT, catcher);
    eng.install(net1, Box::new(n1));
    let inv =
        Invalidate { req_id: 9, fid: Fid(4), blocks: vec![3], reply_to: (NodeId(1), IOD_PORT) };
    let wire = inv.wire_bytes();
    eng.post(
        Dur::ZERO,
        module,
        Deliver(NetMessage::new((NodeId(1), IOD_PORT), (NodeId(0), CACHE_PORT), wire, 0, inv)),
    );
    eng.run_until(SimTime::ZERO + Dur::millis(50));
    assert_eq!(eng.actor_as::<AckCatcher>(catcher).unwrap().acks, 1);
}

#[test]
fn bytes_of_pattern_survive_partial_hit_assembly() {
    let mut r = rig();
    // Warm blocks 2 and 5 individually.
    r.eng.post(Dur::ZERO, r.module, read_req(1, vec![ByteRange::new(2 * 4096, 4096)]));
    r.eng.post(Dur::millis(5), r.module, read_req(2, vec![ByteRange::new(5 * 4096, 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(50));
    // Read blocks 0..8 with an unaligned tail: mixture of hits and misses.
    r.eng.post(Dur::ZERO, r.module, read_req(3, vec![ByteRange::new(100, 8 * 4096)]));
    r.eng.run_until(SimTime::ZERO + Dur::millis(200));
    let c = r.eng.actor_as::<ClientProbe>(r.client).unwrap();
    let last = c.data.last().unwrap();
    assert_eq!(last.range, ByteRange::new(100, 8 * 4096));
    assert_eq!(
        last.data,
        pattern_bytes(Fid(1), 100, 8 * 4096),
        "partial-hit assembly corrupted data"
    );
}
