//! # kcache — the paper's kernel-level shared I/O cache
//!
//! Reproduction of the contribution of *"Kernel-Level Caching for
//! Optimizing I/O by Exploiting Inter-Application Data Sharing"*
//! (Vilayannur, Kandemir, Sivasubramaniam — CLUSTER 2002): a per-node block
//! cache, shared by **all application processes on the node**, inserted
//! transparently underneath the PVFS client library by intercepting its
//! socket traffic.
//!
//! * [`block`] — block identity and in-block spans (4 KB blocks, §3.2).
//! * [`manager`] — the buffer manager: open-hash table with per-bucket
//!   locks, free list, dirty list, pluggable replacement (the
//!   `kcache-policy` crate: clock by default, exact LRU, LFU, 2Q, ARC,
//!   sharing-aware) with clean-first eviction, write-behind with
//!   saturation pass-through, invalidation. `Send + Sync`, exercised by
//!   real threads in tests and benches.
//! * [`module`] — the cache module actor: per-socket interception FSM
//!   (request discounting, request splitting, fake acks, data assembly),
//!   the flusher and harvester background threads, and the sync-write
//!   coherence client.
//! * [`config`] — the paper's 1.2 MB configuration and tuning knobs.

pub mod block;
pub mod config;
pub mod manager;
pub mod module;
mod ring;

pub use block::{blocks_of_range, span_in_block, BlockKey, Span, CACHE_BLOCK_SIZE};
pub use config::{CacheConfig, CooperativeConfig, DirectoryMode, PartitionConfig, PartitionMode};
pub use manager::{
    Access, AccessKind, AccessOutcome, BufferManager, BufferManagerBuilder, CacheStats,
    EvictPolicy, FlushItem, WriteOutcome,
};
pub use module::{CacheModule, ModuleStats};

/// The replacement-policy subsystem, re-exported for consumers that select
/// or inspect policies (configs, ablations, experiment binaries).
pub use kcache_policy as policy;
pub use kcache_policy::{
    AdaptiveStats, AppId, AppUsage, GhostRate, PolicyKind, PolicyStats, QuotaMoveRecord,
    QuotaUpdate, ReplacementPolicy, SwitchRecord,
};

/// The adaptive meta-policy subsystem (ghost caches, epoch switching,
/// quota tuning), re-exported for configuration downstream.
pub use kcache_adaptive as adaptive;
pub use kcache_adaptive::{AdaptiveConfig, AdaptivePolicy};

/// The observability subsystem (lock-free metrics, the structured trace
/// ring, epoch-aligned snapshots), re-exported so downstream consumers
/// (the cluster harness, experiment binaries) wire one [`obs::ObsHub`]
/// through [`CacheConfig`] without a direct `kcache-obs` dependency.
pub use kcache_obs as obs;
pub use kcache_obs::ObsHub;
