//! The bounded lock-free access-event ring — the side-buffer between the
//! buffer manager's lock-free hit fast path (producers: every thread
//! recording a hit, miss, probe or recency touch) and the replacement
//! policy (consumer: whoever next takes the policy lock drains the ring
//! in FIFO order via [`ReplacementPolicy::drain`]).
//!
//! The design is the classic bounded MPMC sequence-number queue (Vyukov):
//! each slot carries a sequence word that encodes whether the slot is
//! writable (seq == pos), readable (seq == pos + 1), or lapped. Producers
//! claim a slot with one CAS and publish with one release store; a
//! consumer claims with one CAS and releases the slot for the next lap.
//! The payload fields are plain atomics rather than an `UnsafeCell` —
//! events are three words, the protocol already orders the accesses, and
//! it keeps the implementation `forbid(unsafe_code)`-clean.
//!
//! When the ring fills (a long pure-hit run with nothing draining it),
//! the *producer becomes the drainer*: the manager takes the policy lock,
//! drains, and applies its own event inline. Nothing is ever dropped —
//! that is what keeps drained accounting observation-equivalent to the
//! eager path — and memory stays bounded at `CAPACITY` events.
//!
//! [`ReplacementPolicy::drain`]: kcache_policy::ReplacementPolicy::drain

use kcache_policy::{AccessEvent, AccessKind, AppId};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Events the ring holds before a producer is forced to drain inline.
/// 1024 events ≈ one drain per thousand pure hits worst-case — the
/// amortized lock traffic the fast path is allowed to keep. Also the
/// per-call pop budget of the manager's `drain_locked`: a drainer that
/// kept popping while producers kept publishing could hold the policy
/// lock (and grow its batch) without bound.
pub(crate) const CAPACITY: usize = 1024;

struct Slot {
    /// Vyukov sequence word (see module docs).
    seq: AtomicUsize,
    key: AtomicU64,
    /// `frame` in the high 32 bits, `app` in the low 32.
    frame_app: AtomicU64,
    /// `AccessKind` as a small integer.
    kind: AtomicU32,
}

fn encode_kind(kind: AccessKind) -> u32 {
    match kind {
        AccessKind::Hit => 0,
        AccessKind::ProbeHit => 1,
        AccessKind::Miss => 2,
        AccessKind::Touch => 3,
    }
}

fn decode_kind(raw: u32) -> AccessKind {
    match raw {
        0 => AccessKind::Hit,
        1 => AccessKind::ProbeHit,
        2 => AccessKind::Miss,
        _ => AccessKind::Touch,
    }
}

pub(crate) struct EventRing {
    slots: Vec<Slot>,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
    /// Times `push` found the ring full (the producer-becomes-drainer
    /// event). Nothing is lost — the refused event is applied inline —
    /// but each occurrence is a recency window where hits convoyed on
    /// the policy lock; observability wants them countable.
    overflows: AtomicU64,
}

impl EventRing {
    pub(crate) fn new() -> EventRing {
        EventRing {
            slots: (0..CAPACITY)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    key: AtomicU64::new(0),
                    frame_app: AtomicU64::new(0),
                    kind: AtomicU32::new(0),
                })
                .collect(),
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
            overflows: AtomicU64::new(0),
        }
    }

    /// How many pushes were refused because the ring was full.
    pub(crate) fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Enqueue `ev`; `false` means the ring is full and the caller must
    /// drain (producer-becomes-drainer, see module docs).
    pub(crate) fn push(&self, ev: AccessEvent) -> bool {
        let mask = CAPACITY - 1;
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.key.store(ev.key, Ordering::Relaxed);
                        slot.frame_app
                            .store(((ev.frame as u64) << 32) | ev.app.0 as u64, Ordering::Relaxed);
                        slot.kind.store(encode_kind(ev.kind), Ordering::Relaxed);
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Full lap: the queue is full.
                self.overflows.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue the oldest event, `None` when empty. FIFO per producer and
    /// globally consistent with the sequence protocol; the manager only
    /// pops while holding the policy lock, so batches apply in order.
    pub(crate) fn pop(&self) -> Option<AccessEvent> {
        let mask = CAPACITY - 1;
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let key = slot.key.load(Ordering::Relaxed);
                        let fa = slot.frame_app.load(Ordering::Relaxed);
                        let kind = decode_kind(slot.kind.load(Ordering::Relaxed));
                        slot.seq.store(pos + CAPACITY, Ordering::Release);
                        return Some(AccessEvent {
                            kind,
                            frame: (fa >> 32) as u32,
                            key,
                            app: AppId(fa as u32),
                        });
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None; // empty (or the publishing store is in flight)
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_trip() {
        let r = EventRing::new();
        assert!(r.pop().is_none());
        assert!(r.push(AccessEvent::hit(7, 1234, AppId(3))));
        assert!(r.push(AccessEvent::miss(AppId(1))));
        assert!(r.push(AccessEvent::touch(9, 88, AppId::UNKNOWN)));
        assert!(r.push(AccessEvent::probe_hit(AppId(2))));
        assert_eq!(r.pop(), Some(AccessEvent::hit(7, 1234, AppId(3))));
        assert_eq!(r.pop(), Some(AccessEvent::miss(AppId(1))));
        assert_eq!(r.pop(), Some(AccessEvent::touch(9, 88, AppId::UNKNOWN)));
        assert_eq!(r.pop(), Some(AccessEvent::probe_hit(AppId(2))));
        assert!(r.pop().is_none());
    }

    #[test]
    fn fills_and_recovers() {
        let r = EventRing::new();
        for i in 0..CAPACITY {
            assert!(r.push(AccessEvent::hit(i as u32, i as u64, AppId(0))), "push {i}");
        }
        assert!(!r.push(AccessEvent::miss(AppId(0))), "full ring must refuse");
        assert_eq!(r.overflows(), 1, "the refusal is counted");
        // Drain half, refill: the ring wraps cleanly.
        for i in 0..CAPACITY / 2 {
            assert_eq!(r.pop().unwrap().frame, i as u32);
        }
        for i in 0..CAPACITY / 2 {
            assert!(r.push(AccessEvent::touch(i as u32, 0, AppId(1))));
        }
        assert!(!r.push(AccessEvent::miss(AppId(0))));
        assert_eq!(r.overflows(), 2);
        let mut n = 0;
        while r.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, CAPACITY);
    }

    #[test]
    fn concurrent_producers_and_consumer_lose_nothing() {
        use std::sync::atomic::AtomicU64 as Counter;
        let r = EventRing::new();
        let produced = Counter::new(0);
        let consumed = Counter::new(0);
        let refused = Counter::new(0);
        let per_thread = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let (r, produced, refused) = (&r, &produced, &refused);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let ev = AccessEvent::hit(t, i, AppId(t));
                        loop {
                            if r.push(ev) {
                                produced.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            refused.fetch_add(1, Ordering::Relaxed);
                            // Full: in the manager the producer would
                            // drain; here the consumer thread catches up.
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let (r, consumed, produced) = (&r, &consumed, &produced);
            s.spawn(move || loop {
                match r.pop() {
                    Some(_) => {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if produced.load(Ordering::Relaxed) == 4 * per_thread
                            && consumed.load(Ordering::Relaxed) == 4 * per_thread
                        {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 4 * per_thread);
        // Every refused push — and only those — hit the overflow counter.
        assert_eq!(r.overflows(), refused.load(Ordering::Relaxed));
    }
}
