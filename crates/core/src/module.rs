//! The kernel cache module actor — the paper's contribution.
//!
//! Installed on a client node, it impersonates the socket layer in both
//! directions (§3.2):
//!
//! * **outbound**: libpvfs's `sock_target` points here instead of at the
//!   fabric, so every iod request is intercepted. Reads are *discounted* by
//!   the cached blocks (possibly splitting contiguous ranges around cached
//!   holes); fully-cached requests never reach the network — the module
//!   **fakes the acknowledgment** and serves the data locally. Writes are
//!   absorbed into the cache (write-behind) and acked immediately, unless
//!   the cache is saturated with dirty data or the write is a sync-write.
//! * **inbound**: the node's `NodeNet` binds the client reply ports to the
//!   module, so iod replies flow through it: arriving data is copied into
//!   the cache, pending partial requests are completed, and a per-request
//!   finite state machine reconciles what the client library expects to
//!   receive with what actually crossed the wire.
//!
//! Two background activities complete the picture: the **flusher** (ships
//! dirty blocks to the iods' flush listeners periodically) and the
//! **harvester** (replenishes the free list to the high watermark when it
//! drops below the low watermark).

use crate::block::{blocks_of_range, span_in_block, BlockKey, Span, CACHE_BLOCK_SIZE};
use crate::config::CacheConfig;
use crate::manager::{BufferManager, FlushItem, WriteOutcome};
use bytes::Bytes;
use kcache_policy::AppId;
use pvfs::{
    ByteRange, CostModel, Fid, FlushAck, FlushBlocks, FlushEntry, Invalidate, InvalidateAck,
    ReadAck, ReadData, ReadReq, WriteAck, WritePart, WriteReq, CACHE_PORT, IOD_FLUSH_PORT,
};
use sim_core::{resource, Actor, ActorId, Ctx, Dur, Msg, SharedResource, SimTime};
use sim_net::{Deliver, NetMessage, NodeId, Port, Xmit};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Module statistics (beyond the buffer manager's own counters).
#[derive(Debug, Default, Clone)]
pub struct ModuleStats {
    pub reads_intercepted: u64,
    pub writes_intercepted: u64,
    pub full_hits: u64,
    pub partial_hits: u64,
    pub full_misses: u64,
    pub request_splits: u64,
    pub fake_read_acks: u64,
    pub fake_write_acks: u64,
    pub blocks_served: u64,
    pub blocks_fetched: u64,
    /// Blocks a request wanted that were already in flight for another
    /// process — the inter-application "pending request" hit (§3.2).
    pub dedup_blocks: u64,
    pub bytes_served: u64,
    pub bytes_fetched: u64,
    pub bytes_absorbed: u64,
    pub bytes_passthrough: u64,
    pub sync_writes: u64,
    pub invalidate_msgs: u64,
    pub flush_msgs: u64,
    pub urgent_flush_blocks: u64,
    pub harvest_runs: u64,
}

/// A client range still waiting for fetched blocks.
struct WaitingRange {
    range: ByteRange,
    missing: Vec<u64>,
    buf: Vec<u8>,
}

/// Per (client, request) fetch state.
struct PendingFetch {
    fid: Fid,
    client_port: Port,
    waiting: Vec<WaitingRange>,
}

struct FlushTick;
struct HarvestNow;

/// The cache module actor.
pub struct CacheModule {
    node: NodeId,
    fabric: ActorId,
    cpu: SharedResource,
    costs: CostModel,
    cfg: CacheConfig,
    cache: Arc<BufferManager>,
    /// Client reply port → client actor (the processes on this node).
    clients: HashMap<u16, ActorId>,
    /// Client reply port → owning application instance; lets the buffer
    /// manager's policy attribute every access to an application, which is
    /// what the sharing-aware policy ranks by.
    client_apps: HashMap<u16, AppId>,
    pending: HashMap<(u16, u64), PendingFetch>,
    /// Blocks currently being fetched from an iod (the FSM's "transfers
    /// pending" state); requests for these blocks wait instead of
    /// re-fetching.
    fetching: std::collections::HashSet<BlockKey>,
    /// Which pending requests wait on each in-flight block.
    block_waiters: HashMap<BlockKey, Vec<(u16, u64)>>,
    /// Resident blocks in flight per flush request (completed on FlushAck).
    inflight_flushes: HashMap<u64, Vec<(BlockKey, Span)>>,
    flush_seq: u64,
    harvest_scheduled: bool,
    started: bool,
    tag: u64,
    stats: ModuleStats,
}

impl CacheModule {
    pub fn new(
        node: NodeId,
        fabric: ActorId,
        cpu: SharedResource,
        costs: CostModel,
        cfg: CacheConfig,
    ) -> CacheModule {
        let cache = Arc::new(BufferManager::with_full_config(
            cfg.capacity_blocks,
            cfg.policy,
            cfg.low_watermark,
            cfg.high_watermark,
            cfg.partitioning.clone(),
            cfg.adaptive.clone(),
            cfg.epoch_accesses,
        ));
        CacheModule {
            node,
            fabric,
            cpu,
            costs,
            cfg,
            cache,
            clients: HashMap::new(),
            client_apps: HashMap::new(),
            pending: HashMap::new(),
            fetching: std::collections::HashSet::new(),
            block_waiters: HashMap::new(),
            inflight_flushes: HashMap::new(),
            flush_seq: 1,
            harvest_scheduled: false,
            started: false,
            tag: 0,
            stats: ModuleStats::default(),
        }
    }

    /// Register a client process living on this node (its reply port must
    /// also be bound to this module in the node's `NodeNet`), together with
    /// the application instance it belongs to.
    pub fn register_client(&mut self, port: Port, actor: ActorId, app: AppId) {
        self.clients.insert(port.0, actor);
        self.client_apps.insert(port.0, app);
    }

    /// Application owning a client reply port ([`AppId::UNKNOWN`] for
    /// traffic from unregistered ports).
    fn app_of(&self, port: Port) -> AppId {
        self.client_apps.get(&port.0).copied().unwrap_or(AppId::UNKNOWN)
    }

    pub fn stats(&self) -> &ModuleStats {
        &self.stats
    }

    pub fn cache(&self) -> &Arc<BufferManager> {
        &self.cache
    }

    fn charge(&self, now: SimTime, d: Dur) -> SimTime {
        resource::reserve(&self.cpu, now, d)
    }

    /// Deliver a synthesized message to a local client process.
    fn send_to_client(&mut self, ctx: &mut Ctx<'_>, at: SimTime, port: Port, payload: impl Any) {
        let Some(&client) = self.clients.get(&port.0) else {
            debug_assert!(false, "no client registered on {:?}", port);
            return;
        };
        self.tag += 1;
        let m = NetMessage::new((self.node, CACHE_PORT), (self.node, port), 0, self.tag, payload);
        ctx.schedule_in(at.since(ctx.now()), client, Deliver(m));
    }

    /// Put a (possibly rewritten) message on the wire.
    fn send_to_net(&mut self, ctx: &mut Ctx<'_>, at: SimTime, m: NetMessage) {
        ctx.schedule_in(at.since(ctx.now()), self.fabric, Xmit(m));
    }

    fn maybe_schedule_harvest(&mut self, ctx: &mut Ctx<'_>) {
        if !self.harvest_scheduled && self.cache.needs_harvest() {
            self.harvest_scheduled = true;
            ctx.schedule_self(self.cfg.harvester_wakeup, HarvestNow);
        }
    }

    /// Ship flush items to their home iods (grouped per iod+fid).
    /// `resident` items stay in the cache until their FlushAck arrives;
    /// eviction victims are gone from the cache already.
    fn send_flushes(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SimTime,
        items: Vec<FlushItem>,
        urgent: bool,
        resident: bool,
    ) {
        if items.is_empty() {
            return;
        }
        if urgent {
            self.stats.urgent_flush_blocks += items.len() as u64;
        }
        // Per (iod, fid) batch: the wire entry plus the cache coordinates
        // needed to mark the flush complete when the ack returns.
        type FlushBatch = Vec<(FlushEntry, BlockKey, Span)>;
        let mut groups: HashMap<(NodeId, Fid), FlushBatch> = HashMap::new();
        for it in items {
            groups.entry((it.home, it.key.fid)).or_default().push((
                FlushEntry { blk: it.key.blk, offset: it.span.start, data: Bytes::from(it.data) },
                it.key,
                it.span,
            ));
        }
        let mut at = at;
        for ((home, fid), entries) in groups {
            let nblocks = entries.len() as u64;
            let cpu = self.costs.send_overhead
                + Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * nblocks / 4);
            at = self.charge(at, cpu);
            self.flush_seq += 1;
            if resident {
                self.inflight_flushes
                    .insert(self.flush_seq, entries.iter().map(|(_, k, sp)| (*k, *sp)).collect());
            }
            let f = FlushBlocks {
                req_id: self.flush_seq,
                fid,
                blocks: entries.into_iter().map(|(e, _, _)| e).collect(),
                reply_to: (self.node, CACHE_PORT),
            };
            self.tag += 1;
            let wire = f.wire_bytes();
            let m =
                NetMessage::new((self.node, CACHE_PORT), (home, IOD_FLUSH_PORT), wire, self.tag, f);
            self.send_to_net(ctx, at, m);
            self.stats.flush_msgs += 1;
        }
    }

    // -----------------------------------------------------------------
    // Outbound interception (libpvfs → net)
    // -----------------------------------------------------------------

    fn intercept_read(&mut self, ctx: &mut Ctx<'_>, mut net: NetMessage, rr: ReadReq) {
        self.stats.reads_intercepted += 1;
        let now = ctx.now();
        let iod_node = net.dst;
        let client_port = rr.reply_to.1;
        let app = self.app_of(client_port);
        let total_blocks: u64 =
            rr.ranges.iter().map(|r| blocks_of_range(r.offset, r.len).count() as u64).sum();
        // FSM + hash lookups for every block of the request.
        let mut t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * total_blocks),
        );

        let mut served: Vec<(ByteRange, Vec<u8>)> = Vec::new();
        let mut waiting: Vec<WaitingRange> = Vec::new();
        let mut fetch_ranges: Vec<ByteRange> = Vec::new();
        let mut hit_blocks = 0u64;
        let mut waited_keys: Vec<BlockKey> = Vec::new();

        for r in &rr.ranges {
            let mut buf = vec![0u8; r.len as usize];
            let mut missing: Vec<u64> = Vec::new();
            for blk in blocks_of_range(r.offset, r.len) {
                let span = span_in_block(blk, r.offset, r.len);
                let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - r.offset) as usize;
                let hi = lo + span.len() as usize;
                if self.cache.try_read_by(BlockKey::new(rr.fid, blk), span, &mut buf[lo..hi], app) {
                    hit_blocks += 1;
                } else {
                    missing.push(blk);
                }
            }
            if missing.is_empty() {
                served.push((*r, buf));
            } else {
                // Fetch only blocks not already in flight (the FSM's
                // pending-block state): a concurrent fetch — possibly for a
                // *different application's* process — will satisfy ours too.
                let to_fetch: Vec<u64> = missing
                    .iter()
                    .copied()
                    .filter(|blk| !self.fetching.contains(&BlockKey::new(rr.fid, *blk)))
                    .collect();
                self.stats.dedup_blocks += (missing.len() - to_fetch.len()) as u64;
                for blk in &missing {
                    waited_keys.push(BlockKey::new(rr.fid, *blk));
                }
                // Block-aligned fetch ranges over the to-fetch blocks,
                // coalescing adjacent blocks. A cached block in the middle
                // of the range splits the external request (§3.2).
                let mut runs = 0;
                let mut i = 0;
                while i < to_fetch.len() {
                    let start = to_fetch[i];
                    let mut n = 1u64;
                    while i + (n as usize) < to_fetch.len() && to_fetch[i + n as usize] == start + n
                    {
                        n += 1;
                    }
                    fetch_ranges.push(ByteRange::new(
                        start * CACHE_BLOCK_SIZE as u64,
                        (n * CACHE_BLOCK_SIZE as u64) as u32,
                    ));
                    self.fetching.insert(BlockKey::new(rr.fid, start));
                    for b in start..start + n {
                        self.fetching.insert(BlockKey::new(rr.fid, b));
                    }
                    runs += 1;
                    i += n as usize;
                }
                if runs > 1
                    || missing.len() as u64 != blocks_of_range(r.offset, r.len).count() as u64
                {
                    self.stats.request_splits += 1;
                }
                waiting.push(WaitingRange { range: *r, missing, buf });
            }
        }

        // Copy cost for blocks served from cache.
        if hit_blocks > 0 {
            t = self.charge(t, Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * hit_blocks));
            self.stats.blocks_served += hit_blocks;
        }

        if waiting.is_empty() {
            // Full hit: fake the ack, serve everything locally, and never
            // touch the network.
            self.stats.full_hits += 1;
            self.stats.fake_read_acks += 1;
            let total: u64 = rr.ranges.iter().map(|r| r.len as u64).sum();
            self.stats.bytes_served += total;
            self.send_to_client(ctx, t, client_port, ReadAck { req_id: rr.req_id, bytes: total });
            for (range, buf) in served {
                self.send_to_client(
                    ctx,
                    t,
                    client_port,
                    ReadData { req_id: rr.req_id, fid: rr.fid, range, data: Bytes::from(buf) },
                );
            }
            return;
        }
        if hit_blocks > 0 {
            self.stats.partial_hits += 1;
        } else {
            self.stats.full_misses += 1;
        }
        // Serve the fully-cached ranges now.
        for (range, buf) in served {
            self.stats.bytes_served += range.len as u64;
            self.send_to_client(
                ctx,
                t,
                client_port,
                ReadData { req_id: rr.req_id, fid: rr.fid, range, data: Bytes::from(buf) },
            );
        }
        // Register this request as a waiter on every missing block.
        for key in waited_keys {
            let entry = self.block_waiters.entry(key).or_default();
            if !entry.contains(&(client_port.0, rr.req_id)) {
                entry.push((client_port.0, rr.req_id));
            }
        }
        match self.pending.entry((client_port.0, rr.req_id)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().waiting.extend(waiting);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                debug_assert!(
                    self.clients.contains_key(&client_port.0),
                    "intercepted request from unregistered client"
                );
                e.insert(PendingFetch { fid: rr.fid, client_port, waiting });
            }
        }
        if fetch_ranges.is_empty() {
            // Everything missing is already in flight for someone else:
            // nothing to send, but the client still expects this iod's ack.
            self.stats.fake_read_acks += 1;
            let total: u64 = rr.ranges.iter().map(|r| r.len as u64).sum();
            self.send_to_client(ctx, t, client_port, ReadAck { req_id: rr.req_id, bytes: total });
            return;
        }
        let reduced = ReadReq {
            req_id: rr.req_id,
            fid: rr.fid,
            ranges: fetch_ranges,
            reply_to: rr.reply_to,
            caching: true,
        };
        let wire = reduced.wire_bytes();
        // The client already paid the socket-call cost; the in-kernel
        // module only rewrites and passes the buffer onward.
        t = self.charge(t, self.costs.cache_call_overhead);
        net.wire_bytes = wire;
        net.payload = Box::new(reduced);
        let _ = iod_node;
        self.send_to_net(ctx, t, net);
    }

    fn intercept_write(&mut self, ctx: &mut Ctx<'_>, mut net: NetMessage, wr: WriteReq) {
        self.stats.writes_intercepted += 1;
        let now = ctx.now();
        let iod_node = net.dst;
        let client_port = wr.reply_to.1;
        let app = self.app_of(client_port);
        let total_bytes = wr.total_bytes();

        if !self.cfg.write_behind || wr.sync {
            // Write-through ablation, or coherent sync-write: update any
            // resident blocks in place, then forward the full request.
            if wr.sync {
                self.stats.sync_writes += 1;
            }
            let mut blocks = 0u64;
            for part in &wr.parts {
                for blk in blocks_of_range(part.range.offset, part.range.len) {
                    blocks += 1;
                    let span = span_in_block(blk, part.range.offset, part.range.len);
                    let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - part.range.offset)
                        as usize;
                    let hi = lo + span.len() as usize;
                    self.cache.update_if_present(
                        BlockKey::new(wr.fid, blk),
                        span,
                        &part.data[lo..hi],
                    );
                }
            }
            let t = self.charge(
                now,
                self.costs.cache_call_overhead
                    + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * blocks),
            );
            self.stats.bytes_passthrough += total_bytes;
            net.payload = Box::new(wr);
            self.send_to_net(ctx, t, net);
            return;
        }

        let nblocks: u64 = wr
            .parts
            .iter()
            .map(|p| blocks_of_range(p.range.offset, p.range.len).count() as u64)
            .sum();
        let mut t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * nblocks),
        );

        let mut passthrough: Vec<WritePart> = Vec::new();
        let mut absorbed_blocks = 0u64;
        let mut absorbed_bytes = 0u64;
        for part in &wr.parts {
            // Try to absorb block by block; contiguous failures re-form
            // pass-through parts.
            let mut fail_start: Option<u64> = None; // byte offset
            let mut fail_end: u64 = 0;
            for blk in blocks_of_range(part.range.offset, part.range.len) {
                let span = span_in_block(blk, part.range.offset, part.range.len);
                let abs_start = blk * CACHE_BLOCK_SIZE as u64 + span.start as u64;
                let lo = (abs_start - part.range.offset) as usize;
                let hi = lo + span.len() as usize;
                let outcome = self.cache.write_by(
                    BlockKey::new(wr.fid, blk),
                    iod_node,
                    span,
                    &part.data[lo..hi],
                    app,
                );
                match outcome {
                    WriteOutcome::Absorbed => {
                        absorbed_blocks += 1;
                        absorbed_bytes += span.len() as u64;
                        self.maybe_schedule_harvest(ctx);
                    }
                    WriteOutcome::PassThrough => match fail_start {
                        Some(_) if fail_end == abs_start => fail_end += span.len() as u64,
                        Some(s) => {
                            passthrough.push(Self::slice_part(part, s, fail_end));
                            fail_start = Some(abs_start);
                            fail_end = abs_start + span.len() as u64;
                        }
                        None => {
                            fail_start = Some(abs_start);
                            fail_end = abs_start + span.len() as u64;
                        }
                    },
                }
            }
            if let Some(s) = fail_start {
                passthrough.push(Self::slice_part(part, s, fail_end));
            }
        }
        if absorbed_blocks > 0 {
            t = self.charge(
                t,
                Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * absorbed_blocks),
            );
        }
        self.stats.bytes_absorbed += absorbed_bytes;
        if passthrough.is_empty() {
            // Fully absorbed: fake the write ack (write-behind).
            self.stats.fake_write_acks += 1;
            self.send_to_client(
                ctx,
                t,
                client_port,
                WriteAck { req_id: wr.req_id, bytes: total_bytes },
            );
        } else {
            let pass_bytes: u64 = passthrough.iter().map(|p| p.range.len as u64).sum();
            self.stats.bytes_passthrough += pass_bytes;
            let reduced = WriteReq {
                req_id: wr.req_id,
                fid: wr.fid,
                parts: passthrough,
                reply_to: wr.reply_to,
                caching: true,
                sync: false,
            };
            t = self.charge(t, self.costs.cache_call_overhead);
            net.wire_bytes = reduced.wire_bytes();
            net.payload = Box::new(reduced);
            self.send_to_net(ctx, t, net);
        }
    }

    fn slice_part(part: &WritePart, abs_start: u64, abs_end: u64) -> WritePart {
        let lo = (abs_start - part.range.offset) as usize;
        let hi = (abs_end - part.range.offset) as usize;
        WritePart {
            range: ByteRange::new(abs_start, (abs_end - abs_start) as u32),
            data: part.data.slice(lo..hi),
        }
    }

    // -----------------------------------------------------------------
    // Inbound interception (net → libpvfs)
    // -----------------------------------------------------------------

    fn inbound_read_data(&mut self, ctx: &mut Ctx<'_>, net: NetMessage, rd: ReadData) {
        let now = ctx.now();
        let home = net.src;
        let nblocks = blocks_of_range(rd.range.offset, rd.range.len).count() as u64;
        self.stats.blocks_fetched += nblocks;
        self.stats.bytes_fetched += rd.range.len as u64;
        let t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_insert_per_block.as_nanos() * nblocks),
        );
        // Install the fetched blocks and wake every waiter — including
        // waiters belonging to *other processes* whose fetches were
        // suppressed by the pending-block state.
        let mut urgent: Vec<FlushItem> = Vec::new();
        let mut completed: Vec<(Port, u64, Fid, ByteRange, Vec<u8>)> = Vec::new();
        for blk in blocks_of_range(rd.range.offset, rd.range.len) {
            let key = BlockKey::new(rd.fid, blk);
            let span = span_in_block(blk, rd.range.offset, rd.range.len);
            let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - rd.range.offset) as usize;
            let hi = lo + span.len() as usize;
            // Attribute the install to the first waiting application; every
            // further application waiting on the same fetch is recorded as
            // an extra referent — the inter-application sharing signal the
            // sharing-aware policy ranks by.
            let mut waiter_apps: Vec<AppId> = Vec::new();
            if let Some(ws) = self.block_waiters.get(&key) {
                for &(port, _) in ws {
                    let a = self.app_of(Port(port));
                    if !waiter_apps.contains(&a) {
                        waiter_apps.push(a);
                    }
                }
            }
            let first_app = waiter_apps.first().copied().unwrap_or(AppId::UNKNOWN);
            if let Some(fl) =
                self.cache.insert_clean_by(key, home, span, &rd.data[lo..hi], first_app)
            {
                urgent.push(fl);
            }
            for &a in waiter_apps.iter().skip(1) {
                self.cache.note_access(key, a);
            }
            self.maybe_schedule_harvest(ctx);
            self.fetching.remove(&key);
            let Some(waiters) = self.block_waiters.remove(&key) else {
                continue;
            };
            for (port, req_id) in waiters {
                let Some(pf) = self.pending.get_mut(&(port, req_id)) else {
                    continue;
                };
                let fid = pf.fid;
                let client_port = pf.client_port;
                for w in &mut pf.waiting {
                    let Some(pos) = w.missing.iter().position(|b| *b == blk) else {
                        continue;
                    };
                    let wspan = span_in_block(blk, w.range.offset, w.range.len);
                    debug_assert!(span.covers(wspan), "fetch did not cover the waiter span");
                    let abs = blk * CACHE_BLOCK_SIZE as u64;
                    let src_lo = (abs + wspan.start as u64 - rd.range.offset) as usize;
                    let dst_lo = (abs + wspan.start as u64 - w.range.offset) as usize;
                    let n = wspan.len() as usize;
                    w.buf[dst_lo..dst_lo + n].copy_from_slice(&rd.data[src_lo..src_lo + n]);
                    w.missing.remove(pos);
                    if w.missing.is_empty() {
                        completed.push((
                            client_port,
                            req_id,
                            fid,
                            w.range,
                            std::mem::take(&mut w.buf),
                        ));
                    }
                }
                pf.waiting.retain(|w| !w.missing.is_empty());
                if pf.waiting.is_empty() {
                    self.pending.remove(&(port, req_id));
                }
            }
        }
        if !urgent.is_empty() {
            self.send_flushes(ctx, t, urgent, true, false);
        }
        if !completed.is_empty() {
            for (client_port, req_id, fid, range, buf) in completed {
                self.send_to_client(
                    ctx,
                    t,
                    client_port,
                    ReadData { req_id, fid, range, data: Bytes::from(buf) },
                );
            }
        }
    }

    fn inbound(&mut self, ctx: &mut Ctx<'_>, net: NetMessage) {
        // Coherence traffic addressed to the module itself.
        if net.dst_port == CACHE_PORT {
            let net = match net.cast::<Invalidate>() {
                Ok((meta, inv)) => {
                    self.stats.invalidate_msgs += 1;
                    let t = self.charge(
                        ctx.now(),
                        self.costs.cache_call_overhead
                            + Dur::nanos(
                                self.costs.cache_lookup_per_block.as_nanos()
                                    * inv.blocks.len() as u64,
                            )
                            + self.costs.send_overhead,
                    );
                    self.cache.invalidate(inv.blocks.iter().map(|b| BlockKey::new(inv.fid, *b)));
                    self.tag += 1;
                    let ack = InvalidateAck { req_id: inv.req_id };
                    let m = NetMessage::new(
                        (self.node, CACHE_PORT),
                        inv.reply_to,
                        ack.wire_bytes(),
                        self.tag,
                        ack,
                    );
                    let _ = meta;
                    self.send_to_net(ctx, t, m);
                    return;
                }
                Err(n) => n,
            };
            let _net = match net.cast::<FlushAck>() {
                Ok((_, ack)) => {
                    if let Some(done) = self.inflight_flushes.remove(&ack.req_id) {
                        for (key, span) in done {
                            self.cache.flush_complete(key, span);
                        }
                    }
                    // Keep the drain pipeline full while a backlog remains.
                    if self.cache.dirty_queue_len() > 0 {
                        let items = self.cache.take_dirty(self.cfg.flush_batch);
                        let now = ctx.now();
                        self.send_flushes(ctx, now, items, false, true);
                    }
                    return;
                }
                Err(n) => n,
            };
            debug_assert!(false, "unexpected message on cache port");
            return;
        }
        // iod replies on client ports.
        let net = match net.cast::<ReadAck>() {
            Ok((meta, ack)) => {
                // Forward the (real) ack to the client (FSM transition).
                let t = self.charge(ctx.now(), self.costs.cache_call_overhead);
                self.send_to_client(ctx, t, meta.dst_port, *ack);
                return;
            }
            Err(n) => n,
        };
        let net = match net.cast::<WriteAck>() {
            Ok((meta, ack)) => {
                let t = self.charge(ctx.now(), self.costs.cache_call_overhead);
                self.send_to_client(ctx, t, meta.dst_port, *ack);
                return;
            }
            Err(n) => n,
        };
        let net = match net.cast::<ReadData>() {
            Ok((meta, rd)) => {
                let net2 = NetMessage::new(
                    (meta.src, meta.src_port),
                    (meta.dst, meta.dst_port),
                    meta.wire_bytes,
                    meta.tag,
                    (),
                );
                self.inbound_read_data(ctx, net2, *rd);
                return;
            }
            Err(n) => n,
        };
        // Anything else on a client port (mgr replies, etc.) is not iod
        // data traffic: hand it to the client process untouched.
        let Some(&client) = self.clients.get(&net.dst_port.0) else {
            panic!("cache module: unexpected inbound payload {:?}", net);
        };
        ctx.schedule_in(Dur::ZERO, client, Deliver(net));
    }

    fn flush_tick(&mut self, ctx: &mut Ctx<'_>) {
        let items = self.cache.take_dirty(self.cfg.flush_batch);
        let now = ctx.now();
        self.send_flushes(ctx, now, items, false, true);
        ctx.schedule_self(self.cfg.flush_interval, FlushTick);
    }

    fn harvest_now(&mut self, ctx: &mut Ctx<'_>) {
        self.harvest_scheduled = false;
        self.stats.harvest_runs += 1;
        let items = self.cache.harvest();
        let now = ctx.now();
        let t = self.charge(now, Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * 8));
        self.send_flushes(ctx, t, items, true, true);
        // If still below the watermark (everything dirty and in flight),
        // try again after the next wakeup.
        self.maybe_schedule_harvest(ctx);
    }
}

impl Actor for CacheModule {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if !self.started {
            self.started = true;
            ctx.schedule_self(self.cfg.flush_interval, FlushTick);
        }
        // Outbound: libpvfs socket sends.
        let msg = match msg.cast::<Xmit>() {
            Ok(x) => {
                let net = x.0;
                let net = match net.cast::<ReadReq>() {
                    Ok((meta, rr)) => {
                        let net2 = NetMessage::new(
                            (meta.src, meta.src_port),
                            (meta.dst, meta.dst_port),
                            meta.wire_bytes,
                            meta.tag,
                            (),
                        );
                        return self.intercept_read(ctx, net2, *rr);
                    }
                    Err(n) => n,
                };
                let net = match net.cast::<WriteReq>() {
                    Ok((meta, wr)) => {
                        let net2 = NetMessage::new(
                            (meta.src, meta.src_port),
                            (meta.dst, meta.dst_port),
                            meta.wire_bytes,
                            meta.tag,
                            (),
                        );
                        return self.intercept_write(ctx, net2, *wr);
                    }
                    Err(n) => n,
                };
                // Anything else (mgr traffic routed here by mistake, etc.)
                // passes through untouched.
                let now = ctx.now();
                self.send_to_net(ctx, now, net);
                return;
            }
            Err(m) => m,
        };
        // Inbound: deliveries re-routed to the module by NodeNet.
        let msg = match msg.cast::<Deliver>() {
            Ok(d) => return self.inbound(ctx, d.0),
            Err(m) => m,
        };
        let msg = match msg.cast::<FlushTick>() {
            Ok(_) => return self.flush_tick(ctx),
            Err(m) => m,
        };
        if msg.is::<HarvestNow>() {
            self.harvest_now(ctx);
        } else {
            panic!("cache module received unexpected message");
        }
    }

    fn name(&self) -> String {
        format!("kcache-{}", self.node)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}
