//! The kernel cache module actor — the paper's contribution.
//!
//! Installed on a client node, it impersonates the socket layer in both
//! directions (§3.2):
//!
//! * **outbound**: libpvfs's `sock_target` points here instead of at the
//!   fabric, so every iod request is intercepted. Reads are *discounted* by
//!   the cached blocks (possibly splitting contiguous ranges around cached
//!   holes); fully-cached requests never reach the network — the module
//!   **fakes the acknowledgment** and serves the data locally. Writes are
//!   absorbed into the cache (write-behind) and acked immediately, unless
//!   the cache is saturated with dirty data or the write is a sync-write.
//! * **inbound**: the node's `NodeNet` binds the client reply ports to the
//!   module, so iod replies flow through it: arriving data is copied into
//!   the cache, pending partial requests are completed, and a per-request
//!   finite state machine reconciles what the client library expects to
//!   receive with what actually crossed the wire.
//!
//! Two background activities complete the picture: the **flusher** (ships
//! dirty blocks to the iods' flush listeners periodically) and the
//! **harvester** (replenishes the free list to the high watermark when it
//! drops below the low watermark).

use crate::block::{blocks_of_range, span_in_block, BlockKey, Span, CACHE_BLOCK_SIZE};
use crate::config::CacheConfig;
use crate::manager::{BufferManager, FlushItem, WriteOutcome};
use bytes::Bytes;
use kcache_obs::{
    Counter, EventId, FlowId, Histogram, ObsHub, Phase, QuantileSketch, QuantileSnapshot,
    SloTargets,
};
use kcache_policy::AppId;
use pvfs::{
    BlockDirQuery, BlockDirReply, BlockDirUpdate, ByteRange, CostModel, Fid, FlushAck, FlushBlocks,
    FlushEntry, Invalidate, InvalidateAck, PeerReadReply, PeerReadReq, ReadAck, ReadData, ReadReq,
    WriteAck, WritePart, WriteReq, CACHE_PORT, IOD_FLUSH_PORT, IOD_PORT, MGR_PORT,
};
use sim_core::{resource, Actor, ActorId, Ctx, Dur, Msg, SharedResource, SimTime};
use sim_net::{Deliver, NetMessage, NodeId, Port, TrafficClass, Xmit};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Module statistics (beyond the buffer manager's own counters).
#[derive(Debug, Default, Clone)]
pub struct ModuleStats {
    pub reads_intercepted: u64,
    pub writes_intercepted: u64,
    pub full_hits: u64,
    pub partial_hits: u64,
    pub full_misses: u64,
    pub request_splits: u64,
    pub fake_read_acks: u64,
    pub fake_write_acks: u64,
    pub blocks_served: u64,
    pub blocks_fetched: u64,
    /// Blocks a request wanted that were already in flight for another
    /// process — the inter-application "pending request" hit (§3.2).
    pub dedup_blocks: u64,
    pub bytes_served: u64,
    pub bytes_fetched: u64,
    pub bytes_absorbed: u64,
    pub bytes_passthrough: u64,
    pub sync_writes: u64,
    pub invalidate_msgs: u64,
    pub flush_msgs: u64,
    pub urgent_flush_blocks: u64,
    pub harvest_runs: u64,
    // --- cooperative remote-hit tier ---
    /// Directory queries sent on local misses.
    pub dir_queries: u64,
    /// Residency-delta messages pushed to the directory.
    pub dir_updates: u64,
    /// Missing blocks the directory located in a peer cache.
    pub dir_located_blocks: u64,
    /// Missing blocks the directory knew no sharer for (straight to disk).
    pub dir_unlocated_blocks: u64,
    /// Blocks actually served out of a peer cache (the remote hits).
    pub remote_hit_blocks: u64,
    /// Directory-located blocks the peer no longer had — the stale-hint
    /// fallthrough; these are re-fetched from the iod, never served wrong.
    pub remote_stale_blocks: u64,
    pub remote_bytes_fetched: u64,
    /// Peer-fetch requests this node answered for others.
    pub peer_reqs_served: u64,
    pub peer_blocks_served: u64,
    pub peer_bytes_served: u64,
    /// Latency accounting at block granularity, from the moment a fetch
    /// was initiated to the moment the block's bytes were installed.
    pub disk_fetch_blocks: u64,
    pub disk_fetch_ns: u64,
    pub remote_fetch_ns: u64,
}

/// A client range still waiting for fetched blocks.
struct WaitingRange {
    range: ByteRange,
    missing: Vec<u64>,
    buf: Vec<u8>,
}

/// Per (client, request) fetch state.
struct PendingFetch {
    fid: Fid,
    client_port: Port,
    waiting: Vec<WaitingRange>,
}

/// One in-flight cooperative fetch conversation: the directory query, the
/// peer fetches it fans out into, and the single deferred iod request
/// that picks up whatever the peers could not serve. Deferring the disk
/// request until every peer has answered keeps the client-visible
/// protocol unchanged: exactly one (possibly faked) iod ack per request.
struct CoopFetch {
    fid: Fid,
    /// Owning iod for the missing blocks: destination of the deferred
    /// disk request and `home` for installed frames.
    home: NodeId,
    /// Original client request id — the deferred iod request reuses it so
    /// the iod's ack and data flow back through the normal inbound path.
    client_req: u64,
    reply_to: (NodeId, Port),
    /// Every block this conversation is responsible for fetching.
    blocks: Vec<u64>,
    outstanding_peers: usize,
    /// Blocks that must come from the iod after all: directory-unknown
    /// ones plus stale-hint fallthroughs reported by peers.
    to_disk: Vec<u64>,
    /// Trace-correlation id stamped on every message of this
    /// conversation (the requester mints it; mgr and peers echo it).
    flow: FlowId,
}

struct FlushTick;
struct HarvestNow;

/// Pre-resolved observability handles for the module's fetch tiers and
/// the cooperative directory protocol. Mirrors the buffer manager's
/// `ManagerObs`: resolved once at construction, `None` when the config
/// carries no hub, so the data paths pay one never-taken branch.
struct ModuleObs {
    hub: Arc<ObsHub>,
    /// Trace `pid` lane — one per simulated node.
    node: u32,
    /// Directory query outcome, block granularity: the directory named a
    /// peer / knew no sharer (straight to disk).
    dir_located: Counter,
    dir_unlocated: Counter,
    /// Peer-reported stale hints (re-fetched from the iod).
    stale_hints: Counter,
    /// Blocks served out of a peer cache.
    remote_hits: Counter,
    /// Block fetch latency per wire tier ([`TrafficClass`]), from fetch
    /// initiation to byte installation.
    fetch_ns_default: Histogram,
    fetch_ns_peer: Histogram,
    /// Fine-grained (≤1/16 relative error) fetch-latency sketches per
    /// tier — the log2 histograms are too coarse for a p99.
    fetch_q_default: QuantileSketch,
    fetch_q_peer: QuantileSketch,
    /// SLO targets and burn counts: a fetch slower than its tier's
    /// target burns error budget.
    slo: SloTargets,
    burn_default: Counter,
    burn_peer: Counter,
    ev_miss_fill: EventId,
    ev_iod_read: EventId,
    ev_peer_fetch: EventId,
    ev_dir_query: EventId,
    ev_peer_serve: EventId,
    /// Flow-correlation event name shared by all coop actors.
    ev_flow: EventId,
}

impl ModuleObs {
    fn new(hub: Arc<ObsHub>, node: NodeId, slo: SloTargets) -> ModuleObs {
        let r = hub.registry();
        ModuleObs {
            dir_located: r.counter("coop.dir_located_blocks"),
            dir_unlocated: r.counter("coop.dir_unlocated_blocks"),
            stale_hints: r.counter("coop.stale_hint_blocks"),
            remote_hits: r.counter("coop.remote_hit_blocks"),
            fetch_ns_default: r.histogram("fetch.ns.default"),
            fetch_ns_peer: r.histogram("fetch.ns.peer"),
            fetch_q_default: QuantileSketch::new(),
            fetch_q_peer: QuantileSketch::new(),
            slo,
            burn_default: r.counter("slo.fetch.burn.default"),
            burn_peer: r.counter("slo.fetch.burn.peer"),
            ev_miss_fill: hub.intern("miss_fill", Some("blocks"), Some("remote")),
            ev_iod_read: hub.intern("iod_read", Some("blocks"), Some("bytes")),
            ev_peer_fetch: hub.intern("peer_fetch", Some("blocks"), Some("bytes")),
            ev_dir_query: hub.intern("dir_query", Some("located"), Some("unlocated")),
            ev_peer_serve: hub.intern("peer_serve", Some("blocks"), Some("hits")),
            ev_flow: hub.intern("coop_fetch", None, None),
            node: node.0 as u32,
            hub,
        }
    }

    fn hist_for(&self, class: TrafficClass) -> &Histogram {
        match class {
            TrafficClass::Peer => &self.fetch_ns_peer,
            TrafficClass::Default => &self.fetch_ns_default,
        }
    }

    /// Record one fetch latency against the tier's sketch and SLO
    /// budget (the histogram is recorded separately by the caller).
    fn record_fetch(&self, class: TrafficClass, ns: u64) {
        let (sketch, target, burn) = match class {
            TrafficClass::Peer => (&self.fetch_q_peer, self.slo.fetch_p99_ns_peer, &self.burn_peer),
            TrafficClass::Default => {
                (&self.fetch_q_default, self.slo.fetch_p99_ns_default, &self.burn_default)
            }
        };
        sketch.record(ns);
        if ns > target {
            burn.inc();
        }
    }
}

/// The cache module actor.
pub struct CacheModule {
    node: NodeId,
    fabric: ActorId,
    cpu: SharedResource,
    costs: CostModel,
    cfg: CacheConfig,
    cache: Arc<BufferManager>,
    /// Client reply port → client actor (the processes on this node).
    clients: HashMap<u16, ActorId>,
    /// Client reply port → owning application instance; lets the buffer
    /// manager's policy attribute every access to an application, which is
    /// what the sharing-aware policy ranks by.
    client_apps: HashMap<u16, AppId>,
    pending: HashMap<(u16, u64), PendingFetch>,
    /// Blocks currently being fetched — from an iod or a peer cache (the
    /// FSM's "transfers pending" state); requests for these blocks wait
    /// instead of re-fetching. The value is the fetch start time, which
    /// prices the disk-vs-remote tiers when the bytes arrive.
    fetching: HashMap<BlockKey, SimTime>,
    /// Which pending requests wait on each in-flight block.
    block_waiters: HashMap<BlockKey, Vec<(u16, u64)>>,
    /// Resident blocks in flight per flush request (completed on FlushAck).
    inflight_flushes: HashMap<u64, Vec<(BlockKey, Span)>>,
    /// Where the block location directory lives (the pvfs mgr's node);
    /// `None` until the cluster builder wires it, which — together with
    /// `cfg.cooperative` — gates the whole remote-hit tier.
    mgr_node: Option<NodeId>,
    /// In-flight cooperative conversations by directory-query id.
    coop_pending: HashMap<u64, CoopFetch>,
    coop_seq: u64,
    flush_seq: u64,
    harvest_scheduled: bool,
    started: bool,
    tag: u64,
    stats: ModuleStats,
    obs: Option<ModuleObs>,
}

impl CacheModule {
    pub fn new(
        node: NodeId,
        fabric: ActorId,
        cpu: SharedResource,
        costs: CostModel,
        cfg: CacheConfig,
    ) -> CacheModule {
        let cache = Arc::new(
            BufferManager::builder(cfg.capacity_blocks)
                .policy(cfg.policy)
                .watermarks(cfg.low_watermark, cfg.high_watermark)
                .partitioning(cfg.partitioning.clone())
                .adaptive(cfg.adaptive.clone())
                .epoch_accesses(cfg.epoch_accesses)
                .cooperative(cfg.cooperative)
                .obs(cfg.obs.clone(), node.0 as u32)
                .shards(cfg.shards)
                .build(),
        );
        let obs = cfg.obs.clone().map(|hub| ModuleObs::new(hub, node, cfg.slo));
        CacheModule {
            node,
            fabric,
            cpu,
            costs,
            cfg,
            cache,
            clients: HashMap::new(),
            client_apps: HashMap::new(),
            pending: HashMap::new(),
            fetching: HashMap::new(),
            block_waiters: HashMap::new(),
            inflight_flushes: HashMap::new(),
            mgr_node: None,
            coop_pending: HashMap::new(),
            coop_seq: 0,
            flush_seq: 1,
            harvest_scheduled: false,
            started: false,
            tag: 0,
            stats: ModuleStats::default(),
            obs,
        }
    }

    /// Register a client process living on this node (its reply port must
    /// also be bound to this module in the node's `NodeNet`), together with
    /// the application instance it belongs to.
    pub fn register_client(&mut self, port: Port, actor: ActorId, app: AppId) {
        self.clients.insert(port.0, actor);
        self.client_apps.insert(port.0, app);
    }

    /// Tell the module which node hosts the block location directory (the
    /// pvfs mgr). The remote-hit tier activates only once this is set
    /// *and* the config carries a [`crate::config::CooperativeConfig`].
    pub fn set_directory_home(&mut self, mgr: NodeId) {
        self.mgr_node = Some(mgr);
    }

    fn cooperative_active(&self) -> bool {
        self.cfg.cooperative.is_some() && self.mgr_node.is_some()
    }

    /// Application owning a client reply port ([`AppId::UNKNOWN`] for
    /// traffic from unregistered ports).
    fn app_of(&self, port: Port) -> AppId {
        self.client_apps.get(&port.0).copied().unwrap_or(AppId::UNKNOWN)
    }

    pub fn stats(&self) -> &ModuleStats {
        &self.stats
    }

    pub fn cache(&self) -> &Arc<BufferManager> {
        &self.cache
    }

    /// Per-[`TrafficClass`] fetch-latency sketch snapshots, with the
    /// tier's SLO target and burn count — `None` when observability is
    /// off. The experiment harness merges these across nodes for the
    /// cluster SLO report.
    pub fn fetch_latency_sketches(
        &self,
    ) -> Option<Vec<(TrafficClass, QuantileSnapshot, u64, u64)>> {
        self.obs.as_ref().map(|o| {
            vec![
                (
                    TrafficClass::Default,
                    o.fetch_q_default.snapshot(),
                    o.slo.fetch_p99_ns_default,
                    o.burn_default.get(),
                ),
                (
                    TrafficClass::Peer,
                    o.fetch_q_peer.snapshot(),
                    o.slo.fetch_p99_ns_peer,
                    o.burn_peer.get(),
                ),
            ]
        })
    }

    fn charge(&self, now: SimTime, d: Dur) -> SimTime {
        resource::reserve(&self.cpu, now, d)
    }

    /// Deliver a synthesized message to a local client process.
    fn send_to_client(&mut self, ctx: &mut Ctx<'_>, at: SimTime, port: Port, payload: impl Any) {
        let Some(&client) = self.clients.get(&port.0) else {
            debug_assert!(false, "no client registered on {:?}", port);
            return;
        };
        self.tag += 1;
        let m = NetMessage::new((self.node, CACHE_PORT), (self.node, port), 0, self.tag, payload);
        ctx.schedule_in(at.since(ctx.now()), client, Deliver(m));
    }

    /// Put a (possibly rewritten) message on the wire.
    fn send_to_net(&mut self, ctx: &mut Ctx<'_>, at: SimTime, m: NetMessage) {
        ctx.schedule_in(at.since(ctx.now()), self.fabric, Xmit(m));
    }

    fn maybe_schedule_harvest(&mut self, ctx: &mut Ctx<'_>) {
        if !self.harvest_scheduled && self.cache.needs_harvest() {
            self.harvest_scheduled = true;
            ctx.schedule_self(self.cfg.harvester_wakeup, HarvestNow);
        }
    }

    /// Ship flush items to their home iods (grouped per iod+fid).
    /// `resident` items stay in the cache until their FlushAck arrives;
    /// eviction victims are gone from the cache already.
    fn send_flushes(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SimTime,
        items: Vec<FlushItem>,
        urgent: bool,
        resident: bool,
    ) {
        if items.is_empty() {
            return;
        }
        if urgent {
            self.stats.urgent_flush_blocks += items.len() as u64;
        }
        // Per (iod, fid) batch: the wire entry plus the cache coordinates
        // needed to mark the flush complete when the ack returns.
        type FlushBatch = Vec<(FlushEntry, BlockKey, Span)>;
        let mut groups: HashMap<(NodeId, Fid), FlushBatch> = HashMap::new();
        for it in items {
            groups.entry((it.home, it.key.fid)).or_default().push((
                FlushEntry { blk: it.key.blk, offset: it.span.start, data: Bytes::from(it.data) },
                it.key,
                it.span,
            ));
        }
        let mut at = at;
        for ((home, fid), entries) in groups {
            let nblocks = entries.len() as u64;
            let cpu = self.costs.send_overhead
                + Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * nblocks / 4);
            at = self.charge(at, cpu);
            self.flush_seq += 1;
            if resident {
                self.inflight_flushes
                    .insert(self.flush_seq, entries.iter().map(|(_, k, sp)| (*k, *sp)).collect());
            }
            let f = FlushBlocks {
                req_id: self.flush_seq,
                fid,
                blocks: entries.into_iter().map(|(e, _, _)| e).collect(),
                reply_to: (self.node, CACHE_PORT),
            };
            self.tag += 1;
            let wire = f.wire_bytes();
            let m =
                NetMessage::new((self.node, CACHE_PORT), (home, IOD_FLUSH_PORT), wire, self.tag, f);
            self.send_to_net(ctx, at, m);
            self.stats.flush_msgs += 1;
        }
    }

    // -----------------------------------------------------------------
    // Outbound interception (libpvfs → net)
    // -----------------------------------------------------------------

    fn intercept_read(&mut self, ctx: &mut Ctx<'_>, mut net: NetMessage, rr: ReadReq) {
        self.stats.reads_intercepted += 1;
        let now = ctx.now();
        let iod_node = net.dst;
        let client_port = rr.reply_to.1;
        let app = self.app_of(client_port);
        let total_blocks: u64 =
            rr.ranges.iter().map(|r| blocks_of_range(r.offset, r.len).count() as u64).sum();
        // FSM + hash lookups for every block of the request.
        let mut t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * total_blocks),
        );

        let mut served: Vec<(ByteRange, Vec<u8>)> = Vec::new();
        let mut waiting: Vec<WaitingRange> = Vec::new();
        let mut fetch_ranges: Vec<ByteRange> = Vec::new();
        let mut hit_blocks = 0u64;
        let mut waited_keys: Vec<BlockKey> = Vec::new();

        for r in &rr.ranges {
            let mut buf = vec![0u8; r.len as usize];
            let mut missing: Vec<u64> = Vec::new();
            for blk in blocks_of_range(r.offset, r.len) {
                let span = span_in_block(blk, r.offset, r.len);
                let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - r.offset) as usize;
                let hi = lo + span.len() as usize;
                if self.cache.try_read_by(BlockKey::new(rr.fid, blk), span, &mut buf[lo..hi], app) {
                    hit_blocks += 1;
                } else {
                    missing.push(blk);
                }
            }
            if missing.is_empty() {
                served.push((*r, buf));
            } else {
                // Fetch only blocks not already in flight (the FSM's
                // pending-block state): a concurrent fetch — possibly for a
                // *different application's* process — will satisfy ours too.
                let to_fetch: Vec<u64> = missing
                    .iter()
                    .copied()
                    .filter(|blk| !self.fetching.contains_key(&BlockKey::new(rr.fid, *blk)))
                    .collect();
                self.stats.dedup_blocks += (missing.len() - to_fetch.len()) as u64;
                for blk in &missing {
                    waited_keys.push(BlockKey::new(rr.fid, *blk));
                }
                // Block-aligned fetch ranges over the to-fetch blocks,
                // coalescing adjacent blocks. A cached block in the middle
                // of the range splits the external request (§3.2).
                let mut runs = 0;
                let mut i = 0;
                while i < to_fetch.len() {
                    let start = to_fetch[i];
                    let mut n = 1u64;
                    while i + (n as usize) < to_fetch.len() && to_fetch[i + n as usize] == start + n
                    {
                        n += 1;
                    }
                    fetch_ranges.push(ByteRange::new(
                        start * CACHE_BLOCK_SIZE as u64,
                        (n * CACHE_BLOCK_SIZE as u64) as u32,
                    ));
                    for b in start..start + n {
                        self.fetching.insert(BlockKey::new(rr.fid, b), now);
                    }
                    runs += 1;
                    i += n as usize;
                }
                if runs > 1
                    || missing.len() as u64 != blocks_of_range(r.offset, r.len).count() as u64
                {
                    self.stats.request_splits += 1;
                }
                waiting.push(WaitingRange { range: *r, missing, buf });
            }
        }

        // Copy cost for blocks served from cache.
        if hit_blocks > 0 {
            t = self.charge(t, Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * hit_blocks));
            self.stats.blocks_served += hit_blocks;
        }

        if waiting.is_empty() {
            // Full hit: fake the ack, serve everything locally, and never
            // touch the network.
            self.stats.full_hits += 1;
            self.stats.fake_read_acks += 1;
            let total: u64 = rr.ranges.iter().map(|r| r.len as u64).sum();
            self.stats.bytes_served += total;
            self.send_to_client(ctx, t, client_port, ReadAck { req_id: rr.req_id, bytes: total });
            for (range, buf) in served {
                self.send_to_client(
                    ctx,
                    t,
                    client_port,
                    ReadData { req_id: rr.req_id, fid: rr.fid, range, data: Bytes::from(buf) },
                );
            }
            return;
        }
        if hit_blocks > 0 {
            self.stats.partial_hits += 1;
        } else {
            self.stats.full_misses += 1;
        }
        // Serve the fully-cached ranges now.
        for (range, buf) in served {
            self.stats.bytes_served += range.len as u64;
            self.send_to_client(
                ctx,
                t,
                client_port,
                ReadData { req_id: rr.req_id, fid: rr.fid, range, data: Bytes::from(buf) },
            );
        }
        // Register this request as a waiter on every missing block.
        for key in waited_keys {
            let entry = self.block_waiters.entry(key).or_default();
            if !entry.contains(&(client_port.0, rr.req_id)) {
                entry.push((client_port.0, rr.req_id));
            }
        }
        match self.pending.entry((client_port.0, rr.req_id)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().waiting.extend(waiting);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                debug_assert!(
                    self.clients.contains_key(&client_port.0),
                    "intercepted request from unregistered client"
                );
                e.insert(PendingFetch { fid: rr.fid, client_port, waiting });
            }
        }
        if fetch_ranges.is_empty() {
            // Everything missing is already in flight for someone else:
            // nothing to send, but the client still expects this iod's ack.
            self.stats.fake_read_acks += 1;
            let total: u64 = rr.ranges.iter().map(|r| r.len as u64).sum();
            self.send_to_client(ctx, t, client_port, ReadAck { req_id: rr.req_id, bytes: total });
            return;
        }
        if self.cooperative_active() {
            // Remote-hit tier: ask the directory who caches the missing
            // blocks before going to disk. The iod request is deferred
            // until the directory (and any queried peers) have answered,
            // so the client still sees exactly one ack per request.
            let blocks: Vec<u64> =
                fetch_ranges.iter().flat_map(|r| blocks_of_range(r.offset, r.len)).collect();
            self.coop_seq += 1;
            let qid = self.coop_seq;
            // Mint the correlation id unconditionally (wire layout and
            // determinism stay identical with tracing on or off); only
            // the trace emission below is gated on obs.
            let flow = FlowId::coop(self.node.0, qid);
            let q = BlockDirQuery {
                req_id: qid,
                fid: rr.fid,
                blocks: blocks.clone(),
                reply_to: (self.node, CACHE_PORT),
                flow,
            };
            self.coop_pending.insert(
                qid,
                CoopFetch {
                    fid: rr.fid,
                    home: iod_node,
                    client_req: rr.req_id,
                    reply_to: rr.reply_to,
                    blocks,
                    outstanding_peers: 0,
                    to_disk: Vec::new(),
                    flow,
                },
            );
            t = self.charge(t, self.costs.send_overhead);
            if let Some(o) = &self.obs {
                // Flow start on the requester: the miss that opens the
                // cross-node conversation. The matching end is emitted
                // by finish_coop, which every conversation reaches.
                o.hub.flow(o.ev_flow, Phase::FlowStart, t.nanos(), o.node, 1, flow);
            }
            self.tag += 1;
            let mgr = self.mgr_node.expect("cooperative_active checked mgr_node");
            let m = NetMessage::new(
                (self.node, CACHE_PORT),
                (mgr, MGR_PORT),
                q.wire_bytes(),
                self.tag,
                q,
            )
            .with_class(TrafficClass::Peer);
            self.send_to_net(ctx, t, m);
            self.stats.dir_queries += 1;
            return;
        }
        let reduced = ReadReq {
            req_id: rr.req_id,
            fid: rr.fid,
            ranges: fetch_ranges,
            reply_to: rr.reply_to,
            caching: true,
        };
        let wire = reduced.wire_bytes();
        // The client already paid the socket-call cost; the in-kernel
        // module only rewrites and passes the buffer onward.
        t = self.charge(t, self.costs.cache_call_overhead);
        net.wire_bytes = wire;
        net.payload = Box::new(reduced);
        let _ = iod_node;
        self.send_to_net(ctx, t, net);
    }

    fn intercept_write(&mut self, ctx: &mut Ctx<'_>, mut net: NetMessage, wr: WriteReq) {
        self.stats.writes_intercepted += 1;
        let now = ctx.now();
        let iod_node = net.dst;
        let client_port = wr.reply_to.1;
        let app = self.app_of(client_port);
        let total_bytes = wr.total_bytes();

        if !self.cfg.write_behind || wr.sync {
            // Write-through ablation, or coherent sync-write: update any
            // resident blocks in place, then forward the full request.
            if wr.sync {
                self.stats.sync_writes += 1;
            }
            let mut blocks = 0u64;
            for part in &wr.parts {
                for blk in blocks_of_range(part.range.offset, part.range.len) {
                    blocks += 1;
                    let span = span_in_block(blk, part.range.offset, part.range.len);
                    let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - part.range.offset)
                        as usize;
                    let hi = lo + span.len() as usize;
                    self.cache.update_if_present(
                        BlockKey::new(wr.fid, blk),
                        span,
                        &part.data[lo..hi],
                    );
                }
            }
            let t = self.charge(
                now,
                self.costs.cache_call_overhead
                    + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * blocks),
            );
            self.stats.bytes_passthrough += total_bytes;
            net.payload = Box::new(wr);
            self.send_to_net(ctx, t, net);
            return;
        }

        let nblocks: u64 = wr
            .parts
            .iter()
            .map(|p| blocks_of_range(p.range.offset, p.range.len).count() as u64)
            .sum();
        let mut t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * nblocks),
        );

        let mut passthrough: Vec<WritePart> = Vec::new();
        let mut absorbed_keys: Vec<BlockKey> = Vec::new();
        let mut absorbed_blocks = 0u64;
        let mut absorbed_bytes = 0u64;
        for part in &wr.parts {
            // Try to absorb block by block; contiguous failures re-form
            // pass-through parts.
            let mut fail_start: Option<u64> = None; // byte offset
            let mut fail_end: u64 = 0;
            for blk in blocks_of_range(part.range.offset, part.range.len) {
                let span = span_in_block(blk, part.range.offset, part.range.len);
                let abs_start = blk * CACHE_BLOCK_SIZE as u64 + span.start as u64;
                let lo = (abs_start - part.range.offset) as usize;
                let hi = lo + span.len() as usize;
                let outcome = self.cache.write_by(
                    BlockKey::new(wr.fid, blk),
                    iod_node,
                    span,
                    &part.data[lo..hi],
                    app,
                );
                match outcome {
                    WriteOutcome::Absorbed => {
                        absorbed_blocks += 1;
                        absorbed_bytes += span.len() as u64;
                        absorbed_keys.push(BlockKey::new(wr.fid, blk));
                        self.maybe_schedule_harvest(ctx);
                    }
                    WriteOutcome::PassThrough => match fail_start {
                        Some(_) if fail_end == abs_start => fail_end += span.len() as u64,
                        Some(s) => {
                            passthrough.push(Self::slice_part(part, s, fail_end));
                            fail_start = Some(abs_start);
                            fail_end = abs_start + span.len() as u64;
                        }
                        None => {
                            fail_start = Some(abs_start);
                            fail_end = abs_start + span.len() as u64;
                        }
                    },
                }
            }
            if let Some(s) = fail_start {
                passthrough.push(Self::slice_part(part, s, fail_end));
            }
        }
        if absorbed_blocks > 0 {
            t = self.charge(
                t,
                Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * absorbed_blocks),
            );
        }
        self.stats.bytes_absorbed += absorbed_bytes;
        self.publish_dir_delta(ctx, t, absorbed_keys);
        if passthrough.is_empty() {
            // Fully absorbed: fake the write ack (write-behind).
            self.stats.fake_write_acks += 1;
            self.send_to_client(
                ctx,
                t,
                client_port,
                WriteAck { req_id: wr.req_id, bytes: total_bytes },
            );
        } else {
            let pass_bytes: u64 = passthrough.iter().map(|p| p.range.len as u64).sum();
            self.stats.bytes_passthrough += pass_bytes;
            let reduced = WriteReq {
                req_id: wr.req_id,
                fid: wr.fid,
                parts: passthrough,
                reply_to: wr.reply_to,
                caching: true,
                sync: false,
            };
            t = self.charge(t, self.costs.cache_call_overhead);
            net.wire_bytes = reduced.wire_bytes();
            net.payload = Box::new(reduced);
            self.send_to_net(ctx, t, net);
        }
    }

    fn slice_part(part: &WritePart, abs_start: u64, abs_end: u64) -> WritePart {
        let lo = (abs_start - part.range.offset) as usize;
        let hi = (abs_end - part.range.offset) as usize;
        WritePart {
            range: ByteRange::new(abs_start, (abs_end - abs_start) as u32),
            data: part.data.slice(lo..hi),
        }
    }

    // -----------------------------------------------------------------
    // Inbound interception (net → libpvfs)
    // -----------------------------------------------------------------

    /// Install arriving block data — from an iod (`remote == false`) or
    /// out of a peer's cache (`remote == true`) — and complete every
    /// waiting request. The two tiers share this path so waiters, urgent
    /// flushes and sharing attribution behave identically; only the
    /// counters (and the latency accumulator the fetch is priced into)
    /// differ.
    fn inbound_read_data(
        &mut self,
        ctx: &mut Ctx<'_>,
        net: NetMessage,
        rd: ReadData,
        remote: bool,
    ) {
        let now = ctx.now();
        let home = net.src;
        let nblocks = blocks_of_range(rd.range.offset, rd.range.len).count() as u64;
        if remote {
            self.stats.remote_hit_blocks += nblocks;
            self.stats.remote_bytes_fetched += rd.range.len as u64;
        } else {
            self.stats.blocks_fetched += nblocks;
            self.stats.bytes_fetched += rd.range.len as u64;
        }
        let t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_insert_per_block.as_nanos() * nblocks),
        );
        // Install the fetched blocks and wake every waiter — including
        // waiters belonging to *other processes* whose fetches were
        // suppressed by the pending-block state.
        let mut urgent: Vec<FlushItem> = Vec::new();
        let mut installed: Vec<BlockKey> = Vec::new();
        let mut completed: Vec<(Port, u64, Fid, ByteRange, Vec<u8>)> = Vec::new();
        // Earliest fetch-initiation time among the blocks this message
        // resolves — the start of the miss-fill span.
        let mut fetch_t0: Option<SimTime> = None;
        for blk in blocks_of_range(rd.range.offset, rd.range.len) {
            let key = BlockKey::new(rd.fid, blk);
            let span = span_in_block(blk, rd.range.offset, rd.range.len);
            let lo = (blk * CACHE_BLOCK_SIZE as u64 + span.start as u64 - rd.range.offset) as usize;
            let hi = lo + span.len() as usize;
            // Attribute the install to the first waiting application; every
            // further application waiting on the same fetch is recorded as
            // an extra referent — the inter-application sharing signal the
            // sharing-aware policy ranks by.
            let mut waiter_apps: Vec<AppId> = Vec::new();
            if let Some(ws) = self.block_waiters.get(&key) {
                for &(port, _) in ws {
                    let a = self.app_of(Port(port));
                    if !waiter_apps.contains(&a) {
                        waiter_apps.push(a);
                    }
                }
            }
            let first_app = waiter_apps.first().copied().unwrap_or(AppId::UNKNOWN);
            if let Some(fl) =
                self.cache.insert_clean_by(key, home, span, &rd.data[lo..hi], first_app)
            {
                urgent.push(fl);
            }
            if remote {
                // Both the peer's copy and ours are now duplicates —
                // singleton-preserving eviction may shed ours cheaply.
                self.cache.note_duplicate(key);
            }
            installed.push(key);
            for &a in waiter_apps.iter().skip(1) {
                self.cache.note_access(key, a);
            }
            self.maybe_schedule_harvest(ctx);
            if let Some(t0) = self.fetching.remove(&key) {
                let ns = now.since(t0).as_nanos();
                if remote {
                    self.stats.remote_fetch_ns += ns;
                } else {
                    self.stats.disk_fetch_blocks += 1;
                    self.stats.disk_fetch_ns += ns;
                }
                if let Some(o) = &self.obs {
                    let class = if remote { TrafficClass::Peer } else { TrafficClass::Default };
                    o.hist_for(class).record(ns);
                    o.record_fetch(class, ns);
                }
                fetch_t0 = Some(fetch_t0.map_or(t0, |p| p.min(t0)));
            }
            let Some(waiters) = self.block_waiters.remove(&key) else {
                continue;
            };
            for (port, req_id) in waiters {
                let Some(pf) = self.pending.get_mut(&(port, req_id)) else {
                    continue;
                };
                let fid = pf.fid;
                let client_port = pf.client_port;
                for w in &mut pf.waiting {
                    let Some(pos) = w.missing.iter().position(|b| *b == blk) else {
                        continue;
                    };
                    let wspan = span_in_block(blk, w.range.offset, w.range.len);
                    debug_assert!(span.covers(wspan), "fetch did not cover the waiter span");
                    let abs = blk * CACHE_BLOCK_SIZE as u64;
                    let src_lo = (abs + wspan.start as u64 - rd.range.offset) as usize;
                    let dst_lo = (abs + wspan.start as u64 - w.range.offset) as usize;
                    let n = wspan.len() as usize;
                    w.buf[dst_lo..dst_lo + n].copy_from_slice(&rd.data[src_lo..src_lo + n]);
                    w.missing.remove(pos);
                    if w.missing.is_empty() {
                        completed.push((
                            client_port,
                            req_id,
                            fid,
                            w.range,
                            std::mem::take(&mut w.buf),
                        ));
                    }
                }
                pf.waiting.retain(|w| !w.missing.is_empty());
                if pf.waiting.is_empty() {
                    self.pending.remove(&(port, req_id));
                }
            }
        }
        if let Some(o) = &self.obs {
            // One fetch-tier span per arriving data message: the wire +
            // service time from fetch initiation to installation, plus a
            // miss-fill instant for the cache-population step itself.
            if let Some(t0) = fetch_t0 {
                let (id, tier) = if remote { (o.ev_peer_fetch, 1) } else { (o.ev_iod_read, 0) };
                let dur = now.since(t0).as_nanos();
                o.hub.span(id, o.node, tier, t0.nanos(), dur, nblocks, rd.range.len as u64);
            }
            o.hub.instant(o.ev_miss_fill, o.node, 0, nblocks, remote as u64);
            if remote {
                o.remote_hits.add(nblocks);
            }
        }
        self.publish_dir_delta(ctx, t, installed);
        if !urgent.is_empty() {
            self.send_flushes(ctx, t, urgent, true, false);
        }
        if !completed.is_empty() {
            for (client_port, req_id, fid, range, buf) in completed {
                self.send_to_client(
                    ctx,
                    t,
                    client_port,
                    ReadData { req_id, fid, range, data: Bytes::from(buf) },
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Cooperative remote-hit tier
    // -----------------------------------------------------------------

    /// Push this node's residency delta to the block location directory.
    /// `added` are blocks just installed; evictions recorded by the
    /// buffer manager since the last publish ride along as removals.
    /// In hint mode the manager records no departures, so the directory
    /// decays into an over-approximate hint store — misdirected peer
    /// fetches then fall through to disk, never return wrong data.
    fn publish_dir_delta(&mut self, ctx: &mut Ctx<'_>, at: SimTime, added: Vec<BlockKey>) {
        if !self.cooperative_active() {
            return;
        }
        let mgr = self.mgr_node.expect("cooperative_active checked mgr_node");
        let mut per_fid: HashMap<Fid, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for k in added {
            per_fid.entry(k.fid).or_default().0.push(k.blk);
        }
        for k in self.cache.take_evicted() {
            per_fid.entry(k.fid).or_default().1.push(k.blk);
        }
        let mut at = at;
        for (fid, (added, removed)) in per_fid {
            at = self.charge(at, self.costs.send_overhead);
            let u = BlockDirUpdate { fid, node: self.node, added, removed };
            self.tag += 1;
            let m = NetMessage::new(
                (self.node, CACHE_PORT),
                (mgr, MGR_PORT),
                u.wire_bytes(),
                self.tag,
                u,
            )
            .with_class(TrafficClass::Peer);
            self.send_to_net(ctx, at, m);
            self.stats.dir_updates += 1;
        }
    }

    /// The directory's answer to one of our queries: fan the located
    /// blocks out to their peer caches, queue the unknown ones for the
    /// deferred iod request.
    fn coop_dir_reply(&mut self, ctx: &mut Ctx<'_>, reply: BlockDirReply) {
        let now = ctx.now();
        let Some(cf) = self.coop_pending.get_mut(&reply.req_id) else {
            debug_assert!(false, "directory reply for unknown query");
            return;
        };
        let mut per_peer: HashMap<NodeId, Vec<u64>> = HashMap::new();
        let mut located = std::collections::HashSet::new();
        for (blk, node) in &reply.locations {
            per_peer.entry(*node).or_default().push(*blk);
            located.insert(*blk);
        }
        cf.to_disk.extend(cf.blocks.iter().copied().filter(|b| !located.contains(b)));
        cf.outstanding_peers = per_peer.len();
        let fid = cf.fid;
        let flow = cf.flow;
        let n_total = cf.blocks.len() as u64;
        let n_located = located.len() as u64;
        self.stats.dir_located_blocks += n_located;
        self.stats.dir_unlocated_blocks += n_total - n_located;
        if let Some(o) = &self.obs {
            o.dir_located.add(n_located);
            o.dir_unlocated.add(n_total - n_located);
            o.hub.instant(o.ev_dir_query, o.node, 0, n_located, n_total - n_located);
        }
        if per_peer.is_empty() {
            self.finish_coop(ctx, now, reply.req_id);
            return;
        }
        let mut t = self.charge(now, self.costs.cache_call_overhead);
        for (peer, blocks) in per_peer {
            t = self.charge(t, self.costs.send_overhead);
            let pr = PeerReadReq {
                req_id: reply.req_id,
                fid,
                blocks,
                reply_to: (self.node, CACHE_PORT),
                flow,
            };
            self.tag += 1;
            let m = NetMessage::new(
                (self.node, CACHE_PORT),
                (peer, CACHE_PORT),
                pr.wire_bytes(),
                self.tag,
                pr,
            )
            .with_class(TrafficClass::Peer);
            self.send_to_net(ctx, t, m);
        }
    }

    /// A peer's answer to one of our block fetches: install the hits
    /// through the normal data-arrival path (waiters — including other
    /// processes' — complete exactly as for an iod reply), queue the
    /// stale misses for disk.
    fn coop_peer_reply(&mut self, ctx: &mut Ctx<'_>, reply: PeerReadReply) {
        let now = ctx.now();
        let qid = reply.req_id;
        let Some(cf) = self.coop_pending.get_mut(&qid) else {
            debug_assert!(false, "peer reply for unknown query");
            return;
        };
        let home = cf.home;
        cf.to_disk.extend(reply.misses.iter().copied());
        cf.outstanding_peers = cf.outstanding_peers.saturating_sub(1);
        let done = cf.outstanding_peers == 0;
        self.stats.remote_stale_blocks += reply.misses.len() as u64;
        if let Some(o) = &self.obs {
            o.stale_hints.add(reply.misses.len() as u64);
        }
        for (blk, data) in reply.hits {
            let rd = ReadData {
                req_id: 0, // unused: waiters are keyed by block
                fid: reply.fid,
                range: ByteRange::new(blk * CACHE_BLOCK_SIZE as u64, CACHE_BLOCK_SIZE as u32),
                data,
            };
            // Synthesized meta: `home` must be the owning iod, not the
            // peer — a later dirty flush of the block goes to its iod.
            let net = NetMessage::new((home, IOD_PORT), (self.node, CACHE_PORT), 0, 0, ());
            self.inbound_read_data(ctx, net, rd, true);
        }
        if done {
            self.finish_coop(ctx, now, qid);
        }
    }

    /// Close out a cooperative conversation: everything the peers could
    /// not serve goes to the iod in one (coalesced) request; if nothing
    /// is left, fake the iod's ack — the disk tier never hears about
    /// this request at all.
    fn finish_coop(&mut self, ctx: &mut Ctx<'_>, at: SimTime, qid: u64) {
        let Some(cf) = self.coop_pending.remove(&qid) else {
            return;
        };
        if let Some(o) = &self.obs {
            // Close the flow opened at the miss. Every conversation
            // funnels through here (empty directory answer or last peer
            // reply), so starts and finishes pair one-to-one.
            o.hub.flow(o.ev_flow, Phase::FlowEnd, at.nanos(), o.node, 1, cf.flow);
        }
        let mut to_disk = cf.to_disk;
        if to_disk.is_empty() {
            self.stats.fake_read_acks += 1;
            let bytes = cf.blocks.len() as u64 * CACHE_BLOCK_SIZE as u64;
            let t = self.charge(at, self.costs.cache_call_overhead);
            self.send_to_client(ctx, t, cf.reply_to.1, ReadAck { req_id: cf.client_req, bytes });
            return;
        }
        to_disk.sort_unstable();
        to_disk.dedup();
        let mut ranges: Vec<ByteRange> = Vec::new();
        let mut i = 0;
        while i < to_disk.len() {
            let start = to_disk[i];
            let mut n = 1u64;
            while i + (n as usize) < to_disk.len() && to_disk[i + n as usize] == start + n {
                n += 1;
            }
            ranges.push(ByteRange::new(
                start * CACHE_BLOCK_SIZE as u64,
                (n * CACHE_BLOCK_SIZE as u64) as u32,
            ));
            i += n as usize;
        }
        let rr = ReadReq {
            req_id: cf.client_req,
            fid: cf.fid,
            ranges,
            reply_to: cf.reply_to,
            caching: true,
        };
        let t = self.charge(at, self.costs.send_overhead);
        self.tag += 1;
        let m = NetMessage::new(
            (self.node, cf.reply_to.1),
            (cf.home, IOD_PORT),
            rr.wire_bytes(),
            self.tag,
            rr,
        );
        self.send_to_net(ctx, t, m);
    }

    /// Serve a peer's block fetch out of our cache. Reads bypass all
    /// local accounting ([`BufferManager::read_resident`]): remote
    /// traffic must not distort this node's hit ratio or recency. Blocks
    /// we no longer hold are reported as misses — the requester falls
    /// through to disk.
    fn serve_peer_read(&mut self, ctx: &mut Ctx<'_>, pr: PeerReadReq) {
        self.stats.peer_reqs_served += 1;
        let now = ctx.now();
        let mut t = self.charge(
            now,
            self.costs.cache_call_overhead
                + Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * pr.blocks.len() as u64),
        );
        let mut hits: Vec<(u64, Bytes)> = Vec::new();
        let mut misses: Vec<u64> = Vec::new();
        for blk in &pr.blocks {
            let key = BlockKey::new(pr.fid, *blk);
            let mut buf = vec![0u8; CACHE_BLOCK_SIZE];
            if self.cache.read_resident(key, Span::FULL, &mut buf) {
                // Our copy is about to be duplicated at the requester:
                // mark it cheap for singleton-preserving eviction.
                self.cache.note_duplicate(key);
                hits.push((*blk, Bytes::from(buf)));
            } else {
                misses.push(*blk);
            }
        }
        if !hits.is_empty() {
            t = self.charge(
                t,
                Dur::nanos(self.costs.cache_copy_per_block.as_nanos() * hits.len() as u64),
            );
        }
        self.stats.peer_blocks_served += hits.len() as u64;
        self.stats.peer_bytes_served += hits.len() as u64 * CACHE_BLOCK_SIZE as u64;
        t = self.charge(t, self.costs.send_overhead);
        if let Some(o) = &self.obs {
            // Peer-serve span on the responder node's lane, plus the
            // requester's flow stepping through us.
            o.hub.span(
                o.ev_peer_serve,
                o.node,
                2,
                now.nanos(),
                t.since(now).as_nanos(),
                pr.blocks.len() as u64,
                hits.len() as u64,
            );
            if !pr.flow.is_none() {
                o.hub.flow(o.ev_flow, Phase::FlowStep, now.nanos(), o.node, 2, pr.flow);
            }
        }
        let reply = PeerReadReply { req_id: pr.req_id, fid: pr.fid, hits, misses };
        self.tag += 1;
        let m = NetMessage::new(
            (self.node, CACHE_PORT),
            pr.reply_to,
            reply.wire_bytes(),
            self.tag,
            reply,
        )
        .with_class(TrafficClass::Peer);
        self.send_to_net(ctx, t, m);
    }

    fn inbound(&mut self, ctx: &mut Ctx<'_>, net: NetMessage) {
        // Coherence traffic addressed to the module itself.
        if net.dst_port == CACHE_PORT {
            let net = match net.cast::<Invalidate>() {
                Ok((meta, inv)) => {
                    self.stats.invalidate_msgs += 1;
                    let t = self.charge(
                        ctx.now(),
                        self.costs.cache_call_overhead
                            + Dur::nanos(
                                self.costs.cache_lookup_per_block.as_nanos()
                                    * inv.blocks.len() as u64,
                            )
                            + self.costs.send_overhead,
                    );
                    self.cache.invalidate(inv.blocks.iter().map(|b| BlockKey::new(inv.fid, *b)));
                    // Invalidated blocks leave the directory immediately
                    // (authoritative mode records them as departures).
                    self.publish_dir_delta(ctx, t, Vec::new());
                    self.tag += 1;
                    let ack = InvalidateAck { req_id: inv.req_id };
                    let m = NetMessage::new(
                        (self.node, CACHE_PORT),
                        inv.reply_to,
                        ack.wire_bytes(),
                        self.tag,
                        ack,
                    );
                    let _ = meta;
                    self.send_to_net(ctx, t, m);
                    return;
                }
                Err(n) => n,
            };
            let net = match net.cast::<FlushAck>() {
                Ok((_, ack)) => {
                    if let Some(done) = self.inflight_flushes.remove(&ack.req_id) {
                        for (key, span) in done {
                            self.cache.flush_complete(key, span);
                        }
                    }
                    // Keep the drain pipeline full while a backlog remains.
                    if self.cache.dirty_queue_len() > 0 {
                        let items = self.cache.take_dirty(self.cfg.flush_batch);
                        let now = ctx.now();
                        self.send_flushes(ctx, now, items, false, true);
                    }
                    return;
                }
                Err(n) => n,
            };
            // Cooperative remote-hit tier conversations.
            let net = match net.cast::<BlockDirReply>() {
                Ok((_, r)) => return self.coop_dir_reply(ctx, *r),
                Err(n) => n,
            };
            let net = match net.cast::<PeerReadReq>() {
                Ok((_, pr)) => return self.serve_peer_read(ctx, *pr),
                Err(n) => n,
            };
            let _net = match net.cast::<PeerReadReply>() {
                Ok((_, r)) => return self.coop_peer_reply(ctx, *r),
                Err(n) => n,
            };
            debug_assert!(false, "unexpected message on cache port");
            return;
        }
        // iod replies on client ports.
        let net = match net.cast::<ReadAck>() {
            Ok((meta, ack)) => {
                // Forward the (real) ack to the client (FSM transition).
                let t = self.charge(ctx.now(), self.costs.cache_call_overhead);
                self.send_to_client(ctx, t, meta.dst_port, *ack);
                return;
            }
            Err(n) => n,
        };
        let net = match net.cast::<WriteAck>() {
            Ok((meta, ack)) => {
                let t = self.charge(ctx.now(), self.costs.cache_call_overhead);
                self.send_to_client(ctx, t, meta.dst_port, *ack);
                return;
            }
            Err(n) => n,
        };
        let net = match net.cast::<ReadData>() {
            Ok((meta, rd)) => {
                let net2 = NetMessage::new(
                    (meta.src, meta.src_port),
                    (meta.dst, meta.dst_port),
                    meta.wire_bytes,
                    meta.tag,
                    (),
                );
                self.inbound_read_data(ctx, net2, *rd, false);
                return;
            }
            Err(n) => n,
        };
        // Anything else on a client port (mgr replies, etc.) is not iod
        // data traffic: hand it to the client process untouched.
        let Some(&client) = self.clients.get(&net.dst_port.0) else {
            panic!("cache module: unexpected inbound payload {:?}", net);
        };
        ctx.schedule_in(Dur::ZERO, client, Deliver(net));
    }

    fn flush_tick(&mut self, ctx: &mut Ctx<'_>) {
        let items = self.cache.take_dirty(self.cfg.flush_batch);
        let now = ctx.now();
        self.send_flushes(ctx, now, items, false, true);
        // Catch evictions with no install to piggyback on (harvests,
        // invalidations) so the authoritative directory stays tight.
        self.publish_dir_delta(ctx, now, Vec::new());
        ctx.schedule_self(self.cfg.flush_interval, FlushTick);
    }

    fn harvest_now(&mut self, ctx: &mut Ctx<'_>) {
        self.harvest_scheduled = false;
        self.stats.harvest_runs += 1;
        let items = self.cache.harvest();
        let now = ctx.now();
        let t = self.charge(now, Dur::nanos(self.costs.cache_lookup_per_block.as_nanos() * 8));
        self.send_flushes(ctx, t, items, true, true);
        self.publish_dir_delta(ctx, t, Vec::new());
        // If still below the watermark (everything dirty and in flight),
        // try again after the next wakeup.
        self.maybe_schedule_harvest(ctx);
    }
}

impl Actor for CacheModule {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let Some(o) = &self.obs {
            // Publish the sim clock so every instrument — including the
            // buffer manager's, which has no clock of its own — stamps
            // trace events with simulated time.
            o.hub.set_now(ctx.now().nanos());
        }
        if !self.started {
            self.started = true;
            ctx.schedule_self(self.cfg.flush_interval, FlushTick);
        }
        // Outbound: libpvfs socket sends.
        let msg = match msg.cast::<Xmit>() {
            Ok(x) => {
                let net = x.0;
                let net = match net.cast::<ReadReq>() {
                    Ok((meta, rr)) => {
                        let net2 = NetMessage::new(
                            (meta.src, meta.src_port),
                            (meta.dst, meta.dst_port),
                            meta.wire_bytes,
                            meta.tag,
                            (),
                        );
                        return self.intercept_read(ctx, net2, *rr);
                    }
                    Err(n) => n,
                };
                let net = match net.cast::<WriteReq>() {
                    Ok((meta, wr)) => {
                        let net2 = NetMessage::new(
                            (meta.src, meta.src_port),
                            (meta.dst, meta.dst_port),
                            meta.wire_bytes,
                            meta.tag,
                            (),
                        );
                        return self.intercept_write(ctx, net2, *wr);
                    }
                    Err(n) => n,
                };
                // Anything else (mgr traffic routed here by mistake, etc.)
                // passes through untouched.
                let now = ctx.now();
                self.send_to_net(ctx, now, net);
                return;
            }
            Err(m) => m,
        };
        // Inbound: deliveries re-routed to the module by NodeNet.
        let msg = match msg.cast::<Deliver>() {
            Ok(d) => return self.inbound(ctx, d.0),
            Err(m) => m,
        };
        let msg = match msg.cast::<FlushTick>() {
            Ok(_) => return self.flush_tick(ctx),
            Err(m) => m,
        };
        if msg.is::<HarvestNow>() {
            self.harvest_now(ctx);
        } else {
            panic!("cache module received unexpected message");
        }
    }

    fn name(&self) -> String {
        format!("kcache-{}", self.node)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}
