//! The buffer manager — the paper's "full-fledged buffer manager of
//! blocks, requiring the implementation of hash tables, free list and
//! dirty list" (§3.2).
//!
//! * fixed pool of 4 KB frames (default 300 ≙ the paper's 1.2 MB cache),
//! * open-hashing hash table with **per-bucket locks**,
//! * a free list and a dirty list,
//! * replacement: delegated to a pluggable [`ReplacementPolicy`]
//!   (`kcache-policy`) — clock with reference bits (the paper's
//!   approximate LRU) by default, exact LRU as the ablation the paper
//!   argues against, plus LFU/2Q/ARC/sharing-aware alternatives — always
//!   combined with the manager-owned **preference for clean blocks over
//!   dirty ones**,
//! * per-application **frame quotas** ([`PartitionConfig`]): strict caps
//!   or soft caps with borrowing, enforced at acquire time — an over-quota
//!   app draws eviction candidates from its own resident frames first via
//!   the policy's owner-filtered scan, so a noisy neighbor cannot flush a
//!   well-behaved tenant out of the shared pool,
//! * fine-grained locking throughout: the structure is `Send + Sync` and is
//!   exercised by real multi-threaded stress tests, not only by the
//!   single-threaded simulation.
//!
//! ## Sharding
//!
//! [`BufferManager`] is a lock-free facade over N independent shards
//! (builder knob [`BufferManagerBuilder::shards`], default 1 — the
//! paper's configuration, byte-for-byte). A block's home shard is fixed
//! by the *high* bits of its key hash (bucket selection within a shard
//! uses the low bits, so the two choices stay independent); capacity,
//! watermarks, and per-app quotas split across shards with the remainder
//! to low indexes. Every lock in the structure lives *inside* a shard —
//! the facade owns only the shard array and three atomics (epoch clock,
//! boundary mark, CAS gate), so no code path can serialize two shards'
//! traffic on a manager-global lock (CI greps the facade struct for
//! `Mutex`/`RwLock`). Cross-shard state — adaptive ghost evidence,
//! switch decisions, tuned-quota overlays — reconciles only at epoch
//! boundaries; strict-quota headroom moves between shards as *quota
//! units* (never frames) on the pre-admission spill path.
//!
//! Lock ordering discipline, per shard: bucket → frame. The free list,
//! dirty list and the policy state are leaf locks — never held while
//! acquiring a bucket or frame lock; the charge ledger may nest its
//! tuned-quota overlay (charges → tuned_quotas) and nothing else. No
//! lock is ever held across a shard boundary. Evictions ask the policy
//! for a candidate (policy lock only), release, then take bucket → frame
//! and revalidate; the policy may thus offer a candidate that has since
//! changed hands, and the manager simply asks for the next one.
//!
//! ## Hit-path concurrency (eager vs drained accounting)
//!
//! The **hit fast path takes no policy lock**. A hit (or recency touch)
//! does three lock-free things: bump the manager's atomic counters, store
//! the frame's atomic ref/recency word ([`RefWords`] — ref bit plus
//! app-touch mask, one relaxed `fetch_or`, the seed clock's store-only
//! cost), and enqueue an [`AccessEvent`] into a bounded lock-free ring.
//! The deferred events — policy hit/miss counters, the per-app ledger,
//! `on_access` recency for non-clock policies, and the adaptive
//! meta-policy's ghost feeds — are applied in FIFO batches
//! ([`ReplacementPolicy::drain`]) only when the policy lock is taken
//! anyway: before an eviction scan ranks, before an insert links, before
//! an epoch tick decides, before a stats read reports, and inline by the
//! producer itself when the ring fills (so nothing is ever dropped and
//! memory stays bounded). Under a single thread every drain point
//! precedes the next policy *decision*, which makes drained accounting
//! observation-equivalent to the eager path — pinned by a differential
//! test, with [`BufferManagerBuilder::eager_accounting`] keeping the
//! old apply-under-the-lock path alive as the reference (and as the
//! bench baseline).
//!
//! **Epoch participation** is explicit and uniform: every access event —
//! hit, miss, probe hit, and recency touch — advances the epoch clock.
//! Touches (sync-write refreshes, secondary-waiter attribution, merges
//! into a resident block) are real accesses: they refresh recency and
//! feed the adaptive ghosts, so they must also age the policies and drive
//! the controller, or probe-/write-heavy workloads would skew epoch
//! length relative to observed traffic (the pre-PR-5 bug). Inserts do
//! *not* tick the clock: an install is the tail of a miss that was
//! already counted at lookup time.

use crate::block::{BlockKey, Span, CACHE_BLOCK_SIZE};
use crate::config::{CooperativeConfig, PartitionConfig, PartitionMode};
use crate::ring::EventRing;
use kcache_adaptive::{decide_quota_move, decide_switch, AdaptiveConfig, AdaptivePolicy};
use kcache_obs::{Counter, EventId, Histogram, ObsHub};
use kcache_policy::{
    AccessEvent, AdaptiveStats, AppId, AppUsage, EpochDirective, EpochObservation, PolicyKind,
    PolicyStats, RefWords, ReplacementPolicy,
};
use parking_lot::Mutex;
use sim_net::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc as StdArc;

/// Replacement configuration (§3.2 design choices, now a policy *choice*
/// plus the clean-first preference the manager enforces itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictPolicy {
    /// Which candidate-ranking policy runs inside the manager.
    pub kind: PolicyKind,
    /// Prefer evicting clean blocks over dirty ones (the paper's choice).
    pub clean_first: bool,
}

impl EvictPolicy {
    /// The named policy with the paper's clean-first preference.
    pub fn of(kind: PolicyKind) -> EvictPolicy {
        EvictPolicy { kind, clean_first: true }
    }
}

impl Default for EvictPolicy {
    fn default() -> Self {
        EvictPolicy { kind: PolicyKind::Clock, clean_first: true }
    }
}

/// A dirty snapshot handed to the caller for write-back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushItem {
    pub key: BlockKey,
    /// iod node owning this block (learned at intercept time).
    pub home: NodeId,
    /// Dirty span within the block.
    pub span: Span,
    /// The dirty bytes (`span.len()` of them).
    pub data: Vec<u8>,
}

/// Outcome of a write-behind attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Bytes absorbed into the cache; the caller may ack immediately.
    Absorbed,
    /// The cache cannot take the bytes without evicting dirty data (or the
    /// write pattern is non-contiguous within a partially valid block);
    /// the caller must send the write through to the iod. This is the
    /// paper's "writes may need to block for availability of cache space".
    PassThrough,
}

/// What one [`BufferManager::access`] call should do to the block.
///
/// One variant per access method the cache module needs; adding a new
/// access flavor (the peer-fetch tier, say) extends this enum instead of
/// growing another parallel `*_by` method family.
pub enum AccessKind<'a> {
    /// Serve `span` into `out` (`out.len() == span.len()`). Counts a hit
    /// (refreshing recency) or a miss.
    Read { span: Span, out: &'a mut [u8] },
    /// Hit check without copying (request-split planning). Counts the
    /// same hit/miss accounting as a read but does not refresh recency —
    /// planning a split is not a use of the block.
    Probe { span: Span },
    /// Write-behind absorb: on [`WriteOutcome::Absorbed`] the block is
    /// dirty in cache and the write can be acknowledged locally.
    Write { home: NodeId, span: Span, bytes: &'a [u8] },
    /// Install fetched (clean) bytes — the tail of a miss, so no hit/miss
    /// is counted. May evict; a sacrificed dirty frame comes back as a
    /// flush snapshot.
    InsertClean { home: NodeId, span: Span, bytes: &'a [u8] },
}

/// One attributed cache access: which application, doing what.
pub struct Access<'a> {
    pub app: AppId,
    pub kind: AccessKind<'a>,
}

impl<'a> Access<'a> {
    /// An unattributed access (no per-app accounting).
    pub fn unattributed(kind: AccessKind<'a>) -> Access<'a> {
        Access { app: AppId::UNKNOWN, kind }
    }
}

/// What an [`BufferManager::access`] call produced, by request kind:
/// `Read`/`Probe` yield `Hit`/`Miss`, `Write` yields `Write(..)`,
/// `InsertClean` yields `Inserted(..)`.
#[derive(Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    Hit,
    Miss,
    Write(WriteOutcome),
    Inserted(Option<FlushItem>),
}

impl AccessOutcome {
    /// Did a read/probe hit?
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug)]
struct Frame {
    key: Option<BlockKey>,
    data: Box<[u8; CACHE_BLOCK_SIZE]>,
    valid: Span,
    dirty: Span,
    home: NodeId,
    in_dirty_list: bool,
    /// A snapshot of this frame is in flight to its iod; the frame cannot
    /// be evicted (and is not re-taken by the flusher) until the flush is
    /// acknowledged. This is what makes write-behind *block* when the
    /// network cannot drain dirty data fast enough (§4.2.1).
    flushing: bool,
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            key: None,
            data: Box::new([0u8; CACHE_BLOCK_SIZE]),
            valid: Span::EMPTY,
            dirty: Span::EMPTY,
            home: NodeId(0),
            in_dirty_list: false,
            flushing: false,
        }
    }

    fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// Snapshot of the manager's counters.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub writes_absorbed: u64,
    pub writes_passthrough: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub flush_blocks: u64,
    pub invalidated: u64,
    pub invalidated_dirty: u64,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    writes_absorbed: AtomicU64,
    writes_passthrough: AtomicU64,
    evictions_clean: AtomicU64,
    evictions_dirty: AtomicU64,
    flush_blocks: AtomicU64,
    invalidated: AtomicU64,
    invalidated_dirty: AtomicU64,
}

/// Outcome of the quota gate for one frame acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// No quota applies (shared pool, unknown app, unlisted app).
    Unlimited,
    /// Under quota; one frame has been charged to the app.
    Granted,
    /// At/over quota; nothing charged — the caller must make room inside
    /// the app's own partition (or borrow, in soft mode).
    OverQuota,
}

/// Pre-resolved observability handles (`kcache-obs`), present only when
/// an [`ObsHub`] was wired at build time. Handle resolution (name lookup,
/// event-name interning) happens once, here; hot paths then pay one
/// never-taken branch when observability is off and **nothing extra**
/// when it is on: hit/miss metric counters are not incremented per
/// access (one additional atomic RMW would cost ~10% of the lean hit
/// path) but folded in from the manager's existing [`AtomicStats`]
/// ledger at sync points — epoch boundaries, ring drains, and
/// [`BufferManager::obs_flush`] — the same diff-the-ledger pattern used
/// for adaptive decisions below. Counters are therefore exact at every
/// epoch mark and export. Trace events and gauge refreshes live on cold
/// paths only (eviction scans, ring overflows, epoch boundaries).
/// Instrumentation is strictly read-only over cache state — a
/// differential test pins that obs-on and obs-off managers make
/// byte-for-byte identical decisions.
struct ManagerObs {
    hub: StdArc<ObsHub>,
    /// Trace `pid`: the node this manager serves (0 standalone).
    node: u32,
    hits: Counter,
    misses: Counter,
    /// High-water marks of `stats.hits`/`stats.misses` already folded
    /// into the metric counters (CAS-advanced, so concurrent sync points
    /// never double-count a delta).
    hits_seen: AtomicU64,
    misses_seen: AtomicU64,
    evictions_clean: Counter,
    evictions_dirty: Counter,
    /// Times the event ring refused a push (producer-became-drainer —
    /// each is a lost-recency/convoy window; see [`EventRing`]).
    ring_overflows: Counter,
    /// Events applied per non-empty `drain_locked` batch.
    drain_batch: Histogram,
    /// Candidates visited per successful eviction scan.
    scan_visits: Histogram,
    ev_eviction_scan: EventId,
    ev_epoch_tick: EventId,
    ev_ring_overflow: EventId,
    /// Adaptive switch / quota-move log entries already emitted as trace
    /// events — the manager diffs the ledger at each epoch boundary
    /// rather than coupling `kcache-adaptive` to the obs crate.
    switch_seen: AtomicU64,
    quota_seen: AtomicU64,
}

/// One shard of the cache: a fully self-contained slice of the frame
/// pool with its own hash buckets, free list, dirty queue, replacement
/// policy, event ring and charge ledger — every lock below this line is
/// shard-local. The public [`BufferManager`] facade routes each
/// [`BlockKey`] to exactly one shard (high hash bits, disjoint from the
/// low bits the in-shard bucket index consumes), so two threads touching
/// blocks on different shards share **no** lock at all. Cross-shard
/// state — global quota balances, adaptive switch decisions, tuned-quota
/// overlays — is reconciled only at epoch boundaries by the facade.
struct Shard {
    capacity: usize,
    policy_cfg: EvictPolicy,
    partitioning: PartitionConfig,
    low_watermark: usize,
    high_watermark: usize,
    frames: Vec<Mutex<Frame>>,
    buckets: Vec<Mutex<Vec<(BlockKey, u32)>>>,
    free: Mutex<Vec<u32>>,
    dirty: Mutex<VecDeque<u32>>,
    /// Leaf lock (see module docs): candidate ranking and recency state.
    policy: Mutex<Box<dyn ReplacementPolicy>>,
    /// Leaf lock: frames charged per app — resident frames plus
    /// acquisitions in flight (charged before install, uncharged on evict
    /// or abort), so the strict-quota admission check is race-free. The
    /// quota is exact in the single-threaded simulation; under concurrent
    /// direct-API use, a candidate that changes hands between the
    /// owner-filtered `next_candidate` and its revalidation can offset an
    /// app's count by one transiently (the same benign-race class as the
    /// pre-existing candidate/pin revalidation).
    charges: Mutex<HashMap<u32, usize>>,
    /// Leaf lock: quota overrides installed by the adaptive tuner's
    /// epoch recommendations. Consulted before the static
    /// `partitioning.quotas`; only ever holds apps that were quota'd in
    /// config (the tuner redistributes, it never invents partitions).
    tuned_quotas: Mutex<HashMap<u32, usize>>,
    /// Accesses (hits + misses + probes + touches) per policy epoch; 0
    /// disables epochs.
    epoch_accesses: usize,
    /// Access counter driving the epoch clock.
    accesses: AtomicU64,
    /// Shared handle to the policy table's per-frame atomic ref/recency
    /// words — the lock-free half of the hit fast path. Cloned out of the
    /// policy once at construction; live policy migration carries the
    /// same physical words, so the handle never goes stale.
    ref_words: RefWords,
    /// Bounded lock-free side-buffer of deferred [`AccessEvent`]s (see
    /// the module docs); drained into the policy under its leaf lock.
    ring: EventRing,
    /// The policy ranks from the atomic ref words (static clock): a
    /// touch event has no deferred effect at all (the word was stored at
    /// access time), and an *unattributed* hit/miss nothing beyond a
    /// counter bump, so both collapse out of the ring — the cheapest
    /// possible fast path for the paper's default configuration.
    count_only_unattributed: bool,
    /// Store the ref word on hits/touches at all: true when the policy
    /// ranks from it (clock), consumes the app-touch mask at scan time
    /// (sharing-aware), or could migrate to either (any adaptive
    /// wrapper). A static LRU/LFU/2Q/ARC manager never consumes the
    /// words, so it skips the per-hit `fetch_or`.
    touch_words: bool,
    pending_hits: AtomicU64,
    pending_misses: AtomicU64,
    /// Apply events under the policy lock at access time instead of
    /// through the ring — the pre-fast-path reference behavior, kept for
    /// differential tests and as the bench baseline.
    eager: bool,
    /// Minimum quota the adaptive tuner may shrink any app to (validated
    /// here — the manager owns the charge ledger — as the backstop behind
    /// the tuner's own clamp).
    quota_floor: usize,
    /// Leaf lock, cooperative authoritative mode only: keys evicted or
    /// invalidated since the last [`BufferManager::take_evicted`] drain.
    /// The cache module turns the drained batch into directory-removal
    /// updates to the mgr. `None` keeps the hot path untouched.
    evicted_log: Option<Mutex<Vec<BlockKey>>>,
    /// Leaf lock, singleton-preserving mode only: blocks believed to be
    /// duplicated in a peer's cache (learned from peer transfers). The
    /// eviction scan prefers these — a duplicate is cheap to lose, the
    /// last cluster-wide copy is not. Advisory: a peer may have evicted
    /// its copy since, which costs one disk fetch, never correctness.
    duplicate_hints: Option<Mutex<std::collections::HashSet<BlockKey>>>,
    /// Observability handles (`None` keeps every hot path at one
    /// never-taken branch).
    obs: Option<ManagerObs>,
    stats: AtomicStats,
    /// `Some` when a sharded facade coordinates epochs (N > 1): every
    /// access event bumps this facade-shared clock instead of running
    /// the in-shard epoch boundary. `None` (N = 1) keeps the exact
    /// in-shard epoch path, byte-for-byte the pre-sharding behavior.
    shared_clock: Option<StdArc<AtomicU64>>,
}

/// The shared, finely-locked block cache — a facade over `N` independent
/// [`Shard`]s (see [`BufferManagerBuilder::shards`]; the default of 1
/// preserves the historical single-pool behavior exactly).
///
/// The facade itself holds **no locks**: routing is a pure hash, the
/// aggregate counters are sums over shard-local atomics, and the only
/// facade-owned mutable state is the lock-free epoch clock/gate pair
/// below. Cross-shard coordination happens in exactly two places:
///
/// * **Epoch boundaries** (N > 1): shards feed one shared access clock;
///   when it crosses `epoch_accesses` the thread that trips the gate
///   collects each shard's [`EpochObservation`], merges the ghost and
///   refault ledgers, makes ONE switch/quota decision over the merged
///   evidence (`kcache-adaptive`'s shared decision rules), and applies
///   the resulting [`EpochDirective`] to every shard — so an adaptive
///   switch migrates all shards atomically with respect to epochs and
///   no shard can disagree about the live policy.
/// * **Strict-quota spill**: per-shard strict quotas are the global
///   quota split across shards. When an app's traffic hashes unevenly
///   its home shard may fill while a sibling's slice idles; before a
///   write/insert is denied the facade moves one *quota unit* (never a
///   frame) from an under-used sibling to the home shard —
///   decrement-before-increment, so the global sum never exceeds the
///   configured quota at any instant.
pub struct BufferManager {
    shards: Box<[Shard]>,
    capacity: usize,
    policy_cfg: EvictPolicy,
    /// The *global* partition config (shards hold their split slices).
    partitioning: PartitionConfig,
    adaptive_cfg: Option<AdaptiveConfig>,
    epoch_accesses: usize,
    quota_floor: usize,
    /// N > 1 only: accesses across all shards since construction (the
    /// shards bump it; see [`Shard::shared_clock`]).
    epoch_clock: StdArc<AtomicU64>,
    /// Coordinated epoch boundaries already run.
    epoch_marks: AtomicU64,
    /// CAS gate: exactly one thread runs a due boundary.
    epoch_gate: AtomicBool,
}

/// Builder for [`BufferManager`] — the canonical construction surface.
///
/// Every knob defaults to the paper's behavior: clock + clean-first
/// replacement, watermarks at capacity/10 and capacity/4, a shared
/// (unpartitioned) pool, no adaptive meta-policy, no epochs, drained
/// accounting, node-local (non-cooperative) caching.
///
/// ```
/// # use kcache::{BufferManager, EvictPolicy};
/// # use kcache::policy::PolicyKind;
/// let m = BufferManager::builder(300)
///     .policy(EvictPolicy::of(PolicyKind::ExactLru))
///     .watermarks(30, 75)
///     .build();
/// # assert_eq!(m.capacity(), 300);
/// ```
#[derive(Clone)]
pub struct BufferManagerBuilder {
    capacity: usize,
    policy: EvictPolicy,
    low_watermark: usize,
    high_watermark: usize,
    partitioning: PartitionConfig,
    adaptive: Option<AdaptiveConfig>,
    epoch_accesses: usize,
    eager: bool,
    cooperative: Option<CooperativeConfig>,
    obs: Option<(StdArc<ObsHub>, u32)>,
    shards: usize,
}

impl BufferManagerBuilder {
    fn new(capacity: usize) -> BufferManagerBuilder {
        BufferManagerBuilder {
            capacity,
            policy: EvictPolicy::default(),
            low_watermark: capacity / 10,
            high_watermark: capacity / 4,
            partitioning: PartitionConfig::shared(),
            adaptive: None,
            epoch_accesses: 0,
            eager: false,
            cooperative: None,
            obs: None,
            shards: 1,
        }
    }

    /// Replacement policy (ranking kind + clean-first preference).
    pub fn policy(mut self, policy: EvictPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Harvester thresholds: wake below `low` free frames, sweep until
    /// `high` are free.
    pub fn watermarks(mut self, low: usize, high: usize) -> Self {
        self.low_watermark = low;
        self.high_watermark = high;
        self
    }

    /// Per-application frame quotas.
    pub fn partitioning(mut self, partitioning: PartitionConfig) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// `Some` wraps the candidates in the `kcache-adaptive` meta-policy
    /// (ghost caches, epoch switching, quota tuning).
    pub fn adaptive(mut self, adaptive: Option<AdaptiveConfig>) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Accesses per policy epoch (`0` disables epochs).
    pub fn epoch_accesses(mut self, n: usize) -> Self {
        self.epoch_accesses = n;
        self
    }

    /// **Eager accounting**: apply every access event to the policy under
    /// its leaf lock at access time, exactly the pre-fast-path behavior.
    /// This is the reference the differential tests compare the drained
    /// path against, and the baseline the `buffer_manager` bench
    /// arbitrates with; production callers want the default (drained).
    pub fn eager_accounting(mut self, eager: bool) -> Self {
        self.eager = eager;
        self
    }

    /// Cooperative cluster-wide caching. [`DirectoryMode::Authoritative`]
    /// enables the evicted-key log (the module pushes removals to the
    /// mgr's directory); `singleton_preserving` enables the duplicate
    /// eviction preference. `None` keeps every hot path untouched.
    pub fn cooperative(mut self, cooperative: Option<CooperativeConfig>) -> Self {
        self.cooperative = cooperative;
        self
    }

    /// Wire an [`ObsHub`]: metric handles are resolved and trace-event
    /// names interned once here, so the hit path pays exactly one
    /// relaxed atomic add per counted event. `node` labels this
    /// manager's trace events (the Chrome-trace `pid`). `None` (the
    /// default) keeps every hot path at one never-taken branch.
    pub fn obs(mut self, hub: Option<StdArc<ObsHub>>, node: u32) -> Self {
        self.obs = hub.map(|h| (h, node));
        self
    }

    /// Number of independent shards the frame pool is split into. `1`
    /// (the default) is the historical single-pool manager, bit for
    /// bit. With `n > 1` each shard owns `capacity / n` frames (the
    /// remainder spread over the low-index shards), its own replacement
    /// policy instance, free/dirty lists and charge ledger; blocks route
    /// to shards by the *high* bits of the key hash (the in-shard bucket
    /// index consumes the low bits). Quotas and watermarks are split the
    /// same way, sums preserved; epochs are coordinated by the facade so
    /// adaptive decisions stay global (see [`BufferManager`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    pub fn build(self) -> BufferManager {
        let BufferManagerBuilder {
            capacity,
            policy,
            low_watermark,
            high_watermark,
            partitioning,
            adaptive,
            epoch_accesses,
            eager,
            cooperative,
            obs,
            shards: n_shards,
        } = self;
        assert!(capacity > 0);
        assert!(n_shards >= 1, "at least one shard");
        assert!(n_shards <= capacity, "more shards than frames");
        assert!(low_watermark <= high_watermark && high_watermark <= capacity);
        partitioning.validate(capacity).unwrap_or_else(|e| panic!("bad partitioning: {e}"));
        let quota_floor = adaptive.as_ref().map_or(1, |a| a.quota_floor.max(1));
        let shared_clock = (n_shards > 1).then(|| StdArc::new(AtomicU64::new(0)));
        let caps = split_units(capacity, n_shards);
        let lows = split_units(low_watermark, n_shards);
        let highs = split_units(high_watermark, n_shards);
        let shards: Vec<Shard> = (0..n_shards)
            .map(|i| {
                // Per-shard slice of the partition plan: each quota is
                // split like the capacity (remainder to low shards), so
                // the per-shard quotas of any app sum exactly to its
                // global quota. A slice may legitimately be 0 for small
                // quotas — strict admission then denies on that shard
                // until the facade lends it a unit from a sibling.
                let part = PartitionConfig {
                    mode: partitioning.mode,
                    quotas: partitioning
                        .quotas
                        .iter()
                        .map(|(&id, &q)| (id, split_units(q, n_shards)[i]))
                        .collect(),
                };
                Shard::build(ShardParams {
                    capacity: caps[i],
                    policy,
                    low_watermark: lows[i],
                    high_watermark: highs[i],
                    partitioning: part,
                    adaptive: adaptive.clone(),
                    epoch_accesses,
                    eager,
                    cooperative,
                    obs: obs.clone(),
                    quota_floor,
                    shared_clock: shared_clock.clone(),
                })
            })
            .collect();
        BufferManager {
            shards: shards.into_boxed_slice(),
            capacity,
            policy_cfg: policy,
            partitioning,
            adaptive_cfg: adaptive,
            epoch_accesses,
            quota_floor,
            epoch_clock: shared_clock.unwrap_or_else(|| StdArc::new(AtomicU64::new(0))),
            epoch_marks: AtomicU64::new(0),
            epoch_gate: AtomicBool::new(false),
        }
    }
}

/// Split `total` units over `n` shards: `total / n` each, the remainder
/// distributed one-per-shard from index 0. Monotone in `total` (so split
/// watermarks never exceed split capacities) and sum-preserving.
fn split_units(total: usize, n: usize) -> Vec<usize> {
    let (base, rem) = (total / n, total % n);
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// Construction parameters for one [`Shard`] (the facade's split of the
/// builder knobs).
struct ShardParams {
    capacity: usize,
    policy: EvictPolicy,
    low_watermark: usize,
    high_watermark: usize,
    partitioning: PartitionConfig,
    adaptive: Option<AdaptiveConfig>,
    epoch_accesses: usize,
    eager: bool,
    cooperative: Option<CooperativeConfig>,
    obs: Option<(StdArc<ObsHub>, u32)>,
    quota_floor: usize,
    shared_clock: Option<StdArc<AtomicU64>>,
}

impl Shard {
    fn build(params: ShardParams) -> Shard {
        let ShardParams {
            capacity,
            policy,
            low_watermark,
            high_watermark,
            partitioning,
            adaptive,
            epoch_accesses,
            eager,
            cooperative,
            obs,
            quota_floor,
            shared_clock,
        } = params;
        debug_assert!(capacity > 0);
        debug_assert!(low_watermark <= high_watermark && high_watermark <= capacity);
        let n_buckets = (capacity / 4).next_power_of_two().max(16);
        let is_adaptive = adaptive.is_some();
        let ranked: Box<dyn ReplacementPolicy> = match adaptive {
            Some(cfg) => Box::new(AdaptivePolicy::new(capacity, cfg)),
            None => policy.kind.build(capacity),
        };
        let ref_words = ranked.table().ref_words().clone();
        let count_only_unattributed = ranked.ranks_from_ref_words();
        let touch_words = count_only_unattributed || is_adaptive || ranked.consumes_app_mask();
        let track_evictions =
            cooperative.is_some_and(|c| c.directory == crate::config::DirectoryMode::Authoritative);
        let singleton = cooperative.is_some_and(|c| c.singleton_preserving);
        let policy_label = if is_adaptive { "adaptive" } else { policy.kind.name() };
        let obs = obs.map(|(hub, node)| {
            let reg = hub.registry();
            ManagerObs {
                hits: reg.counter(&format!("cache.hits.{policy_label}")),
                misses: reg.counter(&format!("cache.misses.{policy_label}")),
                evictions_clean: reg.counter("cache.evictions_clean"),
                evictions_dirty: reg.counter("cache.evictions_dirty"),
                ring_overflows: reg.counter("cache.ring_overflows"),
                drain_batch: reg.histogram("cache.drain_batch"),
                scan_visits: reg.histogram("cache.scan_visits"),
                ev_eviction_scan: hub.intern("eviction_scan", Some("visited"), Some("dirty")),
                ev_epoch_tick: hub.intern("epoch_tick", Some("epoch"), Some("accesses")),
                ev_ring_overflow: hub.intern("ring_overflow", Some("overflows"), None),
                hits_seen: AtomicU64::new(0),
                misses_seen: AtomicU64::new(0),
                switch_seen: AtomicU64::new(0),
                quota_seen: AtomicU64::new(0),
                hub,
                node,
            }
        });
        Shard {
            capacity,
            policy_cfg: policy,
            partitioning,
            low_watermark,
            high_watermark,
            frames: (0..capacity).map(|_| Mutex::new(Frame::empty())).collect(),
            buckets: (0..n_buckets).map(|_| Mutex::new(Vec::new())).collect(),
            free: Mutex::new((0..capacity as u32).rev().collect()),
            dirty: Mutex::new(VecDeque::new()),
            policy: Mutex::new(ranked),
            charges: Mutex::new(HashMap::new()),
            tuned_quotas: Mutex::new(HashMap::new()),
            epoch_accesses,
            accesses: AtomicU64::new(0),
            ref_words,
            ring: EventRing::new(),
            count_only_unattributed,
            touch_words,
            pending_hits: AtomicU64::new(0),
            pending_misses: AtomicU64::new(0),
            eager,
            quota_floor,
            evicted_log: track_evictions.then(|| Mutex::new(Vec::new())),
            duplicate_hints: singleton.then(|| Mutex::new(std::collections::HashSet::new())),
            obs,
            stats: AtomicStats::default(),
            shared_clock,
        }
    }

    fn free_frames(&self) -> usize {
        self.free.lock().len()
    }

    fn resident(&self) -> usize {
        self.capacity - self.free_frames()
    }

    fn dirty_queue_len(&self) -> usize {
        self.dirty.lock().len()
    }

    /// The replacement policy's own event ledger (hits/misses/evictions as
    /// the policy subsystem saw them). Drains deferred events first, so a
    /// snapshot never under-reports traffic that already happened.
    pub fn policy_stats(&self) -> PolicyStats {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        *p.stats()
    }

    /// The adaptive meta-policy's observability ledger (switch log, ghost
    /// hit rates, quota moves); `None` when a static policy runs. Drains
    /// deferred events first (ghost feeds ride the same ring).
    pub fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        p.adaptive_stats()
    }

    /// The [`PolicyKind`] currently ranking candidates — for a static
    /// policy the configured kind, for the adaptive meta-policy whichever
    /// candidate is live right now.
    pub fn live_policy_kind(&self) -> PolicyKind {
        self.policy.lock().kind()
    }

    /// Per-application occupancy and attributed traffic (ascending by app
    /// id; apps appear once they have touched the cache). Drains deferred
    /// events first, so the ledger reflects every access that happened.
    pub fn app_usage(&self) -> Vec<(AppId, AppUsage)> {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        p.app_usage()
    }

    /// Frames currently owned (installed) by `app`.
    pub fn resident_of(&self, app: AppId) -> usize {
        self.policy.lock().resident_of(app)
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            writes_absorbed: self.stats.writes_absorbed.load(Ordering::Relaxed),
            writes_passthrough: self.stats.writes_passthrough.load(Ordering::Relaxed),
            evictions_clean: self.stats.evictions_clean.load(Ordering::Relaxed),
            evictions_dirty: self.stats.evictions_dirty.load(Ordering::Relaxed),
            flush_blocks: self.stats.flush_blocks.load(Ordering::Relaxed),
            invalidated: self.stats.invalidated.load(Ordering::Relaxed),
            invalidated_dirty: self.stats.invalidated_dirty.load(Ordering::Relaxed),
        }
    }

    /// Times the access-event ring refused a push because it was full —
    /// the producer-becomes-drainer event. Nothing is lost (the refused
    /// event is applied inline under the policy lock), but each
    /// occurrence is a window where the lock-free hit path convoyed on
    /// the lock; sustained growth means drain points are too sparse for
    /// the traffic.
    pub fn event_ring_overflows(&self) -> u64 {
        self.ring.overflows()
    }

    #[inline]
    fn bucket_of(&self, key: &BlockKey) -> usize {
        (key.hash() as usize) & (self.buckets.len() - 1)
    }

    /// Pop every queued event (FIFO) and apply it to the policy. Must be
    /// called with the policy lock held (`p` is the locked policy); the
    /// manager drains at every point where the policy is about to rank,
    /// decide, or report, so deferred events are always applied before
    /// they could be observed missing.
    fn drain_locked(&self, p: &mut Box<dyn ReplacementPolicy>) {
        let hits = self.pending_hits.swap(0, Ordering::Relaxed);
        let misses = self.pending_misses.swap(0, Ordering::Relaxed);
        if hits > 0 || misses > 0 {
            p.credit_counts(hits, misses);
        }
        // Pop at most one ring's worth per call: sustained lock-free
        // producers must not pin the drainer under the policy lock (or
        // grow the batch) indefinitely. Anything newer lands at the next
        // drain point; single-threaded the ring never holds more than
        // its capacity, so equivalence is unaffected.
        let mut batch: Vec<AccessEvent> = Vec::new();
        for _ in 0..crate::ring::CAPACITY {
            match self.ring.pop() {
                Some(ev) => batch.push(ev),
                None => break,
            }
        }
        if !batch.is_empty() {
            if let Some(o) = &self.obs {
                o.drain_batch.record(batch.len() as u64);
            }
            p.drain(&batch);
        }
        if let Some(o) = &self.obs {
            self.obs_sync_counts(o);
        }
    }

    /// Fold any hit/miss ledger growth since the last sync point into
    /// the hub's metric counters (see [`ManagerObs`]: the hit path never
    /// touches the metric cells itself). Each high-water mark advances
    /// by CAS, so a delta is claimed by exactly one caller — concurrent
    /// sync points may split the growth but never count it twice.
    fn obs_sync_counts(&self, o: &ManagerObs) {
        fn claim(seen: &AtomicU64, now: u64) -> u64 {
            let mut old = seen.load(Ordering::Relaxed);
            loop {
                if now <= old {
                    return 0;
                }
                match seen.compare_exchange_weak(old, now, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return now - old,
                    Err(v) => old = v,
                }
            }
        }
        let d = claim(&o.hits_seen, self.stats.hits.load(Ordering::Relaxed));
        if d > 0 {
            o.hits.add(d);
        }
        let d = claim(&o.misses_seen, self.stats.misses.load(Ordering::Relaxed));
        if d > 0 {
            o.misses.add(d);
        }
    }

    /// Bring the hub's deferred metric counters (hit/miss mirrors) up to
    /// date. Call before exporting or asserting on hub metrics outside
    /// an epoch boundary — epoch marks and ring drains sync implicitly,
    /// but a pure-hit tail between the last drain and an export would
    /// otherwise be missing. No-op without a wired hub.
    pub fn obs_flush(&self) {
        if let Some(o) = &self.obs {
            self.obs_sync_counts(o);
        }
    }

    /// Route one access event to the policy: inline under the lock in
    /// eager mode, through the lock-free ring otherwise. Unattributed
    /// events under a ref-word-ranking policy collapse into plain counter
    /// bumps — no ring traffic (see `count_only_unattributed`). A full
    /// ring makes the producer the drainer (bounded memory, nothing
    /// dropped).
    fn push_event(&self, ev: AccessEvent) {
        if self.eager {
            self.policy.lock().drain(std::slice::from_ref(&ev));
            return;
        }
        if self.count_only_unattributed {
            match ev.kind {
                // The ref word was already stored at access time; under a
                // ref-word-ranking policy a touch (any app) defers
                // nothing — its drain arm is empty — so it never needs
                // the ring.
                kcache_policy::AccessKind::Touch => return,
                kcache_policy::AccessKind::Hit | kcache_policy::AccessKind::ProbeHit
                    if ev.app == AppId::UNKNOWN =>
                {
                    self.pending_hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                kcache_policy::AccessKind::Miss if ev.app == AppId::UNKNOWN => {
                    self.pending_misses.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                _ => {}
            }
        }
        if !self.ring.push(ev) {
            if let Some(o) = &self.obs {
                o.ring_overflows.inc();
                o.hub.instant(o.ev_ring_overflow, o.node, 0, self.ring.overflows(), 0);
            }
            let mut p = self.policy.lock();
            self.drain_locked(&mut p);
            p.drain(std::slice::from_ref(&ev));
        }
    }

    /// Hit accounting + recency refresh — the lock-free fast path: atomic
    /// counters, one relaxed store into the frame's ref/recency word, one
    /// ring enqueue. No policy lock.
    fn record_hit(&self, idx: u32, key: BlockKey, app: AppId) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        if self.touch_words {
            self.ref_words.touch(idx, app);
        }
        self.push_event(AccessEvent::hit(idx, key.hash(), app));
        self.note_epoch_access();
    }

    fn record_miss(&self, app: AppId) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.push_event(AccessEvent::miss(app));
        self.note_epoch_access();
    }

    /// The epoch clock: every `epoch_accesses` access events (hits,
    /// misses, probe hits, recency touches — see the module docs for the
    /// participation rule), drive one policy `epoch_tick` (adaptive
    /// switch decisions, `SharingAware` referent decay) and apply any
    /// quota updates the tick recommends. The ring is drained before the
    /// tick so the decision sees every access that preceded the epoch
    /// boundary. Locks are taken one at a time (policy, then
    /// tuned_quotas — both leaves), never nested.
    fn note_epoch_access(&self) {
        // Sharded facade (N > 1): this shard does not run epochs itself —
        // it feeds the facade's shared clock and the facade coordinates
        // one cross-shard boundary when the clock crosses the threshold.
        if let Some(clock) = &self.shared_clock {
            clock.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.epoch_accesses == 0 {
            return;
        }
        let n = self.accesses.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.epoch_accesses as u64) {
            return;
        }
        self.epoch_tick_local();
        if self.obs.is_some() {
            let usage = self.app_usage();
            let quotas: Vec<(AppId, usize)> =
                usage.iter().filter_map(|&(app, _)| self.quota_of(app).map(|q| (app, q))).collect();
            let ast = self.adaptive_stats();
            self.obs_epoch_mark(n, &usage, &quotas, ast.as_ref());
        }
    }

    /// One shard-local epoch tick: drain, let the policy decide
    /// (adaptive switch, `SharingAware` decay), validate and apply any
    /// quota updates it recommends. Runs from the in-shard clock (N = 1)
    /// or per shard from the facade's coordinated boundary when no
    /// adaptive meta-policy needs cross-shard merging (static policies
    /// age independently — there is no shared decision to coordinate).
    fn epoch_tick_local(&self) {
        let quotas: Vec<(AppId, usize)> = if self.partitioning.mode == PartitionMode::Shared {
            Vec::new()
        } else {
            self.partitioning
                .quotas
                .keys()
                .filter_map(|&id| self.quota_of(AppId(id)).map(|q| (AppId(id), q)))
                .collect()
        };
        let updates = {
            let mut p = self.policy.lock();
            self.drain_locked(&mut p);
            p.epoch_tick(&quotas)
        };
        if !updates.is_empty() {
            // The tuner redistributes existing partitions; it may never
            // invent a quota, shrink one below the fairness floor, or
            // exceed the pool — and a transfer applies in full or not at
            // all (applying only one side of a grow/shrink pair would
            // leak total quota).
            let valid = updates.iter().all(|u| {
                u.app != AppId::UNKNOWN
                    && u.quota >= 1
                    && u.quota <= self.capacity
                    && self.partitioning.quotas.contains_key(&u.app.0)
                    // The fairness floor bounds how far a quota may be
                    // *shrunk*; an app whose configured quota starts
                    // below the floor may still grow toward it (a veto
                    // here would kill the whole transfer pair and leave
                    // the tuner permanently dead for such configs).
                    && (u.quota >= self.quota_floor
                        || self.quota_of(u.app).is_some_and(|cur| u.quota >= cur))
            });
            if valid {
                let mut tuned = self.tuned_quotas.lock();
                for u in updates {
                    tuned.insert(u.app.0, u.quota);
                }
            }
        }
    }

    /// Facade coordination, step 1 (adaptive, N > 1): drain this shard's
    /// deferred events and export its epoch observation — the live
    /// policy, each candidate ghost's per-epoch ledger, each app's
    /// refault count. `None` for static policies.
    fn epoch_observe(&self) -> Option<EpochObservation> {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        p.epoch_observe()
    }

    /// Facade coordination, step 2 (adaptive, N > 1): apply the merged
    /// cross-shard decision — every shard receives the same directive,
    /// so a policy switch migrates all shards within one boundary.
    fn epoch_apply_directive(&self, directive: &EpochDirective) {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        p.epoch_apply(directive);
    }

    /// Epoch-boundary observability (cold path, obs-wired managers only):
    /// close the hub's metric window, refresh the per-app occupancy and
    /// ghost-rate gauges, and emit adaptive controller decisions logged
    /// since the last boundary as trace events — the manager diffs the
    /// switch/quota-move ledgers here so `kcache-adaptive` itself stays
    /// free of any obs dependency. Each decision event carries its
    /// *reason* as args: the deciding ghost hit rates for a policy
    /// switch, the winning/losing refault counts for a quota move.
    ///
    /// Usage, quota gauges and adaptive stats come in as arguments so the
    /// sharded facade can pass *merged* cross-shard views — a shard
    /// publishing only its own slice would clobber the global gauges with
    /// a partial picture.
    fn obs_epoch_mark(
        &self,
        access_n: u64,
        usage: &[(AppId, AppUsage)],
        quota_gauges: &[(AppId, usize)],
        ast: Option<&AdaptiveStats>,
    ) {
        let Some(o) = &self.obs else { return };
        // Sync the deferred hit/miss mirrors *before* closing the metric
        // window, so each epoch delta carries exactly its own accesses.
        self.obs_sync_counts(o);
        o.hub.mark_epoch();
        let epoch = access_n / self.epoch_accesses as u64;
        o.hub.instant(o.ev_epoch_tick, o.node, 0, epoch, access_n);
        let reg = o.hub.registry();
        for (app, u) in usage {
            reg.gauge(&format!("app.{}.resident", app.0)).set(u.resident);
            reg.gauge(&format!("app.{}.hits", app.0)).set(u.hits);
            reg.gauge(&format!("app.{}.misses", app.0)).set(u.misses);
        }
        for (app, q) in quota_gauges {
            reg.gauge(&format!("app.{}.quota", app.0)).set(*q as u64);
        }
        let Some(ast) = ast else {
            return;
        };
        for g in &ast.ghost_rates {
            // Basis points: gauges are integers, rates are 0.0..=1.0.
            reg.gauge(&format!("ghost.{}.rate_bp", g.kind.name()))
                .set((g.rate() * 10_000.0) as u64);
        }
        let seen = o.switch_seen.load(Ordering::Relaxed) as usize;
        for rec in ast.switch_log.iter().skip(seen) {
            let id = o.hub.intern(
                &format!("policy_switch {}->{}", rec.from.name(), rec.to.name()),
                Some("from_rate_bp"),
                Some("to_rate_bp"),
            );
            o.hub.instant(
                id,
                o.node,
                0,
                (rec.from_rate * 10_000.0) as u64,
                (rec.to_rate * 10_000.0) as u64,
            );
        }
        o.switch_seen.store(ast.switch_log.len() as u64, Ordering::Relaxed);
        let seen = o.quota_seen.load(Ordering::Relaxed) as usize;
        for rec in ast.quota_log.iter().skip(seen) {
            let id = o.hub.intern(
                &format!("quota_move app{}->app{} x{}", rec.from.0, rec.to.0, rec.frames),
                Some("from_refaults"),
                Some("to_refaults"),
            );
            o.hub.instant(id, o.node, 0, rec.from_refaults, rec.to_refaults);
        }
        o.quota_seen.store(ast.quota_log.len() as u64, Ordering::Relaxed);
    }

    /// Recency-only refresh (no hit/miss ledger): sync-write refreshes,
    /// secondary-waiter attribution, merges into a resident block. A
    /// touch is a real access, so it **does** advance the epoch clock
    /// (the explicit participation rule in the module docs — before PR 5
    /// touches silently never aged the policies).
    fn note_touch(&self, idx: u32, key: BlockKey, app: AppId) {
        if self.touch_words {
            self.ref_words.touch(idx, app);
        }
        self.push_event(AccessEvent::touch(idx, key.hash(), app));
        self.note_epoch_access();
    }

    /// Recency bookkeeping for a freshly inserted frame (clock inserts with
    /// the reference bit clear — a block earns its second chance by being
    /// read; LRU-style policies link at the MRU end; ghost-list policies
    /// consult their history of `key`). Applied eagerly — the insert path
    /// already holds no fast-path illusions — after draining the ring, so
    /// accesses that preceded the install keep their order.
    fn note_insert(&self, idx: u32, key: BlockKey, app: AppId) {
        let mut p = self.policy.lock();
        self.drain_locked(&mut p);
        p.on_insert(idx, key.hash(), app);
    }

    /// Attribute an access to `app` without copying data — used by the
    /// cache module when one fetch satisfies waiters from *several*
    /// applications, so sharing-aware policies see every referent.
    pub fn note_access(&self, key: BlockKey, app: AppId) {
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            match b.iter().find(|(k, _)| *k == key) {
                Some(&(_, idx)) => idx,
                None => return,
            }
        };
        self.note_touch(idx, key, app);
    }

    /// Look up `key` in the hash table (no data copy, no stats). Mostly for
    /// tests and diagnostics.
    pub fn contains(&self, key: BlockKey) -> bool {
        let b = self.buckets[self.bucket_of(&key)].lock();
        b.iter().any(|(k, _)| *k == key)
    }

    /// Copy `span` of `key` into `out` if it is resident and valid,
    /// **without** touching any accounting: no hit/miss counters, no
    /// recency refresh, no per-app ledger, no epoch tick. This is the
    /// read the cooperative tier serves *peer* fetches with — remote
    /// traffic must not distort this node's local hit ratio or promote
    /// blocks its own applications are not using.
    pub fn read_resident(&self, key: BlockKey, span: Span, out: &mut [u8]) -> bool {
        debug_assert_eq!(out.len(), span.len() as usize);
        let b = self.buckets[self.bucket_of(&key)].lock();
        let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) else {
            return false;
        };
        let f = self.frames[idx as usize].lock();
        if f.key == Some(key) && f.valid.covers(span) {
            out.copy_from_slice(&f.data[span.start as usize..span.end as usize]);
            true
        } else {
            false
        }
    }

    /// The canonical access entry point: one attributed request
    /// ([`Access`]) covering reads, probes, write-behind absorbs and
    /// clean installs. The `try_read`/`probe`/`write`/`insert_clean`
    /// method families (and their `*_by` forms) are trivial wrappers
    /// around this.
    pub fn access(&self, key: BlockKey, req: Access<'_>) -> AccessOutcome {
        let app = req.app;
        match req.kind {
            AccessKind::Read { span, out } => {
                if self.read_impl(key, span, out, app) {
                    AccessOutcome::Hit
                } else {
                    AccessOutcome::Miss
                }
            }
            AccessKind::Probe { span } => {
                if self.probe_impl(key, span, app) {
                    AccessOutcome::Hit
                } else {
                    AccessOutcome::Miss
                }
            }
            AccessKind::Write { home, span, bytes } => {
                AccessOutcome::Write(self.write_impl(key, home, span, bytes, app))
            }
            AccessKind::InsertClean { home, span, bytes } => {
                AccessOutcome::Inserted(self.insert_clean_impl(key, home, span, bytes, app))
            }
        }
    }

    fn read_impl(&self, key: BlockKey, span: Span, out: &mut [u8], app: AppId) -> bool {
        debug_assert_eq!(out.len(), span.len() as usize);
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            match b.iter().find(|(k, _)| *k == key) {
                Some(&(_, idx)) => {
                    let f = self.frames[idx as usize].lock();
                    if f.key == Some(key) && f.valid.covers(span) {
                        out.copy_from_slice(&f.data[span.start as usize..span.end as usize]);
                        idx
                    } else {
                        drop(f);
                        drop(b);
                        self.record_miss(app);
                        return false;
                    }
                }
                None => {
                    drop(b);
                    self.record_miss(app);
                    return false;
                }
            }
        };
        self.record_hit(idx, key, app);
        true
    }

    fn probe_impl(&self, key: BlockKey, span: Span, app: AppId) -> bool {
        let b = self.buckets[self.bucket_of(&key)].lock();
        let hit = b.iter().any(|(k, idx)| {
            *k == key && {
                let f = self.frames[*idx as usize].lock();
                f.key == Some(key) && f.valid.covers(span)
            }
        });
        drop(b);
        if hit {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.push_event(AccessEvent::probe_hit(app));
            self.note_epoch_access();
        } else {
            self.record_miss(app);
        }
        hit
    }

    fn push_free(&self, idx: u32) {
        self.free.lock().push(idx);
    }

    // -----------------------------------------------------------------
    // Quota charging (per-app frame accounting)
    // -----------------------------------------------------------------

    /// Effective frame quota of `app`: the adaptive tuner's override when
    /// one has been applied, the static [`PartitionConfig`] quota
    /// otherwise, `None` when unconstrained. This — not
    /// `partitioning().quota_of` — is what admission, reclaim and
    /// reporting measure against once online tuning is running.
    pub fn quota_of(&self, app: AppId) -> Option<usize> {
        if self.partitioning.mode == PartitionMode::Shared || app == AppId::UNKNOWN {
            return None;
        }
        if let Some(&q) = self.tuned_quotas.lock().get(&app.0) {
            return Some(q);
        }
        self.partitioning.quotas.get(&app.0).copied()
    }

    /// Does quota accounting apply to `app` at all?
    fn quota_applies(&self, app: AppId) -> bool {
        self.quota_of(app).is_some()
    }

    /// Quota gate: charge one frame to `app` if it is under quota.
    ///
    /// The effective quota is resolved **while holding the charges
    /// lock** (charges → tuned_quotas is the one sanctioned leaf-lock
    /// nesting; nothing takes them in the other order). This serializes
    /// admission against the facade's cross-shard quota lending, which
    /// also inspects the charge under the charges lock before moving a
    /// quota unit away — without it a grant racing a lend could leave a
    /// shard one frame over its (just-shrunk) slice.
    fn admit(&self, app: AppId) -> Admission {
        let mut c = self.charges.lock();
        let Some(quota) = self.quota_of(app) else {
            return Admission::Unlimited;
        };
        let n = c.entry(app.0).or_insert(0);
        if *n < quota {
            *n += 1;
            Admission::Granted
        } else {
            Admission::OverQuota
        }
    }

    /// Is `app` at (or over) its quota slice on this shard? Used by the
    /// facade to decide whether a write/insert is about to be denied and
    /// a quota unit should be borrowed from a sibling shard first.
    fn at_quota(&self, app: AppId) -> bool {
        let c = self.charges.lock();
        match self.quota_of(app) {
            Some(q) => c.get(&app.0).copied().unwrap_or(0) >= q,
            None => false,
        }
    }

    /// Give up one unused quota unit of `app`'s slice on this shard
    /// (facade spill, strict mode): succeeds only while the app's charge
    /// is strictly below its slice, so the unit being moved is provably
    /// idle here. Runs under the charges lock — see [`Shard::admit`].
    fn lend_quota_unit(&self, app: AppId) -> bool {
        let c = self.charges.lock();
        let Some(q) = self.quota_of(app) else {
            return false;
        };
        if q == 0 || c.get(&app.0).copied().unwrap_or(0) >= q {
            return false;
        }
        self.tuned_quotas.lock().insert(app.0, q - 1);
        true
    }

    /// Grow `app`'s quota slice on this shard by the unit a sibling just
    /// lent (the decrement happened first, so the global sum never
    /// exceeds the configured quota).
    fn receive_quota_unit(&self, app: AppId) {
        let c = self.charges.lock();
        if let Some(q) = self.quota_of(app) {
            self.tuned_quotas.lock().insert(app.0, q + 1);
        }
        drop(c);
    }

    /// Overwrite `app`'s tuned-quota slice (facade epoch reconciliation:
    /// the merged tuner decision re-split across shards).
    fn set_tuned_quota(&self, app: AppId, quota: usize) {
        self.tuned_quotas.lock().insert(app.0, quota);
    }

    /// Charge one frame to `app` bypassing the quota check (soft-mode
    /// borrowing, and rebalancing after a self-eviction uncharged one).
    fn charge_unchecked(&self, app: AppId) {
        if self.quota_applies(app) {
            *self.charges.lock().entry(app.0).or_insert(0) += 1;
        }
    }

    /// Return one charged frame (aborted acquisition, eviction or
    /// invalidation of an owned frame).
    fn uncharge(&self, app: AppId) {
        if self.quota_applies(app) {
            if let Some(n) = self.charges.lock().get_mut(&app.0) {
                *n = n.saturating_sub(1);
            }
        }
    }

    /// The quota'd app currently holding the most frames beyond its quota
    /// (soft mode only — strict never lets anyone past it). Ties break
    /// toward the higher app id.
    fn most_over_quota(&self) -> Option<AppId> {
        if self.partitioning.mode != PartitionMode::Soft {
            return None;
        }
        self.most_over_quota_any_mode()
    }

    /// [`BufferManager::most_over_quota`] without the soft-mode gate —
    /// the harvester's victim preference. Measured against *effective*
    /// (tuned) quotas; after a quota transfer the app whose quota just
    /// shrank is over it and becomes the preferred reclaim source, which
    /// is exactly how tuner decisions take physical effect.
    fn most_over_quota_any_mode(&self) -> Option<AppId> {
        if self.partitioning.mode == PartitionMode::Shared {
            return None;
        }
        // Resolve every effective quota under one tuned-lock acquisition
        // (this runs once per harvest-loop iteration — per-app `quota_of`
        // calls would take the lock k times).
        let quotas: Vec<(u32, usize)> = {
            let tuned = self.tuned_quotas.lock();
            self.partitioning
                .quotas
                .iter()
                .map(|(&id, &q)| (id, tuned.get(&id).copied().unwrap_or(q)))
                .collect()
        };
        let c = self.charges.lock();
        quotas
            .into_iter()
            .filter_map(|(id, q)| {
                let n = c.get(&id).copied().unwrap_or(0);
                (n > q).then(|| (n - q, id))
            })
            .max()
            .map(|(_, id)| AppId(id))
    }

    /// Take a frame from the free list or evict one, on behalf of `app`
    /// and subject to its quota. Returns the frame index and, when a dirty
    /// frame had to be sacrificed, its flush snapshot.
    ///
    /// Enforcement order (the partitioning subsystem's core rule): an
    /// over-quota app makes room **inside its own partition first** —
    /// candidates are drawn from its own resident frames via the policy's
    /// owner-filtered scan — and only soft mode may then fall back to
    /// borrowing (free frames, then the victim-agnostic scan). An
    /// under-quota app with a full pool reclaims from the most over-quota
    /// borrower before disturbing anyone else.
    fn acquire_frame_for(
        &self,
        app: AppId,
        allow_dirty_eviction: bool,
    ) -> Option<(u32, Option<FlushItem>)> {
        match self.admit(app) {
            admission @ (Admission::Unlimited | Admission::Granted) => {
                if let Some(idx) = self.free.lock().pop() {
                    return Some((idx, None));
                }
                // Soft mode: pull borrowed frames back before the
                // victim-agnostic scan touches well-behaved tenants.
                if let Some(borrower) = self.most_over_quota() {
                    if let Some(got) = self.evict_one_owned(allow_dirty_eviction, Some(borrower)) {
                        return Some(got);
                    }
                }
                match self.evict_one_owned(allow_dirty_eviction, None) {
                    Some(got) => Some(got),
                    None => {
                        if admission == Admission::Granted {
                            self.uncharge(app);
                        }
                        None
                    }
                }
            }
            Admission::OverQuota => {
                if self.partitioning.mode == PartitionMode::Soft {
                    // Borrow idle capacity before cannibalizing our own
                    // partition.
                    if let Some(idx) = self.free.lock().pop() {
                        self.charge_unchecked(app);
                        return Some((idx, None));
                    }
                }
                // Feed on our own partition: owner-filtered candidates.
                if let Some(got) = self.evict_one_owned(allow_dirty_eviction, Some(app)) {
                    // The self-eviction uncharged one frame; re-charge it
                    // for the incoming block (net residency unchanged).
                    self.charge_unchecked(app);
                    return Some(got);
                }
                if self.partitioning.mode == PartitionMode::Strict {
                    return None; // hard cap: the insert is denied
                }
                self.charge_unchecked(app);
                match self.evict_one_owned(allow_dirty_eviction, None) {
                    Some(got) => Some(got),
                    None => {
                        self.uncharge(app);
                        None
                    }
                }
            }
        }
    }

    /// Evict one block and return its (now unlinked) frame, optionally
    /// restricted to frames owned by one application (the partition-local
    /// scan). Candidate *ranking* comes from the policy; candidate
    /// *admissibility* (clean pass, dirty allowance, in-flight flushes,
    /// the owner filter) stays with the manager and the shared table. The
    /// owner filter travels as an argument on every `next_candidate` call
    /// — never stored in the policy — so a concurrent scan can interleave
    /// with this one (that was always true of the shared scan cursor) but
    /// can never widen or redirect this scan's partition boundary.
    fn evict_one_owned(
        &self,
        allow_dirty: bool,
        owner: Option<AppId>,
    ) -> Option<(u32, Option<FlushItem>)> {
        // Pass 0: clean victims only (if clean_first). Pass 1: anything
        // (subject to allow_dirty). With the singleton-preserving
        // preference live (and any duplicates known), each cleanliness
        // tier first scans for cluster-duplicated blocks only — a
        // duplicate is cheap to lose, the last cluster-wide copy is not —
        // then falls back to the unrestricted scan. The preference is a
        // manager-side admissibility filter over the policy's own
        // candidate order, so all six policies and the adaptive wrapper
        // compose with it unchanged.
        let clean_passes: &[bool] =
            if self.policy_cfg.clean_first { &[true, false] } else { &[false] };
        let have_dups = self.duplicate_hints.as_ref().is_some_and(|h| !h.lock().is_empty());
        let dup_passes: &[bool] = if have_dups { &[true, false] } else { &[false] };
        for &clean_only in clean_passes {
            for &dup_only in dup_passes {
                {
                    let mut p = self.policy.lock();
                    // Rank over up-to-date metadata: apply every deferred
                    // access before the scan decides a victim order.
                    self.drain_locked(&mut p);
                    p.stats_mut().scans += 1;
                    p.begin_scan();
                }
                let mut visited = 0u64;
                loop {
                    // Leaf lock only while asking; dropped before
                    // bucket/frame.
                    let Some(idx) = self.policy.lock().next_candidate(owner) else {
                        break;
                    };
                    visited += 1;
                    if let Some(got) = self.try_evict_idx(idx, clean_only, allow_dirty, dup_only) {
                        if let Some(o) = &self.obs {
                            o.scan_visits.record(visited);
                            let dirty = got.1.is_some() as u64;
                            o.hub.instant(o.ev_eviction_scan, o.node, 0, visited, dirty);
                        }
                        return Some(got);
                    }
                }
            }
        }
        None
    }

    /// Victim-agnostic eviction (the harvester's path).
    fn evict_one(&self, allow_dirty: bool) -> Option<(u32, Option<FlushItem>)> {
        self.evict_one_owned(allow_dirty, None)
    }

    fn try_evict_idx(
        &self,
        idx: u32,
        clean_only: bool,
        allow_dirty: bool,
        dup_only: bool,
    ) -> Option<(u32, Option<FlushItem>)> {
        // Read the key briefly, then retake in bucket → frame order.
        let key = {
            let f = self.frames[idx as usize].lock();
            match f.key {
                Some(k) => {
                    if f.flushing {
                        return None; // in flight to the iod: untouchable
                    }
                    if clean_only && f.is_dirty() {
                        return None;
                    }
                    if !allow_dirty && f.is_dirty() {
                        return None;
                    }
                    k
                }
                None => return None, // free or being reassigned
            }
        };
        if dup_only && !self.is_duplicate_hint(key) {
            return None; // this pass only sacrifices cluster-duplicated blocks
        }
        let mut bucket = self.buckets[self.bucket_of(&key)].lock();
        let mut f = self.frames[idx as usize].lock();
        if f.key != Some(key) {
            return None; // changed hands meanwhile
        }
        if f.flushing {
            return None;
        }
        if clean_only && f.is_dirty() {
            return None;
        }
        if !allow_dirty && f.is_dirty() {
            return None;
        }
        let flush = if f.is_dirty() {
            self.stats.evictions_dirty.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.evictions_dirty.inc();
            }
            let span = f.dirty;
            Some(FlushItem {
                key,
                home: f.home,
                span,
                data: f.data[span.start as usize..span.end as usize].to_vec(),
            })
        } else {
            self.stats.evictions_clean.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.evictions_clean.inc();
            }
            None
        };
        bucket.retain(|(k, _)| *k != key);
        f.key = None;
        f.valid = Span::EMPTY;
        f.dirty = Span::EMPTY;
        f.in_dirty_list = false;
        drop(f);
        drop(bucket);
        let owner = {
            let mut p = self.policy.lock();
            if flush.is_some() {
                p.stats_mut().evictions_dirty += 1;
            } else {
                p.stats_mut().evictions_clean += 1;
            }
            let owner = p.owner_of(idx);
            p.note_app_eviction(owner);
            p.on_remove(idx, key.hash());
            owner
        };
        self.uncharge(owner);
        self.note_departure(key);
        Some((idx, flush))
    }

    /// Cooperative bookkeeping for a block leaving this cache (eviction
    /// or invalidation): log it for the module's directory-removal push
    /// and forget any duplicate hint — both advisory, both `None`-gated.
    fn note_departure(&self, key: BlockKey) {
        if let Some(log) = &self.evicted_log {
            log.lock().push(key);
        }
        if let Some(hints) = &self.duplicate_hints {
            hints.lock().remove(&key);
        }
    }

    fn is_duplicate_hint(&self, key: BlockKey) -> bool {
        self.duplicate_hints.as_ref().is_some_and(|h| h.lock().contains(&key))
    }

    /// Cooperative mode: a peer transfer revealed that `key` now lives in
    /// (at least) one other node's cache. Duplicated blocks are preferred
    /// eviction victims under the singleton-preserving preference. No-op
    /// unless singleton preservation is configured.
    pub fn note_duplicate(&self, key: BlockKey) {
        if let Some(hints) = &self.duplicate_hints {
            hints.lock().insert(key);
        }
    }

    /// Blocks currently hinted as cluster-duplicated (diagnostics/tests).
    pub fn duplicate_hint_count(&self) -> usize {
        self.duplicate_hints.as_ref().map_or(0, |h| h.lock().len())
    }

    /// Drain the evicted-key log (cooperative authoritative mode): every
    /// key evicted or invalidated since the last drain, for the module to
    /// turn into directory-removal updates. Empty unless eviction
    /// tracking is configured.
    pub fn take_evicted(&self) -> Vec<BlockKey> {
        match &self.evicted_log {
            Some(log) => std::mem::take(&mut *log.lock()),
            None => Vec::new(),
        }
    }

    fn insert_clean_impl(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
        app: AppId,
    ) -> Option<FlushItem> {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        loop {
            {
                let b = self.buckets[self.bucket_of(&key)].lock();
                if let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) {
                    let mut f = self.frames[idx as usize].lock();
                    if f.key == Some(key) {
                        if f.valid.mergeable(span) {
                            f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                            f.valid = f.valid.merge(span);
                            f.home = home;
                        }
                        drop(f);
                        drop(b);
                        self.note_touch(idx, key, app);
                        return None;
                    }
                }
            }
            let Some((idx, flush)) = self.acquire_frame_for(app, true) else {
                // Cache wedged (all frames contended) or the app's strict
                // quota denied the install; the fetched bytes are simply
                // not cached.
                return None;
            };
            {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                if b.iter().any(|(k, _)| *k == key) {
                    // Someone beat us to it; recycle our frame and merge via
                    // the fast path above.
                    self.push_free(idx);
                    self.uncharge(app);
                    drop(b);
                    if let Some(fl) = flush {
                        return Some(fl);
                    }
                    continue;
                }
                let mut f = self.frames[idx as usize].lock();
                debug_assert!(f.key.is_none());
                f.key = Some(key);
                f.home = home;
                f.valid = span;
                f.dirty = Span::EMPTY;
                f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                f.in_dirty_list = false;
                b.push((key, idx));
            }
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            self.note_insert(idx, key, app);
            return flush;
        }
    }

    fn write_impl(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
        app: AppId,
    ) -> WriteOutcome {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        loop {
            {
                let b = self.buckets[self.bucket_of(&key)].lock();
                if let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) {
                    let mut f = self.frames[idx as usize].lock();
                    if f.key == Some(key) {
                        if !f.valid.mergeable(span) {
                            // Disjoint sub-block writes would leave an
                            // unknown gap; refuse rather than flush garbage.
                            self.stats.writes_passthrough.fetch_add(1, Ordering::Relaxed);
                            return WriteOutcome::PassThrough;
                        }
                        f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                        f.valid = f.valid.merge(span);
                        // Dirty spans may be disjoint (e.g. two sub-block
                        // writes into a fully-fetched block); the hull is
                        // safe because every gap byte is valid.
                        debug_assert!(f.valid.covers(f.dirty.hull(span)));
                        f.dirty = f.dirty.hull(span);
                        f.home = home;
                        let need_dirty_link = !f.in_dirty_list;
                        f.in_dirty_list = true;
                        drop(f);
                        drop(b);
                        if need_dirty_link {
                            self.dirty.lock().push_back(idx);
                        }
                        self.note_touch(idx, key, app);
                        self.stats.writes_absorbed.fetch_add(1, Ordering::Relaxed);
                        return WriteOutcome::Absorbed;
                    }
                }
            }
            // Need a frame, but never sacrifice dirty data for new writes
            // (the paper's write-blocking point) — and never let a write
            // push its app over a strict quota.
            let Some((idx, flush)) = self.acquire_frame_for(app, false) else {
                self.stats.writes_passthrough.fetch_add(1, Ordering::Relaxed);
                return WriteOutcome::PassThrough;
            };
            debug_assert!(flush.is_none(), "clean eviction cannot yield a flush");
            {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                if b.iter().any(|(k, _)| *k == key) {
                    self.push_free(idx);
                    self.uncharge(app);
                    continue;
                }
                let mut f = self.frames[idx as usize].lock();
                debug_assert!(f.key.is_none());
                f.key = Some(key);
                f.home = home;
                f.valid = span;
                f.dirty = span;
                f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                f.in_dirty_list = true;
                b.push((key, idx));
            }
            self.dirty.lock().push_back(idx);
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            self.stats.writes_absorbed.fetch_add(1, Ordering::Relaxed);
            self.note_insert(idx, key, app);
            return WriteOutcome::Absorbed;
        }
    }

    /// Overwrite `span` of `key` *only if resident and mergeable* — no
    /// allocation. Used by sync-writes: the cached copy is refreshed with
    /// the propagated data and, since the server now holds these bytes, any
    /// dirty state covered by the span is cleared. Returns whether the
    /// block was updated.
    pub fn update_if_present(&self, key: BlockKey, span: Span, bytes: &[u8]) -> bool {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) else {
                return false;
            };
            let mut f = self.frames[idx as usize].lock();
            if f.key != Some(key) || !f.valid.mergeable(span) {
                return false;
            }
            f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
            f.valid = f.valid.merge(span);
            if span.covers(f.dirty) {
                f.dirty = Span::EMPTY;
                f.in_dirty_list = false;
            }
            idx
        };
        self.note_touch(idx, key, AppId::UNKNOWN);
        true
    }

    /// Collect up to `max` dirty blocks (oldest-dirtied first) and mark
    /// them *in flight*: the frames stay dirty and unevictable until the
    /// caller reports the write-back acknowledged via
    /// [`BufferManager::flush_complete`]. Writes landing during the flight
    /// merge into the frame and re-queue it for a follow-up flush.
    pub fn take_dirty(&self, max: usize) -> Vec<FlushItem> {
        let mut out = Vec::new();
        let mut taken: Vec<u32> = Vec::new();
        let mut requeue: Vec<u32> = Vec::new();
        while out.len() < max {
            let idx = {
                let mut d = self.dirty.lock();
                match d.pop_front() {
                    Some(i) => i,
                    None => break,
                }
            };
            let mut f = self.frames[idx as usize].lock();
            if !f.in_dirty_list || f.key.is_none() || !f.is_dirty() {
                f.in_dirty_list = false;
                continue; // stale queue entry
            }
            if f.flushing {
                // Re-dirtied while a flush is already in flight: leave it
                // queued for the next round.
                requeue.push(idx);
                continue;
            }
            let span = f.dirty;
            out.push(FlushItem {
                key: f.key.unwrap(),
                home: f.home,
                span,
                data: f.data[span.start as usize..span.end as usize].to_vec(),
            });
            f.flushing = true;
            f.in_dirty_list = false;
            taken.push(idx);
        }
        if !requeue.is_empty() {
            let mut d = self.dirty.lock();
            for idx in requeue.into_iter().rev() {
                d.push_front(idx);
            }
        }
        if !taken.is_empty() {
            // Pin in-flight frames so no policy offers them as candidates.
            let mut p = self.policy.lock();
            for idx in taken {
                p.set_pinned(idx, true);
            }
        }
        self.stats.flush_blocks.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The iod acknowledged the write-back of `key`'s `span`: the frame
    /// becomes clean (and evictable) unless new writes re-dirtied it during
    /// the flight, in which case the merged span stays queued for the next
    /// flush round.
    pub fn flush_complete(&self, key: BlockKey, span: Span) {
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) else {
                return; // invalidated or evicted during the flight
            };
            let mut f = self.frames[idx as usize].lock();
            if f.key != Some(key) {
                return;
            }
            f.flushing = false;
            if !f.in_dirty_list && f.dirty == span {
                // No writes landed during the flight: clean.
                f.dirty = Span::EMPTY;
            }
            // Otherwise the (merged) dirty span is already queued for
            // re-flush.
            idx
        };
        self.policy.lock().set_pinned(idx, false);
    }

    /// Drop cached copies of the listed blocks (sync-write coherence).
    /// Dirty copies are discarded — the sync-writer's data supersedes them.
    pub fn invalidate<I: IntoIterator<Item = BlockKey>>(&self, keys: I) -> (u64, u64) {
        let mut dropped = 0;
        let mut dropped_dirty = 0;
        for key in keys {
            let idx = {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                let Some(pos) = b.iter().position(|(k, _)| *k == key) else {
                    continue;
                };
                let (_, idx) = b.remove(pos);
                let mut f = self.frames[idx as usize].lock();
                debug_assert_eq!(f.key, Some(key));
                if f.is_dirty() {
                    dropped_dirty += 1;
                }
                f.key = None;
                f.valid = Span::EMPTY;
                f.dirty = Span::EMPTY;
                f.in_dirty_list = false;
                f.flushing = false;
                idx
            };
            let owner = {
                let mut p = self.policy.lock();
                // Pending accesses to this block must land before its
                // removal (the eager path applied them at access time).
                self.drain_locked(&mut p);
                let owner = p.owner_of(idx);
                // Coherence drop, not capacity pressure: meta-policies
                // keep it out of their refault memory.
                p.on_remove_invalidated(idx, key.hash());
                owner
            };
            self.uncharge(owner);
            self.push_free(idx);
            self.note_departure(key);
            dropped += 1;
        }
        self.stats.invalidated.fetch_add(dropped, Ordering::Relaxed);
        self.stats.invalidated_dirty.fetch_add(dropped_dirty, Ordering::Relaxed);
        (dropped, dropped_dirty)
    }

    /// Has the free list fallen below the low watermark? (the harvester's
    /// wake-up condition).
    pub fn needs_harvest(&self) -> bool {
        self.free_frames() < self.low_watermark
    }

    /// Harvester sweep: free clean blocks until the high watermark is
    /// reached; dirty blocks encountered are snapshot for urgent flushing
    /// (they become clean and harvestable next sweep).
    ///
    /// The sweep is **quota-aware**: while any application holds more
    /// frames than its (effective) quota, candidates are drawn from the
    /// most over-quota owner first via the policy's owner-filtered scan —
    /// an idle tenant is no longer drained below its quota just because a
    /// busy neighbor filled the pool. Only when no over-quota owner has an
    /// evictable frame does the sweep fall back to the victim-agnostic
    /// scan.
    pub fn harvest(&self) -> Vec<FlushItem> {
        let mut flush = Vec::new();
        let mut guard = 0;
        while self.free_frames() < self.high_watermark && guard < 2 * self.capacity {
            guard += 1;
            let evicted = self
                .most_over_quota_any_mode()
                .and_then(|borrower| self.evict_one_owned(false, Some(borrower)))
                .or_else(|| self.evict_one(false));
            match evicted {
                Some((idx, fl)) => {
                    debug_assert!(fl.is_none());
                    self.push_free(idx);
                }
                None => {
                    // Only dirty frames left: flush a batch and stop; the
                    // flusher acknowledgments make them evictable later.
                    flush.extend(self.take_dirty(self.high_watermark - self.free_frames()));
                    break;
                }
            }
        }
        flush
    }

    /// Keys currently resident (diagnostics/tests; O(capacity)).
    fn resident_keys(&self) -> Vec<BlockKey> {
        let mut out = Vec::new();
        for b in &self.buckets {
            for (k, _) in b.lock().iter() {
                out.push(*k);
            }
        }
        out.sort_unstable();
        out
    }
}

impl BufferManager {
    /// Start building a manager over `capacity` cache-block frames.
    pub fn builder(capacity: usize) -> BufferManagerBuilder {
        BufferManagerBuilder::new(capacity)
    }

    /// Total frames across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured replacement policy (for the adaptive meta-policy
    /// see [`live_policy_kind`](Self::live_policy_kind)).
    pub fn policy(&self) -> EvictPolicy {
        self.policy_cfg
    }

    /// The *global* partition configuration (each shard enforces its
    /// per-shard split of these quotas).
    pub fn partitioning(&self) -> &PartitionConfig {
        &self.partitioning
    }

    /// Number of independent shards (1 = the historical single pool).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_idx_of(&self, key: &BlockKey) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            // High hash bits: the in-shard bucket index consumes the low
            // bits, so shard routing and bucket placement stay
            // independent (a shard's buckets fill evenly).
            (key.hash() >> 32) as usize % self.shards.len()
        }
    }

    #[inline]
    fn shard_of(&self, key: &BlockKey) -> &Shard {
        &self.shards[self.shard_idx_of(key)]
    }

    pub fn free_frames(&self) -> usize {
        self.shards.iter().map(|s| s.free_frames()).sum()
    }

    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.resident()).sum()
    }

    pub fn dirty_queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.dirty_queue_len()).sum()
    }

    /// Frames currently resident in each shard (index = shard id) — the
    /// balance view behind the `shard.<i>.occupancy` gauges.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.resident()).collect()
    }

    /// Lifetime evictions (clean + dirty) per shard.
    pub fn shard_evictions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| {
                let st = s.stats();
                st.evictions_clean + st.evictions_dirty
            })
            .collect()
    }

    /// The replacement policy's own event ledger, summed across shards.
    /// Drains deferred events first, so a snapshot never under-reports
    /// traffic that already happened.
    pub fn policy_stats(&self) -> PolicyStats {
        let mut acc = self.shards[0].policy_stats();
        for s in &self.shards[1..] {
            acc.merge(&s.policy_stats());
        }
        acc
    }

    /// The adaptive meta-policy's observability ledger; `None` when a
    /// static policy runs. Coordinated decisions are recorded identically
    /// in every shard, so shard 0's switch/quota logs already *are* the
    /// global logs — only the per-shard ghost traffic ledgers need
    /// summing (naively merging whole stats would multiply every log
    /// entry by the shard count).
    pub fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        let mut base = self.shards[0].adaptive_stats()?;
        for s in &self.shards[1..] {
            if let Some(st) = s.adaptive_stats() {
                for g in st.ghost_rates {
                    match base.ghost_rates.iter_mut().find(|b| b.kind == g.kind) {
                        Some(b) => {
                            b.hits += g.hits;
                            b.misses += g.misses;
                        }
                        None => base.ghost_rates.push(g),
                    }
                }
            }
        }
        Some(base)
    }

    /// The [`PolicyKind`] currently ranking candidates — for a static
    /// policy the configured kind, for the adaptive meta-policy whichever
    /// candidate is live right now (all shards switch in lockstep, so
    /// shard 0 speaks for everyone).
    pub fn live_policy_kind(&self) -> PolicyKind {
        self.shards[0].live_policy_kind()
    }

    /// Per-application occupancy and attributed traffic, merged across
    /// shards (ascending by app id; apps appear once they have touched
    /// the cache anywhere).
    pub fn app_usage(&self) -> Vec<(AppId, AppUsage)> {
        if self.shards.len() == 1 {
            return self.shards[0].app_usage();
        }
        let mut merged: BTreeMap<u32, AppUsage> = BTreeMap::new();
        for s in self.shards.iter() {
            for (app, u) in s.app_usage() {
                let e = merged.entry(app.0).or_default();
                e.resident += u.resident;
                e.hits += u.hits;
                e.misses += u.misses;
                e.evictions += u.evictions;
            }
        }
        merged.into_iter().map(|(id, u)| (AppId(id), u)).collect()
    }

    /// Frames currently owned (installed) by `app`, across all shards.
    pub fn resident_of(&self, app: AppId) -> usize {
        self.shards.iter().map(|s| s.resident_of(app)).sum()
    }

    /// Snapshot of the manager's counters, summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut acc = CacheStats::default();
        for s in self.shards.iter() {
            let st = s.stats();
            acc.hits += st.hits;
            acc.misses += st.misses;
            acc.insertions += st.insertions;
            acc.writes_absorbed += st.writes_absorbed;
            acc.writes_passthrough += st.writes_passthrough;
            acc.evictions_clean += st.evictions_clean;
            acc.evictions_dirty += st.evictions_dirty;
            acc.flush_blocks += st.flush_blocks;
            acc.invalidated += st.invalidated;
            acc.invalidated_dirty += st.invalidated_dirty;
        }
        acc
    }

    /// Times any shard's access-event ring refused a push (see the shard
    /// docs: nothing is lost, each is a lock-convoy window).
    pub fn event_ring_overflows(&self) -> u64 {
        self.shards.iter().map(|s| s.event_ring_overflows()).sum()
    }

    /// `app`'s *global* effective quota — the sum of its per-shard
    /// slices (tuned overlays included) — or `None` when unpartitioned.
    pub fn quota_of(&self, app: AppId) -> Option<usize> {
        let mut total = None;
        for s in self.shards.iter() {
            if let Some(q) = s.quota_of(app) {
                *total.get_or_insert(0) += q;
            }
        }
        total
    }

    /// Bring the hub's deferred metric counters up to date and refresh
    /// the per-shard `shard.<i>.occupancy` / `shard.<i>.evictions`
    /// balance gauges. No-op without a wired hub.
    pub fn obs_flush(&self) {
        for s in self.shards.iter() {
            s.obs_flush();
        }
        self.publish_shard_gauges();
    }

    fn publish_shard_gauges(&self) {
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(o) = &s.obs {
                let reg = o.hub.registry();
                reg.gauge(&format!("shard.{i}.occupancy")).set(s.resident() as u64);
                let st = s.stats();
                reg.gauge(&format!("shard.{i}.evictions"))
                    .set(st.evictions_clean + st.evictions_dirty);
            }
        }
    }

    /// The canonical access entry point: route to the owning shard, run
    /// the strict-quota spill protocol if the install would be denied,
    /// delegate, then give a due coordinated epoch boundary a chance to
    /// run.
    pub fn access(&self, key: BlockKey, req: Access<'_>) -> AccessOutcome {
        let shard = self.shard_of(&key);
        if self.shards.len() > 1
            && matches!(req.kind, AccessKind::Write { .. } | AccessKind::InsertClean { .. })
        {
            self.pre_admit_spill(shard, &key, req.app);
        }
        let out = shard.access(key, req);
        self.maybe_epoch();
        out
    }

    /// Strict-quota spill (N > 1): an app at its per-shard quota here may
    /// have idle quota on a sibling shard (hash skew); move one *quota
    /// unit* — never a frame — from an under-used sibling to this shard
    /// so the install admits. Decrement-before-increment keeps the global
    /// sum of per-shard quotas ≤ the configured quota at every instant,
    /// so the strict bound is never violated, only redistributed.
    fn pre_admit_spill(&self, home: &Shard, key: &BlockKey, app: AppId) {
        if self.partitioning.mode != PartitionMode::Strict
            || app == AppId::UNKNOWN
            || !self.partitioning.quotas.contains_key(&app.0)
        {
            return;
        }
        // A resident key merges in place (no new frame, no charge); only
        // a genuinely new install can be quota-denied.
        if home.contains(*key) || !home.at_quota(app) {
            return;
        }
        for s in self.shards.iter() {
            if std::ptr::eq(s, home) {
                continue;
            }
            if s.lend_quota_unit(app) {
                home.receive_quota_unit(app);
                return;
            }
        }
    }

    /// [`try_read_by`](Self::try_read_by) with an unattributed accessor.
    pub fn try_read(&self, key: BlockKey, span: Span, out: &mut [u8]) -> bool {
        self.try_read_by(key, span, out, AppId::UNKNOWN)
    }

    /// Try to serve `span` of `key` into `out` (`out.len() == span.len()`)
    /// on behalf of application `app`. Counts a hit (and refreshes
    /// recency) or a miss. Wrapper over [`access`](Self::access).
    pub fn try_read_by(&self, key: BlockKey, span: Span, out: &mut [u8], app: AppId) -> bool {
        self.access(key, Access { app, kind: AccessKind::Read { span, out } }).is_hit()
    }

    /// [`probe_by`](Self::probe_by) with an unattributed accessor.
    pub fn probe(&self, key: BlockKey, span: Span) -> bool {
        self.probe_by(key, span, AppId::UNKNOWN)
    }

    /// Hit check without copying (used to plan request splitting) on
    /// behalf of `app`. Both branches run the same accounting as
    /// [`try_read_by`](Self::try_read_by) — global and policy hit/miss
    /// counters, the per-app ledger, the epoch clock — except that, like
    /// the seed implementation, a probe hit does **not** refresh recency
    /// (planning a split is not a use of the block). Before PR 5 the hit
    /// branch skipped the epoch clock and the app ledger while the miss
    /// branch counted both, so probe-heavy workloads skewed epoch length
    /// and per-app hit ratios. Wrapper over [`access`](Self::access).
    pub fn probe_by(&self, key: BlockKey, span: Span, app: AppId) -> bool {
        self.access(key, Access { app, kind: AccessKind::Probe { span } }).is_hit()
    }

    /// [`insert_clean_by`](Self::insert_clean_by) with an unattributed
    /// accessor.
    pub fn insert_clean(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
    ) -> Option<FlushItem> {
        self.insert_clean_by(key, home, span, bytes, AppId::UNKNOWN)
    }

    /// Install fetched (clean) bytes for `key` on behalf of `app`. Fetches
    /// are whole blocks, so `span` is normally [`Span::FULL`]. Returns a
    /// flush snapshot if a dirty frame had to be evicted to make room.
    /// Wrapper over [`access`](Self::access).
    pub fn insert_clean_by(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
        app: AppId,
    ) -> Option<FlushItem> {
        match self.access(key, Access { app, kind: AccessKind::InsertClean { home, span, bytes } })
        {
            AccessOutcome::Inserted(fl) => fl,
            _ => unreachable!("InsertClean yields Inserted"),
        }
    }

    /// [`write_by`](Self::write_by) with an unattributed accessor.
    pub fn write(&self, key: BlockKey, home: NodeId, span: Span, bytes: &[u8]) -> WriteOutcome {
        self.write_by(key, home, span, bytes, AppId::UNKNOWN)
    }

    /// Write-behind absorb of `span` of `key` on behalf of `app`. On
    /// success the block is dirty in cache and the write can be
    /// acknowledged locally. Wrapper over [`access`](Self::access).
    pub fn write_by(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
        app: AppId,
    ) -> WriteOutcome {
        match self.access(key, Access { app, kind: AccessKind::Write { home, span, bytes } }) {
            AccessOutcome::Write(out) => out,
            _ => unreachable!("Write yields Write"),
        }
    }

    /// Attribute an access to `app` without copying data — used by the
    /// cache module when one fetch satisfies waiters from *several*
    /// applications, so sharing-aware policies see every referent.
    pub fn note_access(&self, key: BlockKey, app: AppId) {
        self.shard_of(&key).note_access(key, app);
        self.maybe_epoch();
    }

    /// Look up `key` in the hash table (no data copy, no stats). Mostly
    /// for tests and diagnostics.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.shard_of(&key).contains(key)
    }

    /// Copy `span` of `key` into `out` if it is resident and valid,
    /// **without** touching any accounting: no hit/miss counters, no
    /// recency refresh, no per-app ledger, no epoch tick. This is the
    /// read the cooperative tier serves *peer* fetches with — remote
    /// traffic must not distort this node's local hit ratio or promote
    /// blocks its own applications are not using.
    pub fn read_resident(&self, key: BlockKey, span: Span, out: &mut [u8]) -> bool {
        self.shard_of(&key).read_resident(key, span, out)
    }

    /// Overwrite `span` of `key` in place if resident (sync-write
    /// propagation); see the shard implementation for semantics.
    pub fn update_if_present(&self, key: BlockKey, span: Span, bytes: &[u8]) -> bool {
        let updated = self.shard_of(&key).update_if_present(key, span, bytes);
        self.maybe_epoch();
        updated
    }

    /// Snapshot up to `max` dirty blocks for write-back. Each shard's
    /// queue preserves its own FIFO dirtying order; shards are drained in
    /// index order, so global ordering across shards is approximate —
    /// staleness bounds still hold per shard.
    pub fn take_dirty(&self, max: usize) -> Vec<FlushItem> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            if out.len() >= max {
                break;
            }
            out.extend(s.take_dirty(max - out.len()));
        }
        out
    }

    /// The iod acknowledged the write-back of `key`'s `span`; see the
    /// shard implementation for re-dirty semantics.
    pub fn flush_complete(&self, key: BlockKey, span: Span) {
        self.shard_of(&key).flush_complete(key, span);
    }

    /// Drop cached copies of the listed blocks (sync-write coherence).
    /// Dirty copies are discarded — the sync-writer's data supersedes
    /// them. Returns `(dropped, dropped_dirty)` totals.
    pub fn invalidate<I: IntoIterator<Item = BlockKey>>(&self, keys: I) -> (u64, u64) {
        let mut dropped = 0;
        let mut dropped_dirty = 0;
        for key in keys {
            let (d, dd) = self.shard_of(&key).invalidate([key]);
            dropped += d;
            dropped_dirty += dd;
        }
        (dropped, dropped_dirty)
    }

    /// Has any shard's free list fallen below its low watermark? (the
    /// harvester's wake-up condition — per-shard, because one full shard
    /// stalls *its* installs no matter how empty its siblings are).
    pub fn needs_harvest(&self) -> bool {
        self.shards.iter().any(|s| s.needs_harvest())
    }

    /// Harvester sweep over every shard (each sweeps itself to its own
    /// high watermark; see the shard implementation for the quota-aware
    /// candidate order).
    pub fn harvest(&self) -> Vec<FlushItem> {
        self.shards.iter().flat_map(|s| s.harvest()).collect()
    }

    /// Keys currently resident (diagnostics/tests; O(capacity)).
    pub fn resident_keys(&self) -> Vec<BlockKey> {
        let mut out: Vec<BlockKey> = self.shards.iter().flat_map(|s| s.resident_keys()).collect();
        out.sort_unstable();
        out
    }

    /// Record that `key` is believed duplicated in a peer's cache
    /// (singleton-preserving cooperative mode; no-op otherwise).
    pub fn note_duplicate(&self, key: BlockKey) {
        self.shard_of(&key).note_duplicate(key);
    }

    /// Blocks currently hinted as duplicated cluster-wide.
    pub fn duplicate_hint_count(&self) -> usize {
        self.shards.iter().map(|s| s.duplicate_hint_count()).sum()
    }

    /// Drain the evicted/invalidated key log (cooperative authoritative
    /// mode; empty otherwise).
    pub fn take_evicted(&self) -> Vec<BlockKey> {
        self.shards.iter().flat_map(|s| s.take_evicted()).collect()
    }

    /// Run any due coordinated epoch boundary (N > 1 only; with a single
    /// shard the shard runs its own exact in-shard epoch path). The CAS
    /// gate admits exactly one thread per boundary; latecomers return
    /// immediately — the boundary they observed due is already being
    /// handled.
    fn maybe_epoch(&self) {
        if self.shards.len() == 1 || self.epoch_accesses == 0 {
            return;
        }
        let ea = self.epoch_accesses as u64;
        loop {
            let marks = self.epoch_marks.load(Ordering::Acquire);
            if self.epoch_clock.load(Ordering::Relaxed) < (marks + 1) * ea {
                return;
            }
            if self
                .epoch_gate
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
            // Re-check under the gate: the previous holder may have run
            // the boundary we saw due.
            let marks = self.epoch_marks.load(Ordering::Relaxed);
            if self.epoch_clock.load(Ordering::Relaxed) >= (marks + 1) * ea {
                self.run_epoch_boundary(marks + 1);
                self.epoch_marks.store(marks + 1, Ordering::Release);
            }
            self.epoch_gate.store(false, Ordering::Release);
        }
    }

    /// One coordinated cross-shard epoch boundary.
    ///
    /// Adaptive: collect each shard's [`EpochObservation`], merge the
    /// ghost and refault ledgers, make ONE switch/quota decision over the
    /// merged evidence with the same shared rules the single-shard path
    /// uses (`kcache-adaptive`'s `decide_switch` / `decide_quota_move`),
    /// and push the identical [`EpochDirective`] into every shard — a
    /// switch therefore migrates all shards within one boundary and no
    /// shard can disagree about the live policy. A quota transfer is
    /// validated globally (the same backstop rules as the in-shard path)
    /// and re-split across shards.
    ///
    /// Static: policies age independently — each shard runs its own
    /// local tick (`SharingAware` referent decay etc.); there is no
    /// shared decision to coordinate.
    fn run_epoch_boundary(&self, epoch_n: u64) {
        match &self.adaptive_cfg {
            Some(cfg) => {
                let mut merged: Option<EpochObservation> = None;
                for s in self.shards.iter() {
                    if let Some(obs) = s.epoch_observe() {
                        match &mut merged {
                            Some(m) => m.merge(&obs),
                            None => merged = Some(obs),
                        }
                    }
                }
                let Some(merged) = merged else { return };
                let live = merged.live.unwrap_or(self.policy_cfg.kind);
                let switch_to = decide_switch(&merged.ghost_epoch, live, cfg.hysteresis);
                let mut quota_move = None;
                let mut new_quotas: Option<[(AppId, usize); 2]> = None;
                if cfg.quota_tuning && self.partitioning.mode != PartitionMode::Shared {
                    let global_quotas: Vec<(AppId, usize)> = self
                        .partitioning
                        .quotas
                        .keys()
                        .filter_map(|&id| self.quota_of(AppId(id)).map(|q| (AppId(id), q)))
                        .collect();
                    if let Some(mv) = decide_quota_move(
                        &global_quotas,
                        &merged.refaults,
                        self.capacity,
                        cfg.quota_step,
                        cfg.quota_floor.max(1),
                    ) {
                        // The same backstop validation the in-shard path
                        // applies (all-or-nothing: a half-applied pair
                        // would leak quota).
                        let valid = [(mv.winner, mv.winner_quota), (mv.loser, mv.loser_quota)]
                            .iter()
                            .all(|&(app, q)| {
                                app != AppId::UNKNOWN
                                    && q >= 1
                                    && q <= self.capacity
                                    && self.partitioning.quotas.contains_key(&app.0)
                                    && (q >= self.quota_floor
                                        || self.quota_of(app).is_some_and(|cur| q >= cur))
                            });
                        if valid {
                            quota_move = Some((
                                mv.loser,
                                mv.winner,
                                mv.frames,
                                mv.loser_refaults,
                                mv.winner_refaults,
                            ));
                            new_quotas =
                                Some([(mv.winner, mv.winner_quota), (mv.loser, mv.loser_quota)]);
                        }
                    }
                }
                let directive = EpochDirective { switch_to, quota_move };
                for s in self.shards.iter() {
                    s.epoch_apply_directive(&directive);
                }
                if let Some(pairs) = new_quotas {
                    for (app, q) in pairs {
                        let split = split_units(q, self.shards.len());
                        for (s, &slice) in self.shards.iter().zip(&split) {
                            s.set_tuned_quota(app, slice);
                        }
                    }
                }
            }
            None => {
                for s in self.shards.iter() {
                    s.epoch_tick_local();
                }
            }
        }
        // Observability: one coordinated mark with *merged* cross-shard
        // views (shard 0's hub handles speak for the node), plus the
        // per-shard balance gauges.
        if self.shards[0].obs.is_some() {
            let usage = self.app_usage();
            let quota_gauges: Vec<(AppId, usize)> =
                usage.iter().filter_map(|&(a, _)| self.quota_of(a).map(|q| (a, q))).collect();
            let ast = self.adaptive_stats();
            self.shards[0].obs_epoch_mark(
                epoch_n * self.epoch_accesses as u64,
                &usage,
                &quota_gauges,
                ast.as_ref(),
            );
            self.publish_shard_gauges();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvfs::Fid;

    fn key(b: u64) -> BlockKey {
        BlockKey::new(Fid(1), b)
    }

    fn full_block(fill: u8) -> Vec<u8> {
        vec![fill; CACHE_BLOCK_SIZE]
    }

    fn mgr(cap: usize) -> BufferManager {
        BufferManager::builder(cap).build()
    }

    #[test]
    fn read_miss_then_insert_then_hit() {
        let m = mgr(4);
        let mut buf = vec![0u8; 4096];
        assert!(!m.try_read(key(0), Span::FULL, &mut buf));
        assert!(m.insert_clean(key(0), NodeId(2), Span::FULL, &full_block(7)).is_none());
        assert!(m.try_read(key(0), Span::FULL, &mut buf));
        assert!(buf.iter().all(|&b| b == 7));
        let s = m.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        // The policy's own ledger tracks the same events.
        let ps = m.policy_stats();
        assert_eq!((ps.hits, ps.misses, ps.inserts), (1, 1, 1));
    }

    #[test]
    fn partial_span_reads() {
        let m = mgr(4);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(9));
        let mut buf = vec![0u8; 100];
        assert!(m.try_read(key(0), Span::new(500, 600), &mut buf));
        assert!(buf.iter().all(|&b| b == 9));
    }

    #[test]
    fn partially_valid_block_serves_only_valid_span() {
        let m = mgr(4);
        // Absorb a sub-block write: bytes 1000..2000 valid.
        let out = m.write(key(3), NodeId(0), Span::new(1000, 2000), &vec![5u8; 1000]);
        assert_eq!(out, WriteOutcome::Absorbed);
        let mut buf = vec![0u8; 500];
        assert!(m.try_read(key(3), Span::new(1200, 1700), &mut buf));
        assert!(buf.iter().all(|&b| b == 5));
        let mut buf2 = vec![0u8; 100];
        assert!(!m.try_read(key(3), Span::new(0, 100), &mut buf2), "invalid span must miss");
    }

    #[test]
    fn eviction_prefers_clean_blocks() {
        let m = mgr(3);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(0));
        assert_eq!(m.write(key(1), NodeId(0), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        m.insert_clean(key(2), NodeId(0), Span::FULL, &full_block(2));
        // Cache full: 0 and 2 clean, 1 dirty. Inserting 3 must evict a clean
        // block, never the dirty one.
        let fl = m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(3));
        assert!(fl.is_none(), "clean eviction expected, got flush {:?}", fl);
        assert!(m.contains(key(1)), "dirty block must survive");
        assert_eq!(m.stats().evictions_clean, 1);
        assert_eq!(m.stats().evictions_dirty, 0);
        assert_eq!(m.policy_stats().evictions_clean, 1);
    }

    #[test]
    fn insert_evicts_dirty_as_last_resort_and_returns_flush() {
        let m = mgr(2);
        assert_eq!(m.write(key(0), NodeId(4), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        assert_eq!(m.write(key(1), NodeId(4), Span::FULL, &full_block(2)), WriteOutcome::Absorbed);
        let fl = m.insert_clean(key(2), NodeId(0), Span::FULL, &full_block(3));
        let fl = fl.expect("dirty eviction must hand back a flush item");
        assert_eq!(fl.home, NodeId(4));
        assert_eq!(fl.span, Span::FULL);
        assert_eq!(fl.data.len(), CACHE_BLOCK_SIZE);
        assert_eq!(m.stats().evictions_dirty, 1);
        assert_eq!(m.policy_stats().evictions_dirty, 1);
    }

    #[test]
    fn writes_pass_through_when_cache_all_dirty() {
        let m = mgr(2);
        assert_eq!(m.write(key(0), NodeId(0), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        assert_eq!(m.write(key(1), NodeId(0), Span::FULL, &full_block(2)), WriteOutcome::Absorbed);
        assert_eq!(
            m.write(key(2), NodeId(0), Span::FULL, &full_block(3)),
            WriteOutcome::PassThrough,
            "no clean frame to take: write must block/pass through"
        );
        assert_eq!(m.stats().writes_passthrough, 1);
        // A flush snapshot alone does not free space: the frames are in
        // flight until acknowledged.
        let flushed = m.take_dirty(10);
        assert_eq!(flushed.len(), 2);
        assert_eq!(
            m.write(key(2), NodeId(0), Span::FULL, &full_block(3)),
            WriteOutcome::PassThrough,
            "in-flight frames are not evictable"
        );
        for it in &flushed {
            m.flush_complete(it.key, it.span);
        }
        assert_eq!(m.write(key(2), NodeId(0), Span::FULL, &full_block(3)), WriteOutcome::Absorbed);
    }

    #[test]
    fn disjoint_subblock_write_passes_through() {
        let m = mgr(4);
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(0, 100), &[1u8; 100]),
            WriteOutcome::Absorbed
        );
        // Gap between 100 and 2000: absorbing would leave unknowable bytes
        // inside the flush hull.
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(2000, 2100), &[2u8; 100]),
            WriteOutcome::PassThrough
        );
        // Contiguous extension is fine.
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(100, 200), &[3u8; 100]),
            WriteOutcome::Absorbed
        );
    }

    #[test]
    fn take_dirty_snapshots_and_cleans() {
        let m = mgr(4);
        m.write(key(0), NodeId(1), Span::new(0, 1000), &vec![7u8; 1000]);
        m.write(key(1), NodeId(2), Span::FULL, &full_block(8));
        let items = m.take_dirty(10);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].key, key(0), "FIFO: oldest dirty first");
        assert_eq!(items[0].span, Span::new(0, 1000));
        assert!(items[0].data.iter().all(|&b| b == 7));
        assert_eq!(items[1].home, NodeId(2));
        assert!(m.take_dirty(10).is_empty(), "both flights outstanding");
        assert_eq!(m.dirty_queue_len(), 0);
        for it in &items {
            m.flush_complete(it.key, it.span);
        }
        assert!(m.take_dirty(10).is_empty(), "clean after acknowledgment");
    }

    #[test]
    fn redirty_after_flush_requeues() {
        let m = mgr(4);
        m.write(key(0), NodeId(0), Span::FULL, &full_block(1));
        let first = m.take_dirty(10);
        assert_eq!(first.len(), 1);
        // Re-dirty during the flight: queued, but not re-taken until the
        // outstanding flush is acknowledged.
        m.write(key(0), NodeId(0), Span::new(0, 10), &[2u8; 10]);
        assert!(m.take_dirty(10).is_empty(), "flight still outstanding");
        m.flush_complete(first[0].key, first[0].span);
        let items = m.take_dirty(10);
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].span,
            Span::FULL,
            "merged dirty span (flight span ∪ new write) re-flushes"
        );
        m.flush_complete(items[0].key, items[0].span);
        assert!(m.take_dirty(10).is_empty());
    }

    #[test]
    fn invalidate_drops_blocks_even_dirty() {
        let m = mgr(4);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(1));
        m.write(key(1), NodeId(0), Span::FULL, &full_block(2));
        let (dropped, dropped_dirty) = m.invalidate(vec![key(0), key(1), key(9)]);
        assert_eq!(dropped, 2);
        assert_eq!(dropped_dirty, 1);
        assert!(!m.contains(key(0)));
        assert!(!m.contains(key(1)));
        assert_eq!(m.free_frames(), 4);
        // The stale dirty-queue entry must not produce a flush.
        assert!(m.take_dirty(10).is_empty());
        assert_eq!(m.policy_stats().removes, 2);
    }

    #[test]
    fn clock_approximates_lru() {
        let m = mgr(4);
        for i in 0..4 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        // Touch 0..3 except 2; then insert: victim should be an untouched
        // block (2) after ref bits are consumed.
        let mut buf = vec![0u8; 4096];
        for i in [0u64, 1, 3] {
            assert!(m.try_read(key(i), Span::FULL, &mut buf));
        }
        m.insert_clean(key(10), NodeId(0), Span::FULL, &full_block(9));
        assert!(!m.contains(key(2)), "unreferenced block should be the clock victim");
    }

    #[test]
    fn exact_lru_evicts_strictly_oldest() {
        let m = BufferManager::builder(3).policy(EvictPolicy::of(PolicyKind::ExactLru)).build();
        for i in 0..3 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        let mut buf = vec![0u8; 4096];
        assert!(m.try_read(key(0), Span::FULL, &mut buf)); // 1 is now LRU
        m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(3));
        assert!(!m.contains(key(1)));
        assert!(m.contains(key(0)) && m.contains(key(2)) && m.contains(key(3)));
    }

    #[test]
    fn lfu_protects_frequent_blocks() {
        let m = BufferManager::builder(3).policy(EvictPolicy::of(PolicyKind::Lfu)).build();
        for i in 0..3 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        let mut buf = vec![0u8; 4096];
        for _ in 0..5 {
            assert!(m.try_read(key(0), Span::FULL, &mut buf));
            assert!(m.try_read(key(2), Span::FULL, &mut buf));
        }
        assert!(m.try_read(key(1), Span::FULL, &mut buf)); // once: coldest
        m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(3));
        assert!(!m.contains(key(1)), "the least-frequently-used block is the LFU victim");
        assert!(m.contains(key(0)) && m.contains(key(2)));
    }

    #[test]
    fn sharing_aware_protects_multi_app_blocks() {
        let m = BufferManager::builder(3).policy(EvictPolicy::of(PolicyKind::SharingAware)).build();
        let (a, b) = (AppId(0), AppId(1));
        let mut buf = vec![0u8; 4096];
        m.insert_clean_by(key(0), NodeId(0), Span::FULL, &full_block(0), a);
        m.insert_clean_by(key(1), NodeId(0), Span::FULL, &full_block(1), a);
        m.insert_clean_by(key(2), NodeId(0), Span::FULL, &full_block(2), a);
        // Block 0 is referenced by both applications; 1 and 2 stay private
        // and are both touched *after* 0.
        assert!(m.try_read_by(key(0), Span::FULL, &mut buf, b));
        assert!(m.try_read_by(key(1), Span::FULL, &mut buf, a));
        assert!(m.try_read_by(key(2), Span::FULL, &mut buf, a));
        m.insert_clean_by(key(3), NodeId(0), Span::FULL, &full_block(3), b);
        assert!(m.contains(key(0)), "the shared block must be protected");
        assert!(!m.contains(key(1)), "the oldest private block is the victim");
    }

    #[test]
    fn all_policies_run_the_full_lifecycle() {
        for kind in PolicyKind::ALL {
            let m = BufferManager::builder(4).policy(EvictPolicy::of(kind)).build();
            let mut buf = vec![0u8; 4096];
            for i in 0..16 {
                if i % 3 == 0 {
                    assert_eq!(
                        m.write(key(i), NodeId(0), Span::FULL, &full_block(i as u8)),
                        WriteOutcome::Absorbed,
                        "{kind}: write {i}"
                    );
                } else {
                    m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
                }
                let _ = m.try_read(key(i), Span::FULL, &mut buf);
                if i % 5 == 4 {
                    for it in m.take_dirty(4) {
                        m.flush_complete(it.key, it.span);
                    }
                }
            }
            let _ = m.invalidate(m.resident_keys());
            assert_eq!(m.free_frames(), 4, "{kind}: frames leaked");
            let ps = m.policy_stats();
            assert_eq!(ps.inserts, ps.removes, "{kind}: policy residency ledger unbalanced");
        }
    }

    #[test]
    fn harvest_reaches_high_watermark() {
        let m = BufferManager::builder(10).watermarks(2, 5).build();
        for i in 0..10 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(0));
        }
        assert_eq!(m.free_frames(), 0);
        assert!(m.needs_harvest());
        let flush = m.harvest();
        assert!(flush.is_empty(), "all clean: nothing to flush");
        assert!(m.free_frames() >= 5, "free {} below high watermark", m.free_frames());
        assert!(!m.needs_harvest());
    }

    #[test]
    fn harvest_flushes_dirty_when_no_clean_left() {
        let m = BufferManager::builder(4).watermarks(2, 3).build();
        for i in 0..4 {
            m.write(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        let flush = m.harvest();
        assert!(!flush.is_empty(), "harvester must push dirty blocks to the flusher");
        // Blocks stay resident and in flight; once the flush is
        // acknowledged a second harvest can free them.
        for it in &flush {
            m.flush_complete(it.key, it.span);
        }
        let flush2 = m.harvest();
        assert!(flush2.is_empty());
        assert!(m.free_frames() >= 3);
    }

    #[test]
    fn resident_keys_lists_contents() {
        let m = mgr(4);
        m.insert_clean(key(5), NodeId(0), Span::FULL, &full_block(0));
        m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(0));
        assert_eq!(m.resident_keys(), vec![key(3), key(5)]);
    }

    fn strict_mgr(cap: usize, quotas: &[(u32, usize)]) -> BufferManager {
        BufferManager::builder(cap)
            .watermarks(0, cap)
            .partitioning(crate::config::PartitionConfig::strict(quotas.iter().copied()))
            .build()
    }

    #[test]
    fn strict_quota_caps_residency() {
        let m = strict_mgr(8, &[(0, 3)]);
        let a = AppId(0);
        for i in 0..6 {
            m.insert_clean_by(key(i), NodeId(0), Span::FULL, &full_block(i as u8), a);
            assert!(m.resident_of(a) <= 3, "app 0 exceeded its quota at insert {i}");
        }
        assert_eq!(m.resident_of(a), 3);
        // The app's newest inserts displaced its own oldest blocks; the
        // rest of the pool stayed free.
        assert_eq!(m.free_frames(), 5, "strict quota must not touch the rest of the pool");
        let evictions = m.app_usage().iter().find(|(id, _)| *id == a).unwrap().1.evictions;
        assert_eq!(evictions, 3, "over-quota inserts evict the app's own frames");
    }

    #[test]
    fn strict_quota_protects_other_apps_frames() {
        let (a, b) = (AppId(0), AppId(1));
        let m = strict_mgr(6, &[(0, 2), (1, 4)]);
        for i in 0..4 {
            m.insert_clean_by(key(100 + i), NodeId(0), Span::FULL, &full_block(1), b);
        }
        // The pool is now 4/6 used by b. a churns through many blocks: it
        // may never hold more than 2 frames and must never evict b.
        for i in 0..10 {
            m.insert_clean_by(key(i), NodeId(0), Span::FULL, &full_block(0), a);
            assert!(m.resident_of(a) <= 2);
        }
        assert_eq!(m.resident_of(b), 4, "the victim's frames must all survive");
        for i in 0..4 {
            assert!(m.contains(key(100 + i)), "victim block {i} was evicted");
        }
    }

    #[test]
    fn strict_quota_denies_insert_when_own_frames_unevictable() {
        let m = strict_mgr(8, &[(0, 2)]);
        let a = AppId(0);
        // Fill the quota with dirty blocks, then freeze them in flight.
        assert_eq!(
            m.write_by(key(0), NodeId(0), Span::FULL, &full_block(1), a),
            WriteOutcome::Absorbed
        );
        assert_eq!(
            m.write_by(key(1), NodeId(0), Span::FULL, &full_block(2), a),
            WriteOutcome::Absorbed
        );
        let items = m.take_dirty(2);
        assert_eq!(items.len(), 2);
        // Clean insert: both owned frames are pinned, quota full → denied.
        assert!(m.insert_clean_by(key(2), NodeId(0), Span::FULL, &full_block(3), a).is_none());
        assert!(!m.contains(key(2)), "denied insert must not be cached");
        assert_eq!(m.resident_of(a), 2);
        // A write is denied the same way (pass-through).
        assert_eq!(
            m.write_by(key(3), NodeId(0), Span::FULL, &full_block(4), a),
            WriteOutcome::PassThrough
        );
        for it in &items {
            m.flush_complete(it.key, it.span);
        }
        // Unpinned again: the app can churn within its quota.
        assert!(m.insert_clean_by(key(2), NodeId(0), Span::FULL, &full_block(3), a).is_none());
        assert!(m.contains(key(2)));
        assert_eq!(m.resident_of(a), 2);
    }

    #[test]
    fn soft_quota_borrows_free_frames_and_gives_them_back() {
        let (a, b) = (AppId(0), AppId(1));
        let m = BufferManager::builder(6)
            .watermarks(0, 6)
            .partitioning(crate::config::PartitionConfig::soft([(0, 2), (1, 4)]))
            .build();
        // a grows past its quota of 2 by borrowing idle (free) frames.
        for i in 0..5 {
            m.insert_clean_by(key(i), NodeId(0), Span::FULL, &full_block(0), a);
        }
        assert_eq!(m.resident_of(a), 5, "soft mode borrows idle capacity");
        // b now claims its quota: the borrowed frames are reclaimed from a
        // (the most over-quota app), not from b itself.
        for i in 0..4 {
            m.insert_clean_by(key(100 + i), NodeId(0), Span::FULL, &full_block(1), b);
            assert!(m.resident_of(b) == i as usize + 1, "b's insert must not be blocked");
        }
        assert_eq!(m.resident_of(b), 4);
        assert_eq!(m.resident_of(a), 2, "a shrank back to its quota as b reclaimed");
    }

    #[test]
    fn unknown_and_unlisted_apps_are_unconstrained() {
        let m = strict_mgr(4, &[(0, 1)]);
        for i in 0..4 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(0));
        }
        assert_eq!(m.resident(), 4, "unattributed inserts fill the whole pool");
        // A quota'd app can still claim a frame (victim-agnostic fallback
        // evicts unowned frames).
        m.insert_clean_by(key(10), NodeId(0), Span::FULL, &full_block(1), AppId(0));
        assert!(m.contains(key(10)));
        assert_eq!(m.resident_of(AppId(0)), 1);
    }

    #[test]
    fn quota_equal_to_capacity_matches_shared_pool_exactly() {
        // The partitioning differential: a single app whose quota is the
        // whole pool must behave byte-for-byte like the unpartitioned
        // manager for every policy.
        for kind in PolicyKind::ALL {
            let strict = BufferManager::builder(8)
                .policy(EvictPolicy::of(kind))
                .watermarks(0, 2)
                .partitioning(crate::config::PartitionConfig::strict([(0, 8)]))
                .build();
            let shared2 =
                BufferManager::builder(8).policy(EvictPolicy::of(kind)).watermarks(0, 2).build();
            let a = AppId(0);
            let mut buf = vec![0u8; 4096];
            for step in 0..400u64 {
                let k = key((step * 7919) % 23);
                match step % 5 {
                    0 | 3 => {
                        for m in [&shared2, &strict] {
                            m.insert_clean_by(k, NodeId(0), Span::FULL, &full_block(step as u8), a);
                        }
                    }
                    1 => {
                        for m in [&shared2, &strict] {
                            let _ =
                                m.write_by(k, NodeId(0), Span::FULL, &full_block(step as u8), a);
                        }
                    }
                    2 => {
                        for m in [&shared2, &strict] {
                            let _ = m.try_read_by(k, Span::FULL, &mut buf, a);
                        }
                    }
                    _ => {
                        let xs = shared2.take_dirty(3);
                        let ys = strict.take_dirty(3);
                        assert_eq!(xs.len(), ys.len(), "{kind}: flush divergence");
                        for it in xs {
                            shared2.flush_complete(it.key, it.span);
                        }
                        for it in ys {
                            strict.flush_complete(it.key, it.span);
                        }
                    }
                }
                assert_eq!(
                    shared2.resident_keys(),
                    strict.resident_keys(),
                    "{kind}: resident set diverged at step {step}"
                );
            }
            let (s, t) = (shared2.stats(), strict.stats());
            assert_eq!(
                (s.hits, s.misses, s.evictions_clean, s.evictions_dirty),
                (t.hits, t.misses, t.evictions_clean, t.evictions_dirty),
                "{kind}: stats diverged"
            );
            assert_eq!(
                shared2.policy_stats(),
                strict.policy_stats(),
                "{kind}: policy ledger diverged"
            );
        }
    }

    #[test]
    fn harvest_drains_over_quota_owners_before_idle_tenants() {
        // An idle victim sits at its quota; an active scanner borrowed
        // past its own. The harvester must reclaim the scanner's borrowed
        // frames, not drain the victim below quota (the pre-PR-4 sweep
        // was victim-agnostic and would).
        let (victim, scanner) = (AppId(0), AppId(1));
        let m = BufferManager::builder(8)
            .watermarks(0, 2)
            .partitioning(crate::config::PartitionConfig::soft([(0, 4), (1, 2)]))
            .build();
        for i in 0..4 {
            m.insert_clean_by(key(i), NodeId(0), Span::FULL, &full_block(0), victim);
        }
        for i in 0..4 {
            m.insert_clean_by(key(100 + i), NodeId(0), Span::FULL, &full_block(1), scanner);
        }
        assert_eq!(m.free_frames(), 0);
        assert_eq!(m.resident_of(scanner), 4, "scanner borrowed past its quota of 2");
        let flush = m.harvest();
        assert!(flush.is_empty(), "all clean");
        assert!(m.free_frames() >= 2);
        assert_eq!(m.resident_of(victim), 4, "idle victim must not be drained below quota");
        assert_eq!(m.resident_of(scanner), 2, "the over-quota borrower pays for the sweep");
        for i in 0..4 {
            assert!(m.contains(key(i)), "victim block {i} was harvested");
        }
    }

    fn adaptive_mgr(kind: PolicyKind, epoch: usize) -> BufferManager {
        BufferManager::builder(8)
            .policy(EvictPolicy::of(kind))
            .watermarks(0, 2)
            .adaptive(Some(AdaptiveConfig::new([kind])))
            .epoch_accesses(epoch)
            .build()
    }

    #[test]
    fn adaptive_with_one_candidate_matches_static_byte_for_byte() {
        // The meta-policy differential: ghosts observe, the controller has
        // nothing to switch to, so every observable of the manager must
        // match the static policy exactly — epoch ticks included.
        for kind in PolicyKind::ALL {
            let adaptive = adaptive_mgr(kind, 64);
            let stat = BufferManager::builder(8)
                .policy(EvictPolicy::of(kind))
                .watermarks(0, 2)
                .epoch_accesses(64)
                .build();
            let mut buf = vec![0u8; 4096];
            for step in 0..500u64 {
                let k = key((step * 7919) % 23);
                let app = AppId((step % 3) as u32);
                match step % 5 {
                    0 | 3 => {
                        for m in [&stat, &adaptive] {
                            m.insert_clean_by(
                                k,
                                NodeId(0),
                                Span::FULL,
                                &full_block(step as u8),
                                app,
                            );
                        }
                    }
                    1 => {
                        for m in [&stat, &adaptive] {
                            let _ =
                                m.write_by(k, NodeId(0), Span::FULL, &full_block(step as u8), app);
                        }
                    }
                    2 => {
                        for m in [&stat, &adaptive] {
                            let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                        }
                    }
                    _ => {
                        let xs = stat.take_dirty(3);
                        let ys = adaptive.take_dirty(3);
                        assert_eq!(xs.len(), ys.len(), "{kind}: flush divergence");
                        for it in xs {
                            stat.flush_complete(it.key, it.span);
                        }
                        for it in ys {
                            adaptive.flush_complete(it.key, it.span);
                        }
                    }
                }
                assert_eq!(
                    stat.resident_keys(),
                    adaptive.resident_keys(),
                    "{kind}: resident set diverged at step {step}"
                );
            }
            assert_eq!(stat.policy_stats(), adaptive.policy_stats(), "{kind}: ledger diverged");
            let (s, a) = (stat.stats(), adaptive.stats());
            assert_eq!(
                (s.hits, s.misses, s.evictions_clean, s.evictions_dirty),
                (a.hits, a.misses, a.evictions_clean, a.evictions_dirty),
                "{kind}: stats diverged"
            );
            let ast = adaptive.adaptive_stats().expect("adaptive manager reports stats");
            assert_eq!(ast.switches, 0, "{kind}: single candidate must never switch");
            assert!(ast.epochs > 0, "{kind}: epochs must have ticked");
            assert!(stat.adaptive_stats().is_none(), "static manager has no adaptive stats");
        }
    }

    #[test]
    fn epoch_tuner_grows_the_refaulting_apps_quota() {
        // Strict halves; app 0 re-references a working set one frame
        // bigger than its quota (constant refaults), app 1 streams fresh
        // blocks it never revisits. The tuner must shift quota 0 ← 1, and
        // enforcement must follow the *tuned* quotas.
        let (hot, cold) = (AppId(0), AppId(1));
        let m = BufferManager::builder(8)
            .policy(EvictPolicy::of(PolicyKind::ExactLru))
            .watermarks(0, 2)
            .partitioning(crate::config::PartitionConfig::strict([(0, 4), (1, 4)]))
            .adaptive(Some(AdaptiveConfig {
                quota_step: 1,
                ..AdaptiveConfig::new([PolicyKind::ExactLru])
            }))
            .epoch_accesses(32)
            .build();
        let mut buf = vec![0u8; 4096];
        let mut fresh = 1000u64;
        for round in 0..400u64 {
            let k = key(round % 5); // working set of 5 > quota of 4
            if !m.try_read_by(k, Span::FULL, &mut buf, hot) {
                m.insert_clean_by(k, NodeId(0), Span::FULL, &full_block(1), hot);
            }
            if round % 2 == 0 {
                m.insert_clean_by(key(fresh), NodeId(0), Span::FULL, &full_block(2), cold);
                fresh += 1;
            }
        }
        let hq = m.quota_of(hot).unwrap();
        let cq = m.quota_of(cold).unwrap();
        assert!(hq > 4, "hot app's tuned quota must grow past 4, got {hq}");
        assert!(cq < 4, "cold app's tuned quota must shrink below 4, got {cq}");
        let stats = m.adaptive_stats().unwrap();
        assert!(stats.quota_moves > 0);
        assert!(stats.quota_log.iter().all(|q| q.to == hot && q.from == cold));
        // Tuned quotas are enforced going forward: the hot app's residency
        // tracks its grown quota (strict mode never let it past the cap at
        // any intermediate step either).
        assert!(m.resident_of(hot) <= hq);
        // And the cold app, now over its shrunk quota, is the harvester's
        // preferred reclaim source.
        let before = m.resident_of(cold);
        let _ = m.harvest();
        assert!(
            m.resident_of(cold) <= before.min(cq.max(1)) || m.resident_of(cold) < before,
            "harvest must reclaim from the over-quota cold app first"
        );
    }

    #[test]
    fn probe_accounting_is_symmetric_and_recency_neutral() {
        // The pre-PR-5 bug: probe's hit branch bumped the global+policy
        // hit counters but skipped the epoch clock and the per-app
        // ledger, while its miss branch counted both. Both branches now
        // run full symmetric accounting — and neither refreshes recency
        // (matching the seed).
        let m = BufferManager::builder(4)
            .policy(EvictPolicy::of(PolicyKind::ExactLru))
            .watermarks(0, 4)
            .adaptive(Some(AdaptiveConfig::new([PolicyKind::ExactLru])))
            .epoch_accesses(8)
            .build();
        let a = AppId(0);
        m.insert_clean_by(key(0), NodeId(0), Span::FULL, &full_block(1), a);
        m.insert_clean_by(key(1), NodeId(0), Span::FULL, &full_block(1), a);
        for _ in 0..6 {
            assert!(m.probe_by(key(0), Span::FULL, a));
        }
        for _ in 0..2 {
            assert!(!m.probe_by(key(9), Span::FULL, a));
        }
        let s = m.stats();
        assert_eq!((s.hits, s.misses), (6, 2));
        let ps = m.policy_stats();
        assert_eq!((ps.hits, ps.misses), (6, 2), "policy ledger must match the atomic counters");
        let usage = m.app_usage();
        let au = usage.iter().find(|(id, _)| *id == a).unwrap().1;
        assert_eq!((au.hits, au.misses), (6, 2), "probes must reach the per-app ledger");
        // 8 probe accesses with epoch_accesses = 8: exactly one epoch.
        assert_eq!(m.adaptive_stats().unwrap().epochs, 1, "probes must advance the epoch clock");
        // Recency stays un-refreshed: key(0), probed 6 times but never
        // read, is still the exact-LRU victim.
        m.insert_clean_by(key(2), NodeId(0), Span::FULL, &full_block(2), a);
        m.insert_clean_by(key(3), NodeId(0), Span::FULL, &full_block(3), a);
        m.insert_clean_by(key(4), NodeId(0), Span::FULL, &full_block(4), a);
        assert!(!m.contains(key(0)), "a probe must not rescue the LRU block");
        assert!(m.contains(key(1)));
    }

    #[test]
    fn recency_touches_advance_the_epoch_clock() {
        // A sync-write refresh (update_if_present → note_touch) is a real
        // access: before PR 5 it never aged the policies.
        let m = BufferManager::builder(4)
            .watermarks(0, 4)
            .adaptive(Some(AdaptiveConfig::new([PolicyKind::Clock])))
            .epoch_accesses(4)
            .build();
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(1));
        assert_eq!(m.adaptive_stats().unwrap().epochs, 0, "an insert is not an access");
        for _ in 0..4 {
            assert!(m.update_if_present(key(0), Span::FULL, &full_block(2)));
        }
        assert_eq!(m.adaptive_stats().unwrap().epochs, 1, "touches must advance the epoch clock");
        // note_access (secondary-waiter attribution) participates too.
        for _ in 0..4 {
            m.note_access(key(0), AppId(1));
        }
        assert_eq!(m.adaptive_stats().unwrap().epochs, 2);
    }

    /// The tentpole differential: the drained side-buffer path must be
    /// observation-equivalent to the eager apply-under-the-lock path
    /// under a single thread — identical resident sets after every step
    /// (which pins the eviction sequences), identical `PolicyStats`,
    /// `AppUsage` and manager counters at the end — for every static
    /// policy and for the adaptive meta-policy with tuner and switching
    /// live.
    #[test]
    fn drained_accounting_matches_eager_path_exactly() {
        let mut setups: Vec<(EvictPolicy, Option<AdaptiveConfig>)> =
            PolicyKind::ALL.map(|k| (EvictPolicy::of(k), None)).to_vec();
        setups.push((
            EvictPolicy::of(PolicyKind::Clock),
            Some(AdaptiveConfig {
                hysteresis: 0.0,
                quota_step: 1,
                ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru, PolicyKind::Lfu])
            }),
        ));
        for (policy, adaptive) in setups {
            let mk = || {
                BufferManager::builder(8)
                    .policy(policy)
                    .watermarks(0, 2)
                    .partitioning(crate::config::PartitionConfig::strict([(0, 3), (1, 3)]))
                    .adaptive(adaptive.clone())
                    .epoch_accesses(32)
            };
            let label = adaptive.as_ref().map_or(policy.kind.name(), |_| "adaptive");
            let eager = mk().eager_accounting(true).build();
            let drained = mk().build();
            let mut buf = vec![0u8; 4096];
            for step in 0..600u64 {
                let k = key((step * 7919) % 23);
                let app = AppId((step % 3) as u32);
                match step % 7 {
                    0 | 4 => {
                        for m in [&eager, &drained] {
                            m.insert_clean_by(
                                k,
                                NodeId(0),
                                Span::FULL,
                                &full_block(step as u8),
                                app,
                            );
                        }
                    }
                    1 => {
                        for m in [&eager, &drained] {
                            let _ =
                                m.write_by(k, NodeId(0), Span::FULL, &full_block(step as u8), app);
                        }
                    }
                    2 | 5 => {
                        for m in [&eager, &drained] {
                            let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                        }
                    }
                    3 => {
                        for m in [&eager, &drained] {
                            let _ = m.probe_by(k, Span::FULL, app);
                            let _ = m.update_if_present(k, Span::FULL, &full_block(9));
                            m.note_access(k, AppId(2));
                        }
                    }
                    _ => {
                        if step % 35 == 6 {
                            for m in [&eager, &drained] {
                                let _ = m.invalidate([k]);
                                let _ = m.harvest();
                            }
                        } else {
                            let xs = eager.take_dirty(3);
                            let ys = drained.take_dirty(3);
                            assert_eq!(xs.len(), ys.len(), "{label}: flush divergence");
                            for it in xs {
                                eager.flush_complete(it.key, it.span);
                            }
                            for it in ys {
                                drained.flush_complete(it.key, it.span);
                            }
                        }
                    }
                }
                assert_eq!(
                    eager.resident_keys(),
                    drained.resident_keys(),
                    "{label}: resident set diverged at step {step}"
                );
            }
            assert_eq!(eager.policy_stats(), drained.policy_stats(), "{label}: ledger diverged");
            assert_eq!(eager.app_usage(), drained.app_usage(), "{label}: app ledger diverged");
            let (e, d) = (eager.stats(), drained.stats());
            assert_eq!(
                (e.hits, e.misses, e.evictions_clean, e.evictions_dirty, e.insertions),
                (d.hits, d.misses, d.evictions_clean, d.evictions_dirty, d.insertions),
                "{label}: stats diverged"
            );
            assert_eq!(eager.adaptive_stats(), drained.adaptive_stats(), "{label}: adaptive");
            assert_eq!(
                (eager.quota_of(AppId(0)), eager.quota_of(AppId(1))),
                (drained.quota_of(AppId(0)), drained.quota_of(AppId(1))),
                "{label}: tuned quotas diverged"
            );
        }
    }

    /// The observability differential: wiring an `ObsHub` must change no
    /// cache decision — identical resident sets after every step,
    /// identical ledgers and counters at the end — for every static
    /// policy and for the adaptive meta-policy with tuner and switching
    /// live. Instrumentation observes; it never participates.
    #[test]
    fn obs_wiring_changes_no_cache_decision() {
        let mut setups: Vec<(EvictPolicy, Option<AdaptiveConfig>)> =
            PolicyKind::ALL.map(|k| (EvictPolicy::of(k), None)).to_vec();
        setups.push((
            EvictPolicy::of(PolicyKind::Clock),
            Some(AdaptiveConfig {
                hysteresis: 0.0,
                quota_step: 1,
                ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru, PolicyKind::Lfu])
            }),
        ));
        for (policy, adaptive) in setups {
            let mk = || {
                BufferManager::builder(8)
                    .policy(policy)
                    .watermarks(0, 2)
                    .partitioning(crate::config::PartitionConfig::strict([(0, 3), (1, 3)]))
                    .adaptive(adaptive.clone())
                    .epoch_accesses(32)
            };
            let label = adaptive.as_ref().map_or(policy.kind.name(), |_| "adaptive");
            let hub = kcache_obs::ObsHub::new(1024);
            let plain = mk().build();
            let obsd = mk().obs(Some(hub.clone()), 0).build();
            let mut buf = vec![0u8; 4096];
            for step in 0..600u64 {
                let k = key((step * 7919) % 23);
                let app = AppId((step % 3) as u32);
                match step % 7 {
                    0 | 4 => {
                        for m in [&plain, &obsd] {
                            m.insert_clean_by(
                                k,
                                NodeId(0),
                                Span::FULL,
                                &full_block(step as u8),
                                app,
                            );
                        }
                    }
                    1 => {
                        for m in [&plain, &obsd] {
                            let _ =
                                m.write_by(k, NodeId(0), Span::FULL, &full_block(step as u8), app);
                        }
                    }
                    2 | 5 => {
                        for m in [&plain, &obsd] {
                            let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                        }
                    }
                    3 => {
                        for m in [&plain, &obsd] {
                            let _ = m.probe_by(k, Span::FULL, app);
                            let _ = m.update_if_present(k, Span::FULL, &full_block(9));
                            m.note_access(k, AppId(2));
                        }
                    }
                    _ => {
                        if step % 35 == 6 {
                            for m in [&plain, &obsd] {
                                let _ = m.invalidate([k]);
                                let _ = m.harvest();
                            }
                        } else {
                            let xs = plain.take_dirty(3);
                            let ys = obsd.take_dirty(3);
                            assert_eq!(xs.len(), ys.len(), "{label}: flush divergence");
                            for it in xs {
                                plain.flush_complete(it.key, it.span);
                            }
                            for it in ys {
                                obsd.flush_complete(it.key, it.span);
                            }
                        }
                    }
                }
                assert_eq!(
                    plain.resident_keys(),
                    obsd.resident_keys(),
                    "{label}: obs wiring changed the resident set at step {step}"
                );
            }
            assert_eq!(plain.policy_stats(), obsd.policy_stats(), "{label}: ledger diverged");
            assert_eq!(plain.app_usage(), obsd.app_usage(), "{label}: app ledger diverged");
            let (p, o) = (plain.stats(), obsd.stats());
            assert_eq!(
                (p.hits, p.misses, p.evictions_clean, p.evictions_dirty, p.insertions),
                (o.hits, o.misses, o.evictions_clean, o.evictions_dirty, o.insertions),
                "{label}: stats diverged"
            );
            assert_eq!(plain.adaptive_stats(), obsd.adaptive_stats(), "{label}: adaptive");
            assert_eq!(
                (plain.quota_of(AppId(0)), plain.quota_of(AppId(1))),
                (obsd.quota_of(AppId(0)), obsd.quota_of(AppId(1))),
                "{label}: tuned quotas diverged"
            );
            // And the obs side actually observed the traffic it mirrors.
            // Hit/miss metric counters are deferred (folded in from the
            // manager ledger at sync points), so flush before reading —
            // after which the mirror must be *exact*, not a lower bound.
            obsd.obs_flush();
            let snap = hub.snapshot();
            let s = obsd.stats();
            let hits: u64 = snap
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("cache.hits."))
                .map(|(_, v)| v)
                .sum();
            assert_eq!(hits, s.hits, "{label}: obs hit mirror diverged from the ledger");
            let misses: u64 = snap
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("cache.misses."))
                .map(|(_, v)| v)
                .sum();
            assert_eq!(misses, s.misses, "{label}: obs miss mirror diverged from the ledger");
        }
    }

    #[test]
    fn quota_floor_bounds_the_tuner_end_to_end() {
        // The starved-tenant regression: same workload as
        // `epoch_tuner_grows_the_refaulting_apps_quota`, but with a
        // 3-frame fairness floor the idle tenant can never be squeezed
        // below — validated by the manager before any update is applied.
        let (hot, cold) = (AppId(0), AppId(1));
        let m = BufferManager::builder(8)
            .policy(EvictPolicy::of(PolicyKind::ExactLru))
            .watermarks(0, 2)
            .partitioning(crate::config::PartitionConfig::strict([(0, 4), (1, 4)]))
            .adaptive(Some(AdaptiveConfig {
                quota_step: 1,
                quota_floor: 3,
                ..AdaptiveConfig::new([PolicyKind::ExactLru])
            }))
            .epoch_accesses(32)
            .build();
        let mut buf = vec![0u8; 4096];
        let mut fresh = 1000u64;
        for round in 0..400u64 {
            let k = key(round % 5); // working set of 5 > quota of 4
            if !m.try_read_by(k, Span::FULL, &mut buf, hot) {
                m.insert_clean_by(k, NodeId(0), Span::FULL, &full_block(1), hot);
            }
            if round % 2 == 0 {
                m.insert_clean_by(key(fresh), NodeId(0), Span::FULL, &full_block(2), cold);
                fresh += 1;
            }
            let cq = m.quota_of(cold).unwrap();
            assert!(cq >= 3, "cold app squeezed below the floor: {cq} at round {round}");
        }
        let stats = m.adaptive_stats().unwrap();
        assert!(stats.quota_moves > 0, "the tuner must still act above the floor");
        assert_eq!(m.quota_of(cold), Some(3), "shrink stops exactly at the floor");
        assert_eq!(m.quota_of(hot), Some(5), "the freed frame went to the refaulting app");
    }

    #[test]
    fn quota_floor_never_vetoes_growth_toward_the_floor() {
        // An app whose configured quota starts BELOW the floor must
        // still be allowed to grow: the floor bounds shrinking, not
        // growing — a veto on the grow side would kill the whole
        // transfer pair and leave the tuner permanently dead for such
        // configs.
        let (hot, cold) = (AppId(0), AppId(1));
        let m = BufferManager::builder(8)
            .policy(EvictPolicy::of(PolicyKind::ExactLru))
            .watermarks(0, 2)
            .partitioning(crate::config::PartitionConfig::strict([(0, 2), (1, 6)]))
            .adaptive(Some(AdaptiveConfig {
                quota_step: 1,
                quota_floor: 4,
                ..AdaptiveConfig::new([PolicyKind::ExactLru])
            }))
            .epoch_accesses(32)
            .build();
        let mut buf = vec![0u8; 4096];
        let mut fresh = 1000u64;
        for round in 0..400u64 {
            let k = key(round % 3); // working set of 3 > quota of 2
            if !m.try_read_by(k, Span::FULL, &mut buf, hot) {
                m.insert_clean_by(k, NodeId(0), Span::FULL, &full_block(1), hot);
            }
            if round % 2 == 0 {
                m.insert_clean_by(key(fresh), NodeId(0), Span::FULL, &full_block(2), cold);
                fresh += 1;
            }
        }
        assert!(m.adaptive_stats().unwrap().quota_moves > 0, "the tuner must act");
        assert_eq!(m.quota_of(hot), Some(4), "growth from below the floor must be applied");
        assert_eq!(m.quota_of(cold), Some(4), "the donor shrinks only to the floor");
    }

    #[test]
    fn concurrent_stress_accounting_and_quotas_hold() {
        // 8 threads × mixed read/write/probe over a shared working set,
        // across shared/strict/soft partitioning and static/adaptive
        // ranking. After the dust settles (final drain via the stats
        // readers): no frame leaked, every lookup is counted exactly
        // once, and quotas held.
        use std::sync::Arc;
        let quota = 20usize;
        let partitions = [
            crate::config::PartitionConfig::shared(),
            crate::config::PartitionConfig::strict([(0, quota), (1, quota)]),
            crate::config::PartitionConfig::soft([(0, quota), (1, quota)]),
        ];
        for part in partitions {
            for adaptive in [
                None,
                Some(AdaptiveConfig {
                    quota_tuning: false,
                    ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru])
                }),
            ] {
                let m = Arc::new(
                    BufferManager::builder(64)
                        .watermarks(4, 16)
                        .partitioning(part.clone())
                        .adaptive(adaptive.clone())
                        .epoch_accesses(256)
                        .build(),
                );
                let threads = 8u64;
                let lookups = AtomicU64::new(0);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let m = Arc::clone(&m);
                        let lookups = &lookups;
                        s.spawn(move || {
                            let mut buf = vec![0u8; 4096];
                            for i in 0..3000u64 {
                                let k = key((i * 13 + t * 97) % 150);
                                let app = AppId((t % 2) as u32);
                                match i % 8 {
                                    0 | 1 | 5 => {
                                        let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                                        lookups.fetch_add(1, Ordering::Relaxed);
                                    }
                                    2 => {
                                        let _ = m.probe_by(k, Span::FULL, app);
                                        lookups.fetch_add(1, Ordering::Relaxed);
                                    }
                                    3 | 6 => {
                                        let _ =
                                            m.insert_clean_by(k, NodeId(0), Span::FULL, &buf, app);
                                    }
                                    4 => {
                                        let _ = m.write_by(k, NodeId(0), Span::FULL, &buf, app);
                                    }
                                    _ => {
                                        if i % 64 == 7 {
                                            for it in m.take_dirty(8) {
                                                m.flush_complete(it.key, it.span);
                                            }
                                        } else if i % 160 == 15 {
                                            let _ = m.harvest();
                                        } else {
                                            let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                                            lookups.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                            }
                        });
                    }
                });
                let label = format!(
                    "{}/{}",
                    part.mode,
                    if adaptive.is_some() { "adaptive" } else { "static" }
                );
                // Frames conserved, resident set unique, residency bounded.
                let keys = m.resident_keys();
                assert_eq!(keys.len() + m.free_frames(), 64, "{label}: frames leaked");
                let mut dedup = keys.clone();
                dedup.dedup();
                assert_eq!(keys.len(), dedup.len(), "{label}: duplicate resident keys");
                assert!(m.resident() <= 64, "{label}: residency over capacity");
                // Every lookup counted exactly once, in the atomic
                // counters and — after the final drain the stats read
                // performs — in the policy's own ledger.
                let s = m.stats();
                let n = lookups.load(Ordering::Relaxed);
                assert_eq!(s.hits + s.misses, n, "{label}: manager hit+miss != lookups");
                let ps = m.policy_stats();
                assert_eq!(ps.hits + ps.misses, n, "{label}: policy hit+miss != lookups");
                // Strict quotas: enforcement is exact single-threaded; under
                // concurrency a candidate that changes hands between the
                // owner-filtered scan and revalidation can offset one
                // acquisition transiently (pre-existing, documented), so
                // the bound carries a per-thread slack.
                if part.mode == PartitionMode::Strict {
                    for app in [AppId(0), AppId(1)] {
                        let r = m.resident_of(app);
                        assert!(
                            r <= quota + threads as usize,
                            "{label}: app {app:?} resident {r} way over quota {quota}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn concurrent_stress_no_lost_frames() {
        use std::sync::Arc;
        for kind in PolicyKind::ALL {
            let m = Arc::new(BufferManager::builder(64).policy(EvictPolicy::of(kind)).build());
            let threads = 8;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        let mut buf = vec![0u8; 4096];
                        for i in 0..2000u64 {
                            let k = BlockKey::new(Fid(t % 3), (i * 7 + t) % 200);
                            let app = AppId((t % 2) as u32);
                            match i % 4 {
                                0 => {
                                    let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                                }
                                1 => {
                                    let _ = m.insert_clean_by(k, NodeId(0), Span::FULL, &buf, app);
                                }
                                2 => {
                                    let _ = m.write_by(k, NodeId(0), Span::FULL, &buf, app);
                                }
                                _ => {
                                    if i % 64 == 3 {
                                        m.take_dirty(8);
                                    } else {
                                        let _ = m.invalidate([k]);
                                    }
                                }
                            }
                        }
                    });
                }
            });
            // Conservation: every frame is either free or reachable via a
            // bucket.
            let resident = m.resident_keys().len();
            assert_eq!(resident + m.free_frames(), 64, "{kind}: frames leaked or duplicated");
            // And all resident keys are unique.
            let keys = m.resident_keys();
            let mut dedup = keys.clone();
            dedup.dedup();
            assert_eq!(keys.len(), dedup.len(), "{kind}: duplicate resident keys");
        }
    }

    /// The sharding differential: a `.shards(1)` manager IS the
    /// unsharded manager — same single `Shard`, `shared_clock` absent,
    /// the exact in-shard epoch path — so two identically-configured
    /// builds must replay a mixed trace byte-for-byte, across every
    /// policy, static and adaptive ranking, and every partition mode.
    #[test]
    fn shards_one_matches_unsharded_reference() {
        for kind in PolicyKind::ALL {
            for adaptive in
                [None, Some(AdaptiveConfig { quota_tuning: false, ..AdaptiveConfig::new([kind]) })]
            {
                for part in [
                    crate::config::PartitionConfig::shared(),
                    crate::config::PartitionConfig::strict([(0, 4), (1, 4)]),
                    crate::config::PartitionConfig::soft([(0, 4), (1, 4)]),
                ] {
                    let build = |shards: Option<usize>| {
                        let mut b = BufferManager::builder(8)
                            .policy(EvictPolicy::of(kind))
                            .watermarks(0, 2)
                            .partitioning(part.clone())
                            .adaptive(adaptive.clone())
                            .epoch_accesses(32);
                        if let Some(n) = shards {
                            b = b.shards(n);
                        }
                        b.build()
                    };
                    let reference = build(None);
                    let sharded = build(Some(1));
                    let mut buf = vec![0u8; 4096];
                    for step in 0..600u64 {
                        let k = key((step * 7919) % 19);
                        let app = AppId((step % 2) as u32);
                        match step % 5 {
                            0 | 3 => {
                                let a = reference.try_read_by(k, Span::FULL, &mut buf, app);
                                let b = sharded.try_read_by(k, Span::FULL, &mut buf, app);
                                assert_eq!(a, b, "{kind} step {step}: read outcome diverged");
                            }
                            1 => {
                                let a =
                                    reference.insert_clean_by(k, NodeId(0), Span::FULL, &buf, app);
                                let b =
                                    sharded.insert_clean_by(k, NodeId(0), Span::FULL, &buf, app);
                                assert_eq!(
                                    a.is_some(),
                                    b.is_some(),
                                    "{kind} step {step}: insert flush diverged"
                                );
                            }
                            2 => {
                                let a = reference.write_by(k, NodeId(0), Span::FULL, &buf, app);
                                let b = sharded.write_by(k, NodeId(0), Span::FULL, &buf, app);
                                assert_eq!(a, b, "{kind} step {step}: write outcome diverged");
                            }
                            _ => {
                                for it in reference.take_dirty(2) {
                                    reference.flush_complete(it.key, it.span);
                                }
                                for it in sharded.take_dirty(2) {
                                    sharded.flush_complete(it.key, it.span);
                                }
                            }
                        }
                        assert_eq!(
                            reference.resident_keys(),
                            sharded.resident_keys(),
                            "{kind} step {step}: resident sets diverged"
                        );
                    }
                    let (a, b) = (reference.stats(), sharded.stats());
                    assert_eq!((a.hits, a.misses), (b.hits, b.misses), "{kind}: ledgers diverged");
                    let (pa, pb) = (reference.policy_stats(), sharded.policy_stats());
                    assert_eq!(
                        (pa.hits, pa.misses, pa.evictions_clean, pa.evictions_dirty),
                        (pb.hits, pb.misses, pb.evictions_clean, pb.evictions_dirty),
                        "{kind}: policy ledgers diverged"
                    );
                }
            }
        }
    }

    /// Single-threaded multi-shard roundtrip: routing is stable (a key
    /// lives in exactly the shard the facade routes it to), and every
    /// facade aggregate is the sum of its shard parts.
    #[test]
    fn multi_shard_routing_and_aggregation_roundtrip() {
        let m = BufferManager::builder(64).shards(4).watermarks(0, 4).build();
        assert_eq!(m.n_shards(), 4);
        assert_eq!(m.capacity(), 64);
        let mut buf = vec![0u8; 4096];
        for b in 0..40u64 {
            m.insert_clean(key(b), NodeId(0), Span::FULL, &full_block(b as u8));
        }
        for b in 0..40u64 {
            assert!(m.try_read(key(b), Span::FULL, &mut buf), "block {b} lost");
            assert_eq!(buf[0], b as u8);
            // The key is resident in exactly the shard the facade routes
            // it to — and in no other.
            let home = m.shard_idx_of(&key(b));
            for (i, s) in m.shards.iter().enumerate() {
                assert_eq!(s.contains(key(b)), i == home, "block {b} misplaced");
            }
        }
        // Blocks actually spread (40 keys over 4 shards: every shard got
        // traffic unless the hash is catastrophically skewed).
        let occ = m.shard_occupancy();
        assert_eq!(occ.len(), 4);
        assert_eq!(occ.iter().sum::<usize>(), m.resident());
        assert!(
            occ.iter().filter(|&&n| n > 0).count() >= 2,
            "all keys routed to one shard: {occ:?}"
        );
        // Aggregates = sum of parts.
        assert_eq!(m.resident(), m.resident_keys().len());
        assert_eq!(m.resident() + m.free_frames(), 64);
        let s = m.stats();
        assert_eq!(s.hits, 40);
        assert_eq!(s.insertions, 40);
        assert_eq!(m.shard_evictions().iter().sum::<u64>(), s.evictions_clean + s.evictions_dirty);
        // Dirty queues and invalidation route per key.
        m.write(key(3), NodeId(0), Span::FULL, &buf);
        m.write(key(17), NodeId(0), Span::FULL, &buf);
        assert_eq!(m.dirty_queue_len(), 2);
        let flushed = m.take_dirty(8);
        assert_eq!(flushed.len(), 2);
        for it in flushed {
            m.flush_complete(it.key, it.span);
        }
        let (dropped, _) = m.invalidate((0..10u64).map(key));
        assert_eq!(dropped, 10);
        assert_eq!(m.resident(), 30);
        assert_eq!(m.resident() + m.free_frames(), 64);
    }

    /// Strict-quota spill: when an app's keys hash entirely onto one
    /// shard, its per-shard quota slice there (global/4) would deny most
    /// of its configured allowance — the facade must move quota *units*
    /// from idle sibling slices so the app reaches its full global quota,
    /// while the global sum of per-shard slices never grows.
    #[test]
    fn strict_quota_spills_to_neighbor_shards() {
        let quota = 4usize;
        let m = BufferManager::builder(16)
            .shards(4)
            .watermarks(0, 1)
            .partitioning(crate::config::PartitionConfig::strict([(0, quota)]))
            .build();
        let app = AppId(0);
        // Collect `quota` keys that all route to the same shard.
        let home = m.shard_idx_of(&key(0));
        let skewed: Vec<BlockKey> =
            (0..10_000u64).map(key).filter(|k| m.shard_idx_of(k) == home).take(quota).collect();
        assert_eq!(skewed.len(), quota, "not enough same-shard keys in probe range");
        for (i, &k) in skewed.iter().enumerate() {
            m.insert_clean_by(k, NodeId(0), Span::FULL, &full_block(i as u8), app);
        }
        // Without spill the home shard's slice (4/4 = 1) would cap the
        // app at one frame; lending must let every install land.
        for &k in &skewed {
            assert!(m.contains(k), "strict slice denied an install the global quota allows");
        }
        assert_eq!(m.resident_of(app), quota);
        // The global allowance was redistributed, never grown: per-shard
        // slices still sum to the configured quota, and once every unit
        // has spilled home a further install self-evicts (strict quotas
        // cap residency, not installs) instead of growing residency.
        assert_eq!(m.quota_of(app), Some(quota));
        let extra: BlockKey = (10_000..20_000u64)
            .map(key)
            .find(|k| m.shard_idx_of(k) == home)
            .expect("probe range exhausted");
        m.insert_clean_by(extra, NodeId(0), Span::FULL, &full_block(0xEE), app);
        assert!(m.contains(extra), "strict install should self-evict, not deny");
        assert_eq!(m.resident_of(app), quota, "spill grew the app's residency past its quota");
        let survivors = skewed.iter().filter(|&&k| m.contains(k)).count();
        assert_eq!(survivors, quota - 1, "the extra install must displace exactly one block");
    }

    /// Coordinated epochs (N > 1, adaptive): shards feed one shared
    /// clock, the facade makes one merged decision per boundary, and
    /// every shard applies it — so epoch counts advance in lockstep and
    /// no shard can disagree about the live policy.
    #[test]
    fn coordinated_epochs_switch_all_shards_in_lockstep() {
        let m = BufferManager::builder(32)
            .shards(2)
            .watermarks(0, 2)
            .adaptive(Some(AdaptiveConfig {
                quota_tuning: false,
                hysteresis: 0.0,
                ..AdaptiveConfig::new([PolicyKind::Clock, PolicyKind::ExactLru])
            }))
            .epoch_accesses(64)
            .build();
        let mut buf = vec![0u8; 4096];
        for step in 0..1500u64 {
            let k = key(step % 48);
            if !m.try_read(k, Span::FULL, &mut buf) {
                m.insert_clean(k, NodeId(0), Span::FULL, &full_block(step as u8));
            }
        }
        let ast = m.adaptive_stats().expect("adaptive manager reports stats");
        assert!(ast.epochs > 0, "no coordinated boundary ran");
        // Lockstep: every shard saw exactly the same number of epochs and
        // runs the same live candidate.
        let live = m.live_policy_kind();
        for s in m.shards.iter() {
            let st = s.adaptive_stats().unwrap();
            assert_eq!(st.epochs, ast.epochs, "shards disagree on epoch count");
            assert_eq!(s.live_policy_kind(), live, "shards disagree on the live policy");
            assert_eq!(st.switches, ast.switches, "shards disagree on switch count");
        }
        // The merged ghost ledgers saw the union of shard traffic.
        assert!(
            ast.ghost_rates.iter().any(|g| g.hits + g.misses > 0),
            "merged ghost ledgers empty despite traffic"
        );
    }

    /// 8-thread stress over a 4-shard manager with strict quotas: frames
    /// and charges conserved, every lookup counted exactly once, the
    /// strict bound holds (modulo the documented per-thread revalidation
    /// slack), and per-shard quota slices always sum to the global quota.
    #[test]
    fn concurrent_multi_shard_stress_conserves_frames_and_quotas() {
        use std::sync::Arc;
        let quota = 20usize;
        let m = Arc::new(
            BufferManager::builder(64)
                .shards(4)
                .watermarks(4, 16)
                .partitioning(crate::config::PartitionConfig::strict([(0, quota), (1, quota)]))
                .epoch_accesses(256)
                .build(),
        );
        let threads = 8u64;
        let lookups = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                let lookups = &lookups;
                s.spawn(move || {
                    let mut buf = vec![0u8; 4096];
                    for i in 0..3000u64 {
                        let k = key((i * 13 + t * 97) % 150);
                        let app = AppId((t % 2) as u32);
                        match i % 8 {
                            0 | 1 | 5 => {
                                let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                                lookups.fetch_add(1, Ordering::Relaxed);
                            }
                            2 => {
                                let _ = m.probe_by(k, Span::FULL, app);
                                lookups.fetch_add(1, Ordering::Relaxed);
                            }
                            3 | 6 => {
                                let _ = m.insert_clean_by(k, NodeId(0), Span::FULL, &buf, app);
                            }
                            4 => {
                                let _ = m.write_by(k, NodeId(0), Span::FULL, &buf, app);
                            }
                            _ => {
                                if i % 64 == 7 {
                                    for it in m.take_dirty(8) {
                                        m.flush_complete(it.key, it.span);
                                    }
                                } else if i % 160 == 15 {
                                    let _ = m.harvest();
                                } else {
                                    let _ = m.try_read_by(k, Span::FULL, &mut buf, app);
                                    lookups.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
        });
        // Frame conservation, globally and per shard.
        let keys = m.resident_keys();
        assert_eq!(keys.len() + m.free_frames(), 64, "frames leaked");
        for s in m.shards.iter() {
            assert_eq!(s.resident_keys().len() + s.free_frames(), s.capacity, "shard leaked");
        }
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len(), "duplicate resident keys");
        // Every lookup counted exactly once across the shard sums.
        let s = m.stats();
        let n = lookups.load(Ordering::Relaxed);
        assert_eq!(s.hits + s.misses, n, "manager hit+miss != lookups");
        let ps = m.policy_stats();
        assert_eq!(ps.hits + ps.misses, n, "policy hit+miss != lookups");
        // Strict quotas hold globally (documented per-thread slack), and
        // spill only ever *redistributed* the allowance.
        for app in [AppId(0), AppId(1)] {
            let r = m.resident_of(app);
            assert!(r <= quota + threads as usize, "app {app:?} resident {r} over quota {quota}");
            assert_eq!(m.quota_of(app), Some(quota), "spill changed the global quota");
        }
    }
}
