//! The buffer manager — the paper's "full-fledged buffer manager of
//! blocks, requiring the implementation of hash tables, free list and
//! dirty list" (§3.2).
//!
//! * fixed pool of 4 KB frames (default 300 ≙ the paper's 1.2 MB cache),
//! * open-hashing hash table with **per-bucket locks**,
//! * a free list and a dirty list,
//! * replacement: **approximate LRU** (clock with reference bits) with
//!   **preference for clean blocks over dirty ones**; an exact-LRU mode
//!   exists as the ablation the paper argues against ("exact LRU can
//!   result in a significant overhead at each read/write invocation"),
//! * fine-grained locking throughout: the structure is `Send + Sync` and is
//!   exercised by real multi-threaded stress tests, not only by the
//!   single-threaded simulation.
//!
//! Lock ordering discipline: bucket → frame. The free list, dirty list,
//! clock hand and LRU list locks are leaf locks — never held while
//! acquiring a bucket or frame lock. Evictions read a candidate's key under
//! its frame lock, release, then retake bucket → frame and revalidate.

use crate::block::{BlockKey, Span, CACHE_BLOCK_SIZE};
use parking_lot::Mutex;
use sim_net::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Replacement policy knobs (§3.2 design choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictPolicy {
    /// `false`: clock / second chance (the paper's approximate LRU).
    /// `true`: exact LRU list updated on every access (the ablation).
    pub exact: bool,
    /// Prefer evicting clean blocks over dirty ones (the paper's choice).
    pub clean_first: bool,
}

impl Default for EvictPolicy {
    fn default() -> Self {
        EvictPolicy { exact: false, clean_first: true }
    }
}

/// A dirty snapshot handed to the caller for write-back.
#[derive(Debug, Clone)]
pub struct FlushItem {
    pub key: BlockKey,
    /// iod node owning this block (learned at intercept time).
    pub home: NodeId,
    /// Dirty span within the block.
    pub span: Span,
    /// The dirty bytes (`span.len()` of them).
    pub data: Vec<u8>,
}

/// Outcome of a write-behind attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Bytes absorbed into the cache; the caller may ack immediately.
    Absorbed,
    /// The cache cannot take the bytes without evicting dirty data (or the
    /// write pattern is non-contiguous within a partially valid block);
    /// the caller must send the write through to the iod. This is the
    /// paper's "writes may need to block for availability of cache space".
    PassThrough,
}

#[derive(Debug)]
struct Frame {
    key: Option<BlockKey>,
    data: Box<[u8; CACHE_BLOCK_SIZE]>,
    valid: Span,
    dirty: Span,
    home: NodeId,
    in_dirty_list: bool,
    /// A snapshot of this frame is in flight to its iod; the frame cannot
    /// be evicted (and is not re-taken by the flusher) until the flush is
    /// acknowledged. This is what makes write-behind *block* when the
    /// network cannot drain dirty data fast enough (§4.2.1).
    flushing: bool,
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            key: None,
            data: Box::new([0u8; CACHE_BLOCK_SIZE]),
            valid: Span::EMPTY,
            dirty: Span::EMPTY,
            home: NodeId(0),
            in_dirty_list: false,
            flushing: false,
        }
    }

    fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// Snapshot of the manager's counters.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub writes_absorbed: u64,
    pub writes_passthrough: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub flush_blocks: u64,
    pub invalidated: u64,
    pub invalidated_dirty: u64,
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    writes_absorbed: AtomicU64,
    writes_passthrough: AtomicU64,
    evictions_clean: AtomicU64,
    evictions_dirty: AtomicU64,
    flush_blocks: AtomicU64,
    invalidated: AtomicU64,
    invalidated_dirty: AtomicU64,
}

/// Exact-LRU bookkeeping (ablation mode only).
struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    linked: Vec<bool>,
}

const NIL: u32 = u32::MAX;

impl LruList {
    fn new(n: usize) -> LruList {
        LruList {
            prev: vec![NIL; n],
            next: vec![NIL; n],
            head: NIL,
            tail: NIL,
            linked: vec![false; n],
        }
    }

    fn unlink(&mut self, i: u32) {
        if !self.linked[i as usize] {
            return;
        }
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[i as usize] = false;
    }

    /// Move to MRU position.
    fn touch(&mut self, i: u32) {
        self.unlink(i);
        self.prev[i as usize] = NIL;
        self.next[i as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.linked[i as usize] = true;
    }

    /// Frames from LRU to MRU.
    fn lru_order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = self.tail;
        while i != NIL {
            out.push(i);
            i = self.prev[i as usize];
        }
        out
    }
}

/// The shared, finely-locked block cache.
pub struct BufferManager {
    capacity: usize,
    policy: EvictPolicy,
    low_watermark: usize,
    high_watermark: usize,
    frames: Vec<Mutex<Frame>>,
    ref_bits: Vec<AtomicBool>,
    buckets: Vec<Mutex<Vec<(BlockKey, u32)>>>,
    free: Mutex<Vec<u32>>,
    dirty: Mutex<VecDeque<u32>>,
    clock_hand: Mutex<usize>,
    lru: Mutex<LruList>,
    stats: AtomicStats,
}

impl BufferManager {
    pub fn new(capacity: usize, policy: EvictPolicy) -> BufferManager {
        Self::with_watermarks(capacity, policy, capacity / 10, capacity / 4)
    }

    pub fn with_watermarks(
        capacity: usize,
        policy: EvictPolicy,
        low_watermark: usize,
        high_watermark: usize,
    ) -> BufferManager {
        assert!(capacity > 0);
        assert!(low_watermark <= high_watermark && high_watermark <= capacity);
        let n_buckets = (capacity / 4).next_power_of_two().max(16);
        BufferManager {
            capacity,
            policy,
            low_watermark,
            high_watermark,
            frames: (0..capacity).map(|_| Mutex::new(Frame::empty())).collect(),
            ref_bits: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            buckets: (0..n_buckets).map(|_| Mutex::new(Vec::new())).collect(),
            free: Mutex::new((0..capacity as u32).rev().collect()),
            dirty: Mutex::new(VecDeque::new()),
            clock_hand: Mutex::new(0),
            lru: Mutex::new(LruList::new(capacity)),
            stats: AtomicStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn free_frames(&self) -> usize {
        self.free.lock().len()
    }

    pub fn resident(&self) -> usize {
        self.capacity - self.free_frames()
    }

    pub fn dirty_queue_len(&self) -> usize {
        self.dirty.lock().len()
    }

    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            writes_absorbed: self.stats.writes_absorbed.load(Ordering::Relaxed),
            writes_passthrough: self.stats.writes_passthrough.load(Ordering::Relaxed),
            evictions_clean: self.stats.evictions_clean.load(Ordering::Relaxed),
            evictions_dirty: self.stats.evictions_dirty.load(Ordering::Relaxed),
            flush_blocks: self.stats.flush_blocks.load(Ordering::Relaxed),
            invalidated: self.stats.invalidated.load(Ordering::Relaxed),
            invalidated_dirty: self.stats.invalidated_dirty.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn bucket_of(&self, key: &BlockKey) -> usize {
        (key.hash() as usize) & (self.buckets.len() - 1)
    }

    fn touch(&self, idx: u32) {
        if self.policy.exact {
            self.lru.lock().touch(idx);
        } else {
            self.ref_bits[idx as usize].store(true, Ordering::Relaxed);
        }
    }

    /// Recency bookkeeping for a freshly inserted frame. Clock mode inserts
    /// with the reference bit *clear* (the block earns its second chance by
    /// being read); exact LRU links the frame at the MRU end.
    fn note_insert(&self, idx: u32) {
        if self.policy.exact {
            self.lru.lock().touch(idx);
        } else {
            self.ref_bits[idx as usize].store(false, Ordering::Relaxed);
        }
    }

    /// Look up `key` in the hash table (no data copy, no stats). Mostly for
    /// tests and diagnostics.
    pub fn contains(&self, key: BlockKey) -> bool {
        let b = self.buckets[self.bucket_of(&key)].lock();
        b.iter().any(|(k, _)| *k == key)
    }

    /// Try to serve `span` of `key` into `out` (`out.len() == span.len()`).
    /// Counts a hit (and refreshes recency) or a miss.
    pub fn try_read(&self, key: BlockKey, span: Span, out: &mut [u8]) -> bool {
        debug_assert_eq!(out.len(), span.len() as usize);
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            match b.iter().find(|(k, _)| *k == key) {
                Some(&(_, idx)) => {
                    let f = self.frames[idx as usize].lock();
                    if f.key == Some(key) && f.valid.covers(span) {
                        out.copy_from_slice(&f.data[span.start as usize..span.end as usize]);
                        idx
                    } else {
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        return false;
                    }
                }
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        };
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        self.touch(idx);
        true
    }

    /// Hit check without copying (used to plan request splitting). Counts
    /// stats exactly like [`BufferManager::try_read`].
    pub fn probe(&self, key: BlockKey, span: Span) -> bool {
        let b = self.buckets[self.bucket_of(&key)].lock();
        let hit = b.iter().any(|(k, idx)| {
            *k == key && {
                let f = self.frames[*idx as usize].lock();
                f.key == Some(key) && f.valid.covers(span)
            }
        });
        drop(b);
        if hit {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn push_free(&self, idx: u32) {
        self.free.lock().push(idx);
    }

    /// Take a frame from the free list or evict one. Returns the frame index
    /// and, when a dirty frame had to be sacrificed, its flush snapshot.
    fn acquire_frame(&self, allow_dirty_eviction: bool) -> Option<(u32, Option<FlushItem>)> {
        if let Some(idx) = self.free.lock().pop() {
            return Some((idx, None));
        }
        self.evict_one(allow_dirty_eviction)
    }

    /// Evict one block and return its (now unlinked) frame.
    fn evict_one(&self, allow_dirty: bool) -> Option<(u32, Option<FlushItem>)> {
        let candidates: Vec<u32> =
            if self.policy.exact { self.lru.lock().lru_order() } else { Vec::new() };
        // Pass 0: clean victims only (if clean_first). Pass 1: anything
        // (subject to allow_dirty).
        let passes: &[bool] = if self.policy.clean_first { &[true, false] } else { &[false] };
        for &clean_only in passes {
            let got = if self.policy.exact {
                self.evict_scan_exact(&candidates, clean_only, allow_dirty)
            } else {
                self.evict_scan_clock(clean_only, allow_dirty)
            };
            if got.is_some() {
                return got;
            }
        }
        None
    }

    fn try_evict_idx(
        &self,
        idx: u32,
        clean_only: bool,
        allow_dirty: bool,
    ) -> Option<(u32, Option<FlushItem>)> {
        // Read the key briefly, then retake in bucket → frame order.
        let key = {
            let f = self.frames[idx as usize].lock();
            match f.key {
                Some(k) => {
                    if f.flushing {
                        return None; // in flight to the iod: untouchable
                    }
                    if clean_only && f.is_dirty() {
                        return None;
                    }
                    if !allow_dirty && f.is_dirty() {
                        return None;
                    }
                    k
                }
                None => return None, // free or being reassigned
            }
        };
        let mut bucket = self.buckets[self.bucket_of(&key)].lock();
        let mut f = self.frames[idx as usize].lock();
        if f.key != Some(key) {
            return None; // changed hands meanwhile
        }
        if f.flushing {
            return None;
        }
        if clean_only && f.is_dirty() {
            return None;
        }
        if !allow_dirty && f.is_dirty() {
            return None;
        }
        let flush = if f.is_dirty() {
            self.stats.evictions_dirty.fetch_add(1, Ordering::Relaxed);
            let span = f.dirty;
            Some(FlushItem {
                key,
                home: f.home,
                span,
                data: f.data[span.start as usize..span.end as usize].to_vec(),
            })
        } else {
            self.stats.evictions_clean.fetch_add(1, Ordering::Relaxed);
            None
        };
        bucket.retain(|(k, _)| *k != key);
        f.key = None;
        f.valid = Span::EMPTY;
        f.dirty = Span::EMPTY;
        f.in_dirty_list = false;
        drop(f);
        drop(bucket);
        if self.policy.exact {
            self.lru.lock().unlink(idx);
        }
        Some((idx, flush))
    }

    fn evict_scan_clock(
        &self,
        clean_only: bool,
        allow_dirty: bool,
    ) -> Option<(u32, Option<FlushItem>)> {
        // Two sweeps: the first clears reference bits (second chance), the
        // second takes the first unreferenced candidate.
        let mut hand = self.clock_hand.lock();
        for _ in 0..2 * self.capacity {
            let idx = *hand as u32;
            *hand = (*hand + 1) % self.capacity;
            if self.ref_bits[idx as usize].swap(false, Ordering::Relaxed) {
                continue; // had its second chance
            }
            if let Some(got) = self.try_evict_idx(idx, clean_only, allow_dirty) {
                return Some(got);
            }
        }
        None
    }

    fn evict_scan_exact(
        &self,
        candidates: &[u32],
        clean_only: bool,
        allow_dirty: bool,
    ) -> Option<(u32, Option<FlushItem>)> {
        for &idx in candidates {
            if let Some(got) = self.try_evict_idx(idx, clean_only, allow_dirty) {
                return Some(got);
            }
        }
        None
    }

    /// Install fetched (clean) bytes for `key`. Fetches are whole blocks, so
    /// `span` is normally [`Span::FULL`]. Returns a flush snapshot if a
    /// dirty frame had to be evicted to make room.
    pub fn insert_clean(
        &self,
        key: BlockKey,
        home: NodeId,
        span: Span,
        bytes: &[u8],
    ) -> Option<FlushItem> {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        loop {
            {
                let b = self.buckets[self.bucket_of(&key)].lock();
                if let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) {
                    let mut f = self.frames[idx as usize].lock();
                    if f.key == Some(key) {
                        if f.valid.mergeable(span) {
                            f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                            f.valid = f.valid.merge(span);
                            f.home = home;
                        }
                        drop(f);
                        drop(b);
                        self.touch(idx);
                        return None;
                    }
                }
            }
            let Some((idx, flush)) = self.acquire_frame(true) else {
                return None; // cache wedged (all frames contended); drop insert
            };
            {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                if b.iter().any(|(k, _)| *k == key) {
                    // Someone beat us to it; recycle our frame and merge via
                    // the fast path above.
                    self.push_free(idx);
                    drop(b);
                    if let Some(fl) = flush {
                        return Some(fl);
                    }
                    continue;
                }
                let mut f = self.frames[idx as usize].lock();
                debug_assert!(f.key.is_none());
                f.key = Some(key);
                f.home = home;
                f.valid = span;
                f.dirty = Span::EMPTY;
                f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                f.in_dirty_list = false;
                b.push((key, idx));
            }
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            self.note_insert(idx);
            return flush;
        }
    }

    /// Write-behind absorb of `span` of `key`. On success the block is
    /// dirty in cache and the write can be acknowledged locally.
    pub fn write(&self, key: BlockKey, home: NodeId, span: Span, bytes: &[u8]) -> WriteOutcome {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        loop {
            {
                let b = self.buckets[self.bucket_of(&key)].lock();
                if let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) {
                    let mut f = self.frames[idx as usize].lock();
                    if f.key == Some(key) {
                        if !f.valid.mergeable(span) {
                            // Disjoint sub-block writes would leave an
                            // unknown gap; refuse rather than flush garbage.
                            self.stats.writes_passthrough.fetch_add(1, Ordering::Relaxed);
                            return WriteOutcome::PassThrough;
                        }
                        f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                        f.valid = f.valid.merge(span);
                        // Dirty spans may be disjoint (e.g. two sub-block
                        // writes into a fully-fetched block); the hull is
                        // safe because every gap byte is valid.
                        debug_assert!(f.valid.covers(f.dirty.hull(span)));
                        f.dirty = f.dirty.hull(span);
                        f.home = home;
                        let need_dirty_link = !f.in_dirty_list;
                        f.in_dirty_list = true;
                        drop(f);
                        drop(b);
                        if need_dirty_link {
                            self.dirty.lock().push_back(idx);
                        }
                        self.touch(idx);
                        self.stats.writes_absorbed.fetch_add(1, Ordering::Relaxed);
                        return WriteOutcome::Absorbed;
                    }
                }
            }
            // Need a frame, but never sacrifice dirty data for new writes:
            // that is the paper's write-blocking point.
            let Some((idx, flush)) = self.acquire_frame(false) else {
                self.stats.writes_passthrough.fetch_add(1, Ordering::Relaxed);
                return WriteOutcome::PassThrough;
            };
            debug_assert!(flush.is_none(), "clean eviction cannot yield a flush");
            {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                if b.iter().any(|(k, _)| *k == key) {
                    self.push_free(idx);
                    continue;
                }
                let mut f = self.frames[idx as usize].lock();
                debug_assert!(f.key.is_none());
                f.key = Some(key);
                f.home = home;
                f.valid = span;
                f.dirty = span;
                f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
                f.in_dirty_list = true;
                b.push((key, idx));
            }
            self.dirty.lock().push_back(idx);
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            self.stats.writes_absorbed.fetch_add(1, Ordering::Relaxed);
            self.note_insert(idx);
            return WriteOutcome::Absorbed;
        }
    }

    /// Overwrite `span` of `key` *only if resident and mergeable* — no
    /// allocation. Used by sync-writes: the cached copy is refreshed with
    /// the propagated data and, since the server now holds these bytes, any
    /// dirty state covered by the span is cleared. Returns whether the
    /// block was updated.
    pub fn update_if_present(&self, key: BlockKey, span: Span, bytes: &[u8]) -> bool {
        debug_assert_eq!(bytes.len(), span.len() as usize);
        let idx = {
            let b = self.buckets[self.bucket_of(&key)].lock();
            let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) else {
                return false;
            };
            let mut f = self.frames[idx as usize].lock();
            if f.key != Some(key) || !f.valid.mergeable(span) {
                return false;
            }
            f.data[span.start as usize..span.end as usize].copy_from_slice(bytes);
            f.valid = f.valid.merge(span);
            if span.covers(f.dirty) {
                f.dirty = Span::EMPTY;
                f.in_dirty_list = false;
            }
            idx
        };
        self.touch(idx);
        true
    }

    /// Collect up to `max` dirty blocks (oldest-dirtied first) and mark
    /// them *in flight*: the frames stay dirty and unevictable until the
    /// caller reports the write-back acknowledged via
    /// [`BufferManager::flush_complete`]. Writes landing during the flight
    /// merge into the frame and re-queue it for a follow-up flush.
    pub fn take_dirty(&self, max: usize) -> Vec<FlushItem> {
        let mut out = Vec::new();
        let mut requeue: Vec<u32> = Vec::new();
        while out.len() < max {
            let idx = {
                let mut d = self.dirty.lock();
                match d.pop_front() {
                    Some(i) => i,
                    None => break,
                }
            };
            let mut f = self.frames[idx as usize].lock();
            if !f.in_dirty_list || f.key.is_none() || !f.is_dirty() {
                f.in_dirty_list = false;
                continue; // stale queue entry
            }
            if f.flushing {
                // Re-dirtied while a flush is already in flight: leave it
                // queued for the next round.
                requeue.push(idx);
                continue;
            }
            let span = f.dirty;
            out.push(FlushItem {
                key: f.key.unwrap(),
                home: f.home,
                span,
                data: f.data[span.start as usize..span.end as usize].to_vec(),
            });
            f.flushing = true;
            f.in_dirty_list = false;
        }
        if !requeue.is_empty() {
            let mut d = self.dirty.lock();
            for idx in requeue.into_iter().rev() {
                d.push_front(idx);
            }
        }
        self.stats.flush_blocks.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The iod acknowledged the write-back of `key`'s `span`: the frame
    /// becomes clean (and evictable) unless new writes re-dirtied it during
    /// the flight, in which case the merged span stays queued for the next
    /// flush round.
    pub fn flush_complete(&self, key: BlockKey, span: Span) {
        let b = self.buckets[self.bucket_of(&key)].lock();
        let Some(&(_, idx)) = b.iter().find(|(k, _)| *k == key) else {
            return; // invalidated or evicted during the flight
        };
        let mut f = self.frames[idx as usize].lock();
        if f.key != Some(key) {
            return;
        }
        f.flushing = false;
        if !f.in_dirty_list && f.dirty == span {
            // No writes landed during the flight: clean.
            f.dirty = Span::EMPTY;
        }
        // Otherwise the (merged) dirty span is already queued for re-flush.
    }

    /// Drop cached copies of the listed blocks (sync-write coherence).
    /// Dirty copies are discarded — the sync-writer's data supersedes them.
    pub fn invalidate<I: IntoIterator<Item = BlockKey>>(&self, keys: I) -> (u64, u64) {
        let mut dropped = 0;
        let mut dropped_dirty = 0;
        for key in keys {
            let idx = {
                let mut b = self.buckets[self.bucket_of(&key)].lock();
                let Some(pos) = b.iter().position(|(k, _)| *k == key) else {
                    continue;
                };
                let (_, idx) = b.remove(pos);
                let mut f = self.frames[idx as usize].lock();
                debug_assert_eq!(f.key, Some(key));
                if f.is_dirty() {
                    dropped_dirty += 1;
                }
                f.key = None;
                f.valid = Span::EMPTY;
                f.dirty = Span::EMPTY;
                f.in_dirty_list = false;
                idx
            };
            if self.policy.exact {
                self.lru.lock().unlink(idx);
            }
            self.push_free(idx);
            dropped += 1;
        }
        self.stats.invalidated.fetch_add(dropped, Ordering::Relaxed);
        self.stats.invalidated_dirty.fetch_add(dropped_dirty, Ordering::Relaxed);
        (dropped, dropped_dirty)
    }

    /// Has the free list fallen below the low watermark? (the harvester's
    /// wake-up condition).
    pub fn needs_harvest(&self) -> bool {
        self.free_frames() < self.low_watermark
    }

    /// Harvester sweep: free clean blocks until the high watermark is
    /// reached; dirty blocks encountered are snapshot for urgent flushing
    /// (they become clean and harvestable next sweep).
    pub fn harvest(&self) -> Vec<FlushItem> {
        let mut flush = Vec::new();
        let mut guard = 0;
        while self.free_frames() < self.high_watermark && guard < 2 * self.capacity {
            guard += 1;
            match self.evict_one(false) {
                Some((idx, fl)) => {
                    debug_assert!(fl.is_none());
                    self.push_free(idx);
                }
                None => {
                    // Only dirty frames left: flush a batch and stop; the
                    // flusher acknowledgments make them evictable later.
                    flush.extend(self.take_dirty(self.high_watermark - self.free_frames()));
                    break;
                }
            }
        }
        flush
    }

    /// Keys currently resident (diagnostics/tests; O(capacity)).
    pub fn resident_keys(&self) -> Vec<BlockKey> {
        let mut out = Vec::new();
        for b in &self.buckets {
            for (k, _) in b.lock().iter() {
                out.push(*k);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvfs::Fid;

    fn key(b: u64) -> BlockKey {
        BlockKey::new(Fid(1), b)
    }

    fn full_block(fill: u8) -> Vec<u8> {
        vec![fill; CACHE_BLOCK_SIZE]
    }

    fn mgr(cap: usize) -> BufferManager {
        BufferManager::new(cap, EvictPolicy::default())
    }

    #[test]
    fn read_miss_then_insert_then_hit() {
        let m = mgr(4);
        let mut buf = vec![0u8; 4096];
        assert!(!m.try_read(key(0), Span::FULL, &mut buf));
        assert!(m.insert_clean(key(0), NodeId(2), Span::FULL, &full_block(7)).is_none());
        assert!(m.try_read(key(0), Span::FULL, &mut buf));
        assert!(buf.iter().all(|&b| b == 7));
        let s = m.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn partial_span_reads() {
        let m = mgr(4);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(9));
        let mut buf = vec![0u8; 100];
        assert!(m.try_read(key(0), Span::new(500, 600), &mut buf));
        assert!(buf.iter().all(|&b| b == 9));
    }

    #[test]
    fn partially_valid_block_serves_only_valid_span() {
        let m = mgr(4);
        // Absorb a sub-block write: bytes 1000..2000 valid.
        let out = m.write(key(3), NodeId(0), Span::new(1000, 2000), &vec![5u8; 1000]);
        assert_eq!(out, WriteOutcome::Absorbed);
        let mut buf = vec![0u8; 500];
        assert!(m.try_read(key(3), Span::new(1200, 1700), &mut buf));
        assert!(buf.iter().all(|&b| b == 5));
        let mut buf2 = vec![0u8; 100];
        assert!(!m.try_read(key(3), Span::new(0, 100), &mut buf2), "invalid span must miss");
    }

    #[test]
    fn eviction_prefers_clean_blocks() {
        let m = mgr(3);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(0));
        assert_eq!(m.write(key(1), NodeId(0), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        m.insert_clean(key(2), NodeId(0), Span::FULL, &full_block(2));
        // Cache full: 0 and 2 clean, 1 dirty. Inserting 3 must evict a clean
        // block, never the dirty one.
        let fl = m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(3));
        assert!(fl.is_none(), "clean eviction expected, got flush {:?}", fl);
        assert!(m.contains(key(1)), "dirty block must survive");
        assert_eq!(m.stats().evictions_clean, 1);
        assert_eq!(m.stats().evictions_dirty, 0);
    }

    #[test]
    fn insert_evicts_dirty_as_last_resort_and_returns_flush() {
        let m = mgr(2);
        assert_eq!(m.write(key(0), NodeId(4), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        assert_eq!(m.write(key(1), NodeId(4), Span::FULL, &full_block(2)), WriteOutcome::Absorbed);
        let fl = m.insert_clean(key(2), NodeId(0), Span::FULL, &full_block(3));
        let fl = fl.expect("dirty eviction must hand back a flush item");
        assert_eq!(fl.home, NodeId(4));
        assert_eq!(fl.span, Span::FULL);
        assert_eq!(fl.data.len(), CACHE_BLOCK_SIZE);
        assert_eq!(m.stats().evictions_dirty, 1);
    }

    #[test]
    fn writes_pass_through_when_cache_all_dirty() {
        let m = mgr(2);
        assert_eq!(m.write(key(0), NodeId(0), Span::FULL, &full_block(1)), WriteOutcome::Absorbed);
        assert_eq!(m.write(key(1), NodeId(0), Span::FULL, &full_block(2)), WriteOutcome::Absorbed);
        assert_eq!(
            m.write(key(2), NodeId(0), Span::FULL, &full_block(3)),
            WriteOutcome::PassThrough,
            "no clean frame to take: write must block/pass through"
        );
        assert_eq!(m.stats().writes_passthrough, 1);
        // A flush snapshot alone does not free space: the frames are in
        // flight until acknowledged.
        let flushed = m.take_dirty(10);
        assert_eq!(flushed.len(), 2);
        assert_eq!(
            m.write(key(2), NodeId(0), Span::FULL, &full_block(3)),
            WriteOutcome::PassThrough,
            "in-flight frames are not evictable"
        );
        for it in &flushed {
            m.flush_complete(it.key, it.span);
        }
        assert_eq!(m.write(key(2), NodeId(0), Span::FULL, &full_block(3)), WriteOutcome::Absorbed);
    }

    #[test]
    fn disjoint_subblock_write_passes_through() {
        let m = mgr(4);
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(0, 100), &[1u8; 100]),
            WriteOutcome::Absorbed
        );
        // Gap between 100 and 2000: absorbing would leave unknowable bytes
        // inside the flush hull.
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(2000, 2100), &[2u8; 100]),
            WriteOutcome::PassThrough
        );
        // Contiguous extension is fine.
        assert_eq!(
            m.write(key(0), NodeId(0), Span::new(100, 200), &[3u8; 100]),
            WriteOutcome::Absorbed
        );
    }

    #[test]
    fn take_dirty_snapshots_and_cleans() {
        let m = mgr(4);
        m.write(key(0), NodeId(1), Span::new(0, 1000), &vec![7u8; 1000]);
        m.write(key(1), NodeId(2), Span::FULL, &full_block(8));
        let items = m.take_dirty(10);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].key, key(0), "FIFO: oldest dirty first");
        assert_eq!(items[0].span, Span::new(0, 1000));
        assert!(items[0].data.iter().all(|&b| b == 7));
        assert_eq!(items[1].home, NodeId(2));
        assert!(m.take_dirty(10).is_empty(), "both flights outstanding");
        assert_eq!(m.dirty_queue_len(), 0);
        for it in &items {
            m.flush_complete(it.key, it.span);
        }
        assert!(m.take_dirty(10).is_empty(), "clean after acknowledgment");
    }

    #[test]
    fn redirty_after_flush_requeues() {
        let m = mgr(4);
        m.write(key(0), NodeId(0), Span::FULL, &full_block(1));
        let first = m.take_dirty(10);
        assert_eq!(first.len(), 1);
        // Re-dirty during the flight: queued, but not re-taken until the
        // outstanding flush is acknowledged.
        m.write(key(0), NodeId(0), Span::new(0, 10), &[2u8; 10]);
        assert!(m.take_dirty(10).is_empty(), "flight still outstanding");
        m.flush_complete(first[0].key, first[0].span);
        let items = m.take_dirty(10);
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].span,
            Span::FULL,
            "merged dirty span (flight span ∪ new write) re-flushes"
        );
        m.flush_complete(items[0].key, items[0].span);
        assert!(m.take_dirty(10).is_empty());
    }

    #[test]
    fn invalidate_drops_blocks_even_dirty() {
        let m = mgr(4);
        m.insert_clean(key(0), NodeId(0), Span::FULL, &full_block(1));
        m.write(key(1), NodeId(0), Span::FULL, &full_block(2));
        let (dropped, dropped_dirty) = m.invalidate(vec![key(0), key(1), key(9)]);
        assert_eq!(dropped, 2);
        assert_eq!(dropped_dirty, 1);
        assert!(!m.contains(key(0)));
        assert!(!m.contains(key(1)));
        assert_eq!(m.free_frames(), 4);
        // The stale dirty-queue entry must not produce a flush.
        assert!(m.take_dirty(10).is_empty());
    }

    #[test]
    fn clock_approximates_lru() {
        let m = mgr(4);
        for i in 0..4 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        // Touch 0..3 except 2; then insert: victim should be an untouched
        // block (2) after ref bits are consumed.
        let mut buf = vec![0u8; 4096];
        for i in [0u64, 1, 3] {
            assert!(m.try_read(key(i), Span::FULL, &mut buf));
        }
        m.insert_clean(key(10), NodeId(0), Span::FULL, &full_block(9));
        assert!(!m.contains(key(2)), "unreferenced block should be the clock victim");
    }

    #[test]
    fn exact_lru_evicts_strictly_oldest() {
        let m = BufferManager::new(3, EvictPolicy { exact: true, clean_first: true });
        for i in 0..3 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        let mut buf = vec![0u8; 4096];
        assert!(m.try_read(key(0), Span::FULL, &mut buf)); // 1 is now LRU
        m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(3));
        assert!(!m.contains(key(1)));
        assert!(m.contains(key(0)) && m.contains(key(2)) && m.contains(key(3)));
    }

    #[test]
    fn harvest_reaches_high_watermark() {
        let m = BufferManager::with_watermarks(10, EvictPolicy::default(), 2, 5);
        for i in 0..10 {
            m.insert_clean(key(i), NodeId(0), Span::FULL, &full_block(0));
        }
        assert_eq!(m.free_frames(), 0);
        assert!(m.needs_harvest());
        let flush = m.harvest();
        assert!(flush.is_empty(), "all clean: nothing to flush");
        assert!(m.free_frames() >= 5, "free {} below high watermark", m.free_frames());
        assert!(!m.needs_harvest());
    }

    #[test]
    fn harvest_flushes_dirty_when_no_clean_left() {
        let m = BufferManager::with_watermarks(4, EvictPolicy::default(), 2, 3);
        for i in 0..4 {
            m.write(key(i), NodeId(0), Span::FULL, &full_block(i as u8));
        }
        let flush = m.harvest();
        assert!(!flush.is_empty(), "harvester must push dirty blocks to the flusher");
        // Blocks stay resident and in flight; once the flush is
        // acknowledged a second harvest can free them.
        for it in &flush {
            m.flush_complete(it.key, it.span);
        }
        let flush2 = m.harvest();
        assert!(flush2.is_empty());
        assert!(m.free_frames() >= 3);
    }

    #[test]
    fn resident_keys_lists_contents() {
        let m = mgr(4);
        m.insert_clean(key(5), NodeId(0), Span::FULL, &full_block(0));
        m.insert_clean(key(3), NodeId(0), Span::FULL, &full_block(0));
        assert_eq!(m.resident_keys(), vec![key(3), key(5)]);
    }

    #[test]
    fn concurrent_stress_no_lost_frames() {
        use std::sync::Arc;
        let m = Arc::new(BufferManager::new(64, EvictPolicy::default()));
        let threads = 8;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut buf = vec![0u8; 4096];
                    for i in 0..2000u64 {
                        let k = BlockKey::new(Fid(t % 3), (i * 7 + t) % 200);
                        match i % 4 {
                            0 => {
                                let _ = m.try_read(k, Span::FULL, &mut buf);
                            }
                            1 => {
                                let _ = m.insert_clean(k, NodeId(0), Span::FULL, &buf);
                            }
                            2 => {
                                let _ = m.write(k, NodeId(0), Span::FULL, &buf);
                            }
                            _ => {
                                if i % 64 == 3 {
                                    m.take_dirty(8);
                                } else {
                                    let _ = m.invalidate([k]);
                                }
                            }
                        }
                    }
                });
            }
        });
        // Conservation: every frame is either free or reachable via a bucket.
        let resident = m.resident_keys().len();
        assert_eq!(resident + m.free_frames(), 64, "frames leaked or duplicated");
        // And all resident keys are unique.
        let keys = m.resident_keys();
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
    }
}
