//! Cache module configuration.

use crate::manager::EvictPolicy;
use sim_core::Dur;

/// Tunables of the per-node kernel cache module.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Cache capacity in 4 KB blocks. The paper uses 300 (1.2 MB),
    /// deliberately small relative to the data sets.
    pub capacity_blocks: usize,
    /// Replacement policy: which `kcache-policy` ranking runs (clock, exact
    /// LRU, LFU, 2Q, ARC, sharing-aware) plus the clean-first preference.
    /// Approximate LRU (clock) + clean-first by default, as in the paper.
    pub policy: EvictPolicy,
    /// Harvester wake-up threshold: free list below this many frames.
    pub low_watermark: usize,
    /// Harvester target: free frames after a sweep.
    pub high_watermark: usize,
    /// Delay between the free list crossing the watermark and the harvester
    /// thread actually running (kernel thread wake-up latency).
    pub harvester_wakeup: Dur,
    /// Period of the flusher thread.
    pub flush_interval: Dur,
    /// Max dirty blocks shipped per flusher round.
    pub flush_batch: usize,
    /// Write-behind on (the paper's design) or off (write-through
    /// ablation: every write forwards to the iod synchronously).
    pub write_behind: bool,
}

impl CacheConfig {
    /// The paper's configuration: 1.2 MB cache of 4 KB blocks.
    pub fn paper() -> CacheConfig {
        CacheConfig {
            capacity_blocks: 300,
            policy: EvictPolicy::default(),
            low_watermark: 30,
            high_watermark: 75,
            harvester_wakeup: Dur::millis(1),
            flush_interval: Dur::millis(500),
            flush_batch: 64,
            write_behind: true,
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_blocks * crate::block::CACHE_BLOCK_SIZE
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_1_2_mb() {
        let c = CacheConfig::paper();
        assert_eq!(c.capacity_bytes(), 1_228_800);
        assert!(c.low_watermark < c.high_watermark);
        assert!(c.high_watermark < c.capacity_blocks);
        assert!(c.write_behind);
    }
}
