//! Cache module configuration.

use crate::manager::EvictPolicy;
use kcache_adaptive::AdaptiveConfig;
use kcache_policy::AppId;
use sim_core::Dur;
use std::collections::BTreeMap;

/// How the frame pool is divided among applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// One pool for everyone — the paper's design and the default. Quotas,
    /// if any are configured, are ignored.
    #[default]
    Shared,
    /// Hard caps: an application at its quota must evict one of its own
    /// frames to insert a new one, and is denied the insert when it cannot
    /// (all of its frames pinned or dirty during a clean-only pass). No
    /// application's residency ever exceeds its quota.
    Strict,
    /// Caps with borrowing: an application at its quota may still grow by
    /// taking *free* frames (idle capacity, e.g. an inactive co-tenant's
    /// harvested frames). When the pool is full, over-quota applications
    /// feed on their own partition first and borrowed frames are reclaimed
    /// from the most over-quota borrower before anyone else is disturbed.
    Soft,
}

impl PartitionMode {
    /// Stable textual name (JSON configs, figure series labels).
    pub fn name(self) -> &'static str {
        match self {
            PartitionMode::Shared => "shared",
            PartitionMode::Strict => "strict",
            PartitionMode::Soft => "soft",
        }
    }

    /// Inverse of [`name`](PartitionMode::name).
    pub fn parse(s: &str) -> Option<PartitionMode> {
        match s {
            "shared" => Some(PartitionMode::Shared),
            "strict" => Some(PartitionMode::Strict),
            "soft" | "soft-borrowing" => Some(PartitionMode::Soft),
            _ => None,
        }
    }
}

impl std::fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-application frame quotas for the buffer manager.
///
/// Applications appear by [`AppId`]; an application with no entry (and all
/// traffic from [`AppId::UNKNOWN`]) is unconstrained, so an empty quota map
/// behaves exactly like [`PartitionMode::Shared`] regardless of mode. A
/// quota equal to the pool capacity is also behaviorally identical to the
/// shared pool — the app can never be pushed over it — which is what the
/// partitioning differential tests pin down.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionConfig {
    pub mode: PartitionMode,
    /// `AppId.0` → frame quota. Quotas need not sum to the capacity:
    /// under-committed pools leave slack for unquota'd traffic, and
    /// over-committed pools simply mean not everyone can be at quota at
    /// once.
    pub quotas: BTreeMap<u32, usize>,
}

impl PartitionConfig {
    /// The shared pool (no partitioning) — the paper's behavior.
    pub fn shared() -> PartitionConfig {
        PartitionConfig::default()
    }

    /// Strict partitions from `(app id, quota)` pairs.
    pub fn strict(quotas: impl IntoIterator<Item = (u32, usize)>) -> PartitionConfig {
        PartitionConfig { mode: PartitionMode::Strict, quotas: quotas.into_iter().collect() }
    }

    /// Soft (borrowing) partitions from `(app id, quota)` pairs.
    pub fn soft(quotas: impl IntoIterator<Item = (u32, usize)>) -> PartitionConfig {
        PartitionConfig { mode: PartitionMode::Soft, quotas: quotas.into_iter().collect() }
    }

    /// An even split of `capacity` frames over applications `0..n_apps`
    /// (the first `capacity % n_apps` apps get the remainder frames).
    pub fn even(mode: PartitionMode, n_apps: u32, capacity: usize) -> PartitionConfig {
        assert!(n_apps > 0, "even split over zero applications");
        let base = capacity / n_apps as usize;
        let rem = capacity % n_apps as usize;
        PartitionConfig {
            mode,
            quotas: (0..n_apps).map(|i| (i, base + usize::from((i as usize) < rem))).collect(),
        }
    }

    /// Quota of `app`, `None` when unconstrained.
    pub fn quota_of(&self, app: AppId) -> Option<usize> {
        if self.mode == PartitionMode::Shared || app == AppId::UNKNOWN {
            return None;
        }
        self.quotas.get(&app.0).copied()
    }

    /// Does this configuration actually constrain anyone?
    pub fn is_partitioned(&self) -> bool {
        self.mode != PartitionMode::Shared && !self.quotas.is_empty()
    }

    /// Sanity-check against a pool of `capacity` frames: every quota must
    /// be in `1..=capacity` (a zero quota would deny an app the cache
    /// entirely while still letting it run uncached — configure no cache
    /// instead) and no quota may name [`AppId::UNKNOWN`].
    pub fn validate(&self, capacity: usize) -> Result<(), String> {
        for (&app, &q) in &self.quotas {
            if app == AppId::UNKNOWN.0 {
                return Err("quota for AppId::UNKNOWN is meaningless".into());
            }
            if q == 0 || q > capacity {
                return Err(format!("quota {q} for app {app} out of range (1..={capacity})"));
            }
        }
        Ok(())
    }
}

/// How the mgr's block location directory is kept in sync with the
/// per-node caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryMode {
    /// Modules push both inserts and evictions: the directory is an exact
    /// view of cluster residency, every located peer fetch hits.
    #[default]
    Authoritative,
    /// Modules push inserts only — eviction removals stay off the hot path
    /// (the "Cache is King" argument). Directory entries go stale; a
    /// misdirected peer fetch comes back a miss and falls through to the
    /// iod disk. Staleness costs latency, never correctness.
    Hint,
}

impl DirectoryMode {
    pub fn name(self) -> &'static str {
        match self {
            DirectoryMode::Authoritative => "authoritative",
            DirectoryMode::Hint => "hint",
        }
    }

    pub fn parse(s: &str) -> Option<DirectoryMode> {
        match s {
            "authoritative" => Some(DirectoryMode::Authoritative),
            "hint" => Some(DirectoryMode::Hint),
            _ => None,
        }
    }
}

impl std::fmt::Display for DirectoryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cooperative cluster-wide caching: the remote-hit tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CooperativeConfig {
    /// Directory consistency regime at the mgr.
    pub directory: DirectoryMode,
    /// Cluster-aware eviction preference: evict duplicated copies of
    /// shared blocks before the last cached copy, keeping cluster-wide
    /// residency of the shared working set high. Off = naive cooperative
    /// caching (remote hits without eviction cooperation).
    pub singleton_preserving: bool,
}

impl Default for CooperativeConfig {
    fn default() -> Self {
        CooperativeConfig { directory: DirectoryMode::Authoritative, singleton_preserving: true }
    }
}

/// Tunables of the per-node kernel cache module.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Cache capacity in 4 KB blocks. The paper uses 300 (1.2 MB),
    /// deliberately small relative to the data sets.
    pub capacity_blocks: usize,
    /// Replacement policy: which `kcache-policy` ranking runs (clock, exact
    /// LRU, LFU, 2Q, ARC, sharing-aware) plus the clean-first preference.
    /// Approximate LRU (clock) + clean-first by default, as in the paper.
    pub policy: EvictPolicy,
    /// Per-application frame quotas (shared pool — no quotas — by
    /// default, as in the paper).
    pub partitioning: PartitionConfig,
    /// `Some` replaces the static `policy.kind` with the
    /// `kcache-adaptive` meta-policy over the listed candidates: ghost
    /// caches per candidate, epoch-based live switching, marginal-utility
    /// quota tuning. `None` (the default) keeps the static policy.
    pub adaptive: Option<AdaptiveConfig>,
    /// Cache accesses per epoch: every `epoch_accesses` hits+misses the
    /// buffer manager drives one `epoch_tick` through the policy (the
    /// adaptive controller's clock, and `SharingAware`'s referent decay).
    /// `0` (the default, the paper's behavior) disables epochs entirely.
    pub epoch_accesses: usize,
    /// Harvester wake-up threshold: free list below this many frames.
    pub low_watermark: usize,
    /// Harvester target: free frames after a sweep.
    pub high_watermark: usize,
    /// Delay between the free list crossing the watermark and the harvester
    /// thread actually running (kernel thread wake-up latency).
    pub harvester_wakeup: Dur,
    /// Period of the flusher thread.
    pub flush_interval: Dur,
    /// Max dirty blocks shipped per flusher round.
    pub flush_batch: usize,
    /// Write-behind on (the paper's design) or off (write-through
    /// ablation: every write forwards to the iod synchronously).
    pub write_behind: bool,
    /// `Some` enables the cooperative remote-hit tier: a block location
    /// directory at the mgr, peer fetches on local misses, and (when
    /// `singleton_preserving`) cluster-aware eviction. `None` (the
    /// default, the paper's behavior) keeps caches node-local.
    pub cooperative: Option<CooperativeConfig>,
    /// `Some` wires the `kcache-obs` observability hub through the
    /// module and its buffer manager: lock-free metric counters on the
    /// hit path, structured trace events (miss fills, eviction scans,
    /// peer fetches, epoch ticks, controller decisions), epoch-aligned
    /// metric snapshots. The cluster builder assigns each node its own
    /// per-node hub (federated by `ClusterObs`); handing one shared hub
    /// to every node still works. `None` (the default) keeps every hot
    /// path at one never-taken branch.
    pub obs: Option<std::sync::Arc<kcache_obs::ObsHub>>,
    /// Per-tier fetch-latency SLO targets; only consulted when `obs` is
    /// wired (a fetch slower than its tier's target increments that
    /// tier's `slo.fetch.burn.*` counter).
    pub slo: kcache_obs::SloTargets,
    /// Independent buffer-manager shards the frame pool is split into
    /// (capacity, watermarks and quotas divide across them; blocks route
    /// by key hash). `1` — the default and the paper's behavior — is the
    /// single-pool manager; higher values remove cross-core lock sharing
    /// at the cost of per-shard (rather than global) eviction ordering.
    pub shards: usize,
}

impl CacheConfig {
    /// The paper's configuration: 1.2 MB cache of 4 KB blocks.
    pub fn paper() -> CacheConfig {
        CacheConfig {
            capacity_blocks: 300,
            policy: EvictPolicy::default(),
            partitioning: PartitionConfig::shared(),
            adaptive: None,
            epoch_accesses: 0,
            low_watermark: 30,
            high_watermark: 75,
            harvester_wakeup: Dur::millis(1),
            flush_interval: Dur::millis(500),
            flush_batch: 64,
            write_behind: true,
            cooperative: None,
            obs: None,
            slo: kcache_obs::SloTargets::default(),
            shards: 1,
        }
    }

    /// The policy name this configuration runs — the static kind's name,
    /// or `"adaptive"` when the meta-policy wraps the candidates (what
    /// reports and figure series are labeled with).
    pub fn policy_label(&self) -> &'static str {
        if self.adaptive.is_some() {
            "adaptive"
        } else {
            self.policy.kind.name()
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_blocks * crate::block::CACHE_BLOCK_SIZE
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_1_2_mb() {
        let c = CacheConfig::paper();
        assert_eq!(c.capacity_bytes(), 1_228_800);
        assert!(c.low_watermark < c.high_watermark);
        assert!(c.high_watermark < c.capacity_blocks);
        assert!(c.write_behind);
        assert!(!c.partitioning.is_partitioned(), "the paper runs a shared pool");
    }

    #[test]
    fn partition_mode_names_round_trip() {
        for mode in [PartitionMode::Shared, PartitionMode::Strict, PartitionMode::Soft] {
            assert_eq!(PartitionMode::parse(mode.name()), Some(mode), "{mode}");
        }
        assert_eq!(PartitionMode::parse("soft-borrowing"), Some(PartitionMode::Soft));
        assert_eq!(PartitionMode::parse("nope"), None);
    }

    #[test]
    fn even_split_covers_capacity() {
        let p = PartitionConfig::even(PartitionMode::Strict, 3, 10);
        assert_eq!(p.quotas.values().sum::<usize>(), 10);
        assert_eq!(p.quota_of(AppId(0)), Some(4));
        assert_eq!(p.quota_of(AppId(2)), Some(3));
        assert_eq!(p.quota_of(AppId(9)), None, "unlisted apps are unconstrained");
        assert_eq!(p.quota_of(AppId::UNKNOWN), None);
        assert!(p.validate(10).is_ok());
    }

    #[test]
    fn shared_mode_ignores_quotas() {
        let mut p = PartitionConfig::strict([(0, 5)]);
        assert_eq!(p.quota_of(AppId(0)), Some(5));
        assert!(p.is_partitioned());
        p.mode = PartitionMode::Shared;
        assert_eq!(p.quota_of(AppId(0)), None);
        assert!(!p.is_partitioned());
    }

    #[test]
    fn validation_catches_bad_quotas() {
        assert!(PartitionConfig::strict([(0, 0)]).validate(8).is_err(), "zero quota");
        assert!(PartitionConfig::strict([(0, 9)]).validate(8).is_err(), "over capacity");
        assert!(
            PartitionConfig::strict([(u32::MAX, 4)]).validate(8).is_err(),
            "UNKNOWN is not an app"
        );
        assert!(PartitionConfig::soft([(0, 8), (1, 8)]).validate(8).is_ok(), "overcommit is legal");
    }
}
