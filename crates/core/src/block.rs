//! Cache block identity and in-block byte ranges.

use pvfs::Fid;
use std::fmt;

/// Cache block size: 4 KB, "to make it equal to page size" (§3.2).
pub const CACHE_BLOCK_SIZE: usize = 4096;

/// Identity of a cached block: a 4 KB-aligned slice of a logical file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    pub fid: Fid,
    /// Logical block number (`offset / 4096`).
    pub blk: u64,
}

impl BlockKey {
    pub fn new(fid: Fid, blk: u64) -> BlockKey {
        BlockKey { fid, blk }
    }

    /// First byte of this block in the file.
    pub fn offset(&self) -> u64 {
        self.blk * CACHE_BLOCK_SIZE as u64
    }

    /// Cheap, well-mixed hash for the open-hash table (fibonacci hashing on
    /// the combined words; we only rely on high-bit diffusion).
    #[inline]
    pub fn hash(&self) -> u64 {
        let x = self.fid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.blk;
        x.wrapping_mul(0xBF58_476D_1CE4_E5B9)
    }
}

impl fmt::Debug for BlockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.fid.0, self.blk)
    }
}

/// A byte span *within* one cache block: `start..end`, `end <= 4096`.
/// Frames track which part of the block holds valid bytes and which part is
/// dirty — sub-block writes must not flush stale neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub const EMPTY: Span = Span { start: 0, end: 0 };
    pub const FULL: Span = Span { start: 0, end: CACHE_BLOCK_SIZE as u32 };

    pub fn new(start: u32, end: u32) -> Span {
        debug_assert!(start <= end && end <= CACHE_BLOCK_SIZE as u32);
        Span { start, end }
    }

    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    pub fn is_full(&self) -> bool {
        *self == Span::FULL
    }

    /// Does `other` lie entirely within this span?
    pub fn covers(&self, other: Span) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Can the two spans merge into one contiguous span (overlap or touch)?
    pub fn mergeable(&self, other: Span) -> bool {
        self.is_empty() || other.is_empty() || (self.start <= other.end && other.start <= self.end)
    }

    /// Union of two mergeable spans.
    pub fn merge(&self, other: Span) -> Span {
        debug_assert!(self.mergeable(other));
        self.hull(other)
    }

    /// Smallest span containing both inputs, even when they are disjoint.
    /// Safe for *dirty* accumulation only when the gap bytes are known
    /// valid (flushing them re-writes bytes that already match the file).
    pub fn hull(&self, other: Span) -> Span {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// Block numbers covered by a file byte range.
pub fn blocks_of_range(offset: u64, len: u32) -> std::ops::RangeInclusive<u64> {
    if len == 0 {
        #[allow(clippy::reversed_empty_ranges)]
        return 1..=0; // empty
    }
    let first = offset / CACHE_BLOCK_SIZE as u64;
    let last = (offset + len as u64 - 1) / CACHE_BLOCK_SIZE as u64;
    first..=last
}

/// The portion of `block` covered by the file byte range, as an in-block
/// span.
pub fn span_in_block(block: u64, offset: u64, len: u32) -> Span {
    let bs = CACHE_BLOCK_SIZE as u64;
    let blk_start = block * bs;
    let blk_end = blk_start + bs;
    let r_start = offset.max(blk_start);
    let r_end = (offset + len as u64).min(blk_end);
    if r_start >= r_end {
        Span::EMPTY
    } else {
        Span::new((r_start - blk_start) as u32, (r_end - blk_start) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_offset_and_hash() {
        let k = BlockKey::new(Fid(3), 7);
        assert_eq!(k.offset(), 7 * 4096);
        let k2 = BlockKey::new(Fid(3), 8);
        assert_ne!(k.hash(), k2.hash());
        assert_eq!(k.hash(), BlockKey::new(Fid(3), 7).hash());
    }

    #[test]
    fn span_merge_rules() {
        let a = Span::new(0, 100);
        let b = Span::new(100, 200);
        assert!(a.mergeable(b), "touching spans merge");
        assert_eq!(a.merge(b), Span::new(0, 200));
        let c = Span::new(300, 400);
        assert!(!a.mergeable(c), "disjoint with gap does not merge");
        assert!(a.mergeable(Span::EMPTY));
        assert_eq!(a.merge(Span::EMPTY), a);
        assert_eq!(Span::EMPTY.merge(a), a);
    }

    #[test]
    fn span_hull_spans_gaps() {
        let a = Span::new(0, 100);
        let c = Span::new(300, 400);
        assert!(!a.mergeable(c));
        assert_eq!(a.hull(c), Span::new(0, 400));
        assert_eq!(c.hull(a), Span::new(0, 400));
        assert_eq!(a.hull(Span::EMPTY), a);
        assert_eq!(Span::EMPTY.hull(c), c);
        assert!(a.hull(c).covers(a) && a.hull(c).covers(c));
    }

    #[test]
    fn span_covers() {
        let v = Span::new(100, 1000);
        assert!(v.covers(Span::new(100, 1000)));
        assert!(v.covers(Span::new(500, 600)));
        assert!(!v.covers(Span::new(0, 200)));
        assert!(v.covers(Span::EMPTY));
        assert!(Span::FULL.covers(v));
    }

    #[test]
    fn blocks_of_range_boundaries() {
        assert_eq!(blocks_of_range(0, 4096).collect::<Vec<_>>(), vec![0]);
        assert_eq!(blocks_of_range(0, 4097).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(blocks_of_range(4095, 2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(blocks_of_range(8192, 100).collect::<Vec<_>>(), vec![2]);
        assert!(blocks_of_range(123, 0).collect::<Vec<_>>().is_empty());
    }

    #[test]
    fn span_in_block_clips() {
        // Range [1000, 9000) across blocks 0..2.
        assert_eq!(span_in_block(0, 1000, 8000), Span::new(1000, 4096));
        assert_eq!(span_in_block(1, 1000, 8000), Span::FULL);
        assert_eq!(span_in_block(2, 1000, 8000), Span::new(0, 9000 - 8192));
        assert_eq!(span_in_block(5, 1000, 8000), Span::EMPTY);
    }
}
