//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! structs with named fields by walking the raw `proc_macro` token
//! stream directly — the build environment has no crates.io access, so
//! `syn`/`quote` are unavailable. Supported attribute surface:
//!
//! * struct-level `#[serde(default)]` — start from `Default::default()`
//!   and overwrite fields present in the input;
//! * field-level `#[serde(default)]` — substitute `Default::default()`
//!   when the key is absent.
//!
//! Enums, tuple structs, and generic structs are rejected with a
//! `compile_error!` naming the limitation, so a future use shows up as
//! a clear build failure rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

struct StructDef {
    name: String,
    struct_default: bool,
    fields: Vec<Field>,
}

/// Scan one attribute body (the tokens inside `#[...]`) and report
/// whether it is `serde(default)`.
fn attr_is_serde_default(body: TokenStream) -> bool {
    let mut toks = body.into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Consume leading attributes from `toks`, returning whether any was
/// `#[serde(default)]`. Leaves `toks` positioned at the first
/// non-attribute token (returned).
fn skip_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.next() {
            if attr_is_serde_default(g.stream()) {
                has_default = true;
            }
        }
    }
    has_default
}

fn parse_struct(input: TokenStream) -> Result<StructDef, String> {
    let mut toks = input.into_iter().peekable();
    let struct_default = skip_attrs(&mut toks);

    // Visibility: `pub` possibly followed by `(...)`.
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }

    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {}
        other => return Err(format!("only structs are supported, found {other:?}")),
    }
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic struct `{name}` is not supported by the shim"));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit struct `{name}` is not supported by the shim"));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` is not supported by the shim"));
            }
            Some(_) => continue,
            None => return Err(format!("struct `{name}` has no body")),
        }
    };

    let mut fields = Vec::new();
    let mut ftoks = body.stream().into_iter().peekable();
    loop {
        let default = skip_attrs(&mut ftoks);
        // Field visibility.
        if matches!(ftoks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            ftoks.next();
            if matches!(ftoks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                ftoks.next();
            }
        }
        let fname = match ftoks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match ftoks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{fname}`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for t in ftoks.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name: fname, default });
    }

    Ok(StructDef { name, struct_default, fields })
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(def) => def,
        Err(e) => return error(&e),
    };
    let mut entries = String::new();
    for f in &def.fields {
        entries.push_str(&format!(
            "({:?}.to_string(), ::serde::Serialize::to_value(&self.{})),",
            f.name, f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(def) => def,
        Err(e) => return error(&e),
    };
    let body = if def.struct_default {
        // Start from Default and overwrite whatever keys are present.
        let mut arms = String::new();
        for f in &def.fields {
            arms.push_str(&format!(
                "{:?} => {{ out.{} = ::serde::Deserialize::from_value(val)?; }}\n",
                f.name, f.name
            ));
        }
        format!(
            "let fields = v.as_object()\
                 .ok_or_else(|| ::serde::Error::expected(\"object\", v))?;\n\
             let mut out = <{name} as ::core::default::Default>::default();\n\
             for (key, val) in fields {{\n\
                 match key.as_str() {{\n\
                     {arms}\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
             ::core::result::Result::Ok(out)",
            name = def.name,
        )
    } else {
        let mut inits = String::new();
        for f in &def.fields {
            let missing = if f.default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::core::result::Result::Err(::serde::Error::missing_field({:?}))",
                    f.name
                )
            };
            inits.push_str(&format!(
                "{fname}: match v.get({fname:?}) {{\n\
                     ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     ::core::option::Option::None => {missing},\n\
                 }},\n",
                fname = f.name,
            ));
        }
        format!(
            "if v.as_object().is_none() {{\n\
                 return ::core::result::Result::Err(::serde::Error::expected(\"object\", v));\n\
             }}\n\
             ::core::result::Result::Ok({name} {{ {inits} }})",
            name = def.name,
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .unwrap()
}
