//! Offline shim for the `serde` crate.
//!
//! The real serde decouples data structures from data formats through a
//! visitor-based `Serializer`/`Deserializer` pair. This workspace only
//! ever serializes to and from JSON, so the shim collapses that design
//! into a concrete intermediate tree ([`Value`]): `Serialize` lowers a
//! type into a `Value`, `Deserialize` raises one back, and the
//! `serde_json` shim renders/parses the tree. `#[derive(Serialize)]`,
//! `#[derive(Deserialize)]`, struct-level and field-level
//! `#[serde(default)]` are supported by the companion `serde_derive`
//! proc-macro crate.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree, the pivot between types and formats.
///
/// Object keys keep insertion order so serialized output matches field
/// declaration order, like real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected vs. what the tree held.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error::new(format!("expected {what}, got {}", got.kind()))
    }

    pub fn missing_field(name: &str) -> Error {
        Error::new(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
    )*};
}

ser_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

macro_rules! de_int {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let out = match *v {
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    // Accept integral floats (JSON has one number type),
                    // but only when the target value round-trips exactly —
                    // `as` saturates, so a bare cast would quietly turn
                    // 1e30 into MAX or -1.0 into 0.
                    Value::F64(n) if n.fract() == 0.0 => {
                        let cast = n as $t;
                        if cast as f64 == n {
                            Some(cast)
                        } else {
                            None
                        }
                    }
                    _ => return Err(Error::expected(stringify!($t), v)),
                };
                out.ok_or_else(|| {
                    Error::new(format!("number out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match *v {
            Value::F64(n) => Ok(n),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trips() {
        assert_eq!(u64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(i64::from_value(&Value::I64(-7)).unwrap(), -7);
        assert_eq!(u8::from_value(&Value::F64(255.0)).unwrap(), 255);
        assert_eq!(u16::from_value(&Value::I64(9)).unwrap(), 9);
    }

    #[test]
    fn out_of_range_ints_error_not_wrap() {
        // Sign wrap at the same width must be caught, not round-tripped.
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
        assert!(i64::from_value(&Value::U64(u64::MAX)).is_err());
        // Saturating float casts must be caught too.
        assert!(u8::from_value(&Value::F64(1e30)).is_err());
        assert!(u64::from_value(&Value::F64(-1.0)).is_err());
        assert!(u8::from_value(&Value::U64(256)).is_err());
        // Non-integral floats are a type error for integer targets.
        assert!(u32::from_value(&Value::F64(1.5)).is_err());
    }
}
