//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface the bench targets use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple measure-and-print loop instead of criterion's
//! statistical machinery. Each benchmark runs `sample_size` samples
//! after a warm-up bounded by `warm_up_time`, and reports the median
//! per-iteration time (plus derived throughput when configured).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup cost. The shim always runs one
/// setup per batch of one routine call; the variant only exists for
/// source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_bench(self, None, &name.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(self.criterion, self.throughput, &full, f);
        self
    }

    /// Explicit end of the group; all reporting already happened.
    pub fn finish(self) {}
}

pub struct Bencher {
    /// Iterations to run in the next measured sample.
    iters: u64,
    /// Measured duration of the sample, filled by `iter*`.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    throughput: Option<Throughput>,
    name: &str,
    mut f: F,
) {
    // Warm-up: also sizes the measured samples so each one is neither
    // instantaneous nor unbounded.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_up_start = Instant::now();
    loop {
        f(&mut b);
        if warm_up_start.elapsed() >= c.warm_up_time {
            break;
        }
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters_per_sample = if per_iter > 0.0 { (budget / per_iter) as u64 } else { 1 << 10 };
    b.iters = iters_per_sample.clamp(1, 1 << 24);

    let mut samples: Vec<f64> = (0..c.sample_size)
        .map(|_| {
            f(&mut b);
            b.elapsed.as_secs_f64() / b.iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];

    let rate = |count: u64| {
        if median > 0.0 {
            count as f64 / median
        } else {
            f64::INFINITY
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{name}: {} ns/iter, {:.0} elem/s", format_ns(median), rate(n));
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            println!("{name}: {} ns/iter, {:.0} B/s", format_ns(median), rate(n));
        }
        None => println!("{name}: {} ns/iter", format_ns(median)),
    }
}

fn format_ns(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns >= 1e6 {
        format!("{:.1}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        assert!(ran > 0);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
