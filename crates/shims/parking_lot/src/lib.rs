//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly). Performance characteristics
//! differ from the real crate, but the semantics relied on by this
//! workspace — mutual exclusion and guard-based access — are identical.
//! If a thread panics while holding a lock, the underlying std poison
//! flag is cleared on the next acquisition, matching `parking_lot`'s
//! no-poisoning behaviour.

use std::fmt;
use std::sync::TryLockError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}
