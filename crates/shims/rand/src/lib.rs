//! Offline shim for the `rand` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the *exact API subset* it consumes: the [`RngCore`] trait and
//! its [`Error`] type. Generators themselves (e.g. `sim_core::DetRng`)
//! live in the workspace and only implement this trait so downstream
//! code can stay generic over an RNG.

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The in-tree generators are infallible, so this is never constructed;
/// it exists to keep trait signatures source-compatible with the real
/// `rand` crate.
#[derive(Debug)]
pub struct Error {
    _private: (),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
