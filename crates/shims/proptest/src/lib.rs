//! Offline shim for the `proptest` crate.
//!
//! Supports the macro surface this workspace's property tests use:
//!
//! ```ignore
//! proptest! {
//!     #[test]
//!     fn prop(x in 0u64..100, v in proptest::collection::vec((0u8..5, 0u64..64), 1..300)) {
//!         prop_assert!(x < 100);
//!     }
//! }
//! ```
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with the drawn values' seed;
//! * fixed case count ([`CASES`]) instead of adaptive config;
//! * the RNG is a per-test deterministic SplitMix64 stream (seeded from
//!   the test name), so failures reproduce across runs and machines.

use std::ops::Range;

/// Number of cases each property runs. Kept moderate: these properties
/// drive whole operation sequences per case, not single assertions.
pub const CASES: usize = 64;

pub mod test_runner {
    /// SplitMix64 — the same generator family the simulator uses, kept
    /// private to the test harness so property draws never perturb
    /// simulation streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Deterministic seed from a test's name.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; bias is irrelevant at test scale.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for drawing values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Strategy returned by [`crate::any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> AnyStrategy<T> {
        pub fn new() -> AnyStrategy<T> {
            AnyStrategy { _marker: std::marker::PhantomData }
        }
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `any::<T>()` — draw an unconstrained value of `T`.
pub fn any<T>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(element_strategy, len_range)` — like proptest's.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each property body over [`CASES`] deterministic draws.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..$crate::CASES {
                    // Rebind so a failure message can name the case.
                    let _case: usize = case;
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
}

/// Without shrinking there is nothing to propagate: assert directly.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

// Re-export under the paths real proptest offers.
pub use strategy::Strategy;

/// Ranged strategies live directly on `std::ops::Range`; this alias
/// documents the supported element types at one place.
pub type SizeRange = Range<usize>;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_of_tuples(ops in collection::vec((0u8..5, 0u64..64), 1..300)) {
            prop_assert!(!ops.is_empty() && ops.len() < 300);
            for (a, b) in ops {
                prop_assert!(a < 5 && b < 64);
            }
        }

        #[test]
        fn any_bool_draws_both(flags in collection::vec(any::<bool>(), 64..65)) {
            // With 64 draws, both values appear astronomically often.
            prop_assert!(flags.iter().any(|&f| f) && flags.iter().any(|&f| !f));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
