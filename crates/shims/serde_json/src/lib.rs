//! Offline shim for the `serde_json` crate.
//!
//! Renders and parses JSON against the `serde` shim's [`serde::Value`]
//! tree. Implements the call surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// 1-based line/column of a parse error, when known.
    pos: Option<(usize, usize)>,
}

impl Error {
    fn parse(msg: impl Into<String>, line: usize, col: usize) -> Error {
        Error { msg: msg.into(), pos: Some((line, col)) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some((line, col)) => write!(f, "{} at line {line} column {col}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error { msg: e.to_string(), pos: None }
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---- rendering ----

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => render_f64(*n, out),
        Value::Str(s) => render_str(s, out),
        Value::Array(items) => render_seq(
            items.iter(),
            items.len(),
            indent,
            level,
            out,
            ('[', ']'),
            |item, out, ind, lvl| render(item, ind, lvl, out),
        ),
        Value::Object(fields) => render_seq(
            fields.iter(),
            fields.len(),
            indent,
            level,
            out,
            ('{', '}'),
            |(k, val), out, ind, lvl| {
                render_str(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                render(val, ind, lvl, out);
            },
        ),
    }
}

fn render_seq<I: Iterator>(
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    (open, close): (char, char),
    mut each: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        each(item, out, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn render_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        // Keep integral floats distinguishable as numbers with a
        // fractional part, matching serde_json ("1.0" not "1").
        if n.fract() == 0.0 && n.abs() < 1e15 {
            out.push_str(&format!("{n:.1}"));
        } else {
            out.push_str(&n.to_string());
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::parse(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.err("expected `,` or `]`"));
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            return Err(self.err("expected `,` or `}`"));
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs unsupported: reject rather
                            // than silently corrupt.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_nested_config() {
        let text = r#"{ "cluster": { "nodes": 6, "caching": true },
                       "apps": [ { "name": "a", "locality": 0.5 } ] }"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("cluster").unwrap().get("nodes"), Some(&Value::U64(6)));
        assert_eq!(
            v.get("apps").unwrap(),
            &Value::Array(vec![Value::Object(vec![
                ("name".into(), Value::Str("a".into())),
                ("locality".into(), Value::F64(0.5)),
            ])])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{ nope }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
