//! Offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer that
//! clones in O(1). Backed by `Arc<[u8]>` plus a (start, len) window so
//! `slice` is also O(1), matching the real crate's semantics for the
//! operations this workspace uses (construction from `Vec<u8>`/slices,
//! deref to `[u8]`, cheap clone, sub-slicing).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let data: Arc<[u8]> = Arc::from(data);
        Bytes { start: 0, len: data.len(), data }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(lo <= hi && hi <= self.len, "slice {lo}..{hi} out of bounds for {}", self.len);
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, len: hi - lo }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes { start: 0, len: data.len(), data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes { start: 0, len: data.len(), data }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        let c = s2.clone();
        assert_eq!(c, s2);
    }

    #[test]
    fn empty() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(&b[..], &[] as &[u8]);
    }
}
