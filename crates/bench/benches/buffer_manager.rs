//! Component benches for the buffer manager — including the paper's
//! central implementation argument: approximate (clock) LRU keeps the
//! per-access cost low, where exact LRU "can result in a significant
//! overhead at each read/write invocation".
//!
//! Beyond the criterion groups, this target owns the **hit-path
//! arbitration** (`BENCH_hitpath.json`): multi-threaded pure-hit
//! throughput of the drained lock-free fast path against the eager
//! leaf-lock path (`BufferManager::builder(..).eager_accounting(true)`), for the
//! static clock policy and the single-candidate adaptive wrapper (whose
//! eager mode additionally feeds one ghost per candidate inside the
//! lock). Run with `--quick` for the CI smoke variant; the JSON is
//! parsed back after writing, so a run doubles as the format check.
//!
//! It also owns the observability guard (`BENCH_obs.json`): the same
//! drained clock hit storm with and without a wired `kcache-obs` hub,
//! proving telemetry costs no more than measurement noise on the path
//! the paper optimizes.
//!
//! Finally, the shard sweep (`BENCH_shard.json`): hit- and miss-path
//! throughput across `--shards` 1/2/4/8 against the default-builder
//! baseline. The shards=1 facade must price identically to the
//! unsharded baseline (CI gates at 3 %), and miss-path throughput must
//! not *decrease* as shards are added — on a single-CPU container the
//! curve is flat (threads serialize regardless of lock granularity),
//! which the report records as acceptable parity via the `cpus` field.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use kcache::{
    AdaptiveConfig, BlockKey, BufferManager, EvictPolicy, PartitionConfig, PolicyKind, Span,
};
use pvfs::Fid;
use serde::{Deserialize, Serialize};
use sim_net::NodeId;
use std::sync::Arc;
use std::time::Instant;

fn key(b: u64) -> BlockKey {
    BlockKey::new(Fid(1), b)
}

fn filled_manager(policy: EvictPolicy, cap: usize) -> BufferManager {
    let m = BufferManager::builder(cap).policy(policy).build();
    let buf = vec![0xABu8; 4096];
    for b in 0..cap as u64 {
        m.insert_clean(key(b), NodeId(0), Span::FULL, &buf);
    }
    m
}

/// Hit path: the per-access bookkeeping cost the paper worries about,
/// now measured across the whole policy family — this is the number that
/// justifies clock over exact LRU, and prices LFU/2Q/ARC/sharing-aware.
fn bench_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_path");
    g.throughput(Throughput::Elements(1));
    for kind in PolicyKind::ALL {
        let name = kind.name();
        let m = filled_manager(EvictPolicy::of(kind), 300);
        let mut out = vec![0u8; 4096];
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 7) % 300;
                assert!(m.try_read(key(i), Span::FULL, &mut out));
            })
        });
    }
    g.finish();
}

/// Miss + insert + eviction churn.
fn bench_insert_evict(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_evict");
    g.throughput(Throughput::Elements(1));
    for kind in PolicyKind::ALL {
        let name = kind.name();
        let m = filled_manager(EvictPolicy::of(kind), 300);
        let buf = vec![0xCDu8; 4096];
        let mut next = 300u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                next += 1;
                m.insert_clean(key(next), NodeId(0), Span::FULL, &buf);
            })
        });
    }
    g.finish();
}

/// Write-behind absorb path (copy + dirty-list linkage).
fn bench_write_absorb(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_absorb");
    g.throughput(Throughput::Bytes(4096));
    let buf = vec![0xEFu8; 4096];
    g.bench_function("absorb_then_flush_cycle", |b| {
        b.iter_batched(
            || BufferManager::builder(300).build(),
            |m| {
                for blk in 0..128u64 {
                    let _ = m.write(key(blk), NodeId(0), Span::FULL, &buf);
                }
                let items = m.take_dirty(128);
                for it in &items {
                    m.flush_complete(it.key, it.span);
                }
                items.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Multi-threaded contention: the fine-grained-locking claim (§3.2).
fn bench_concurrent(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent_access");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("{}_threads", threads), |b| {
            b.iter_batched(
                || Arc::new(filled_manager(EvictPolicy::default(), 1024)),
                |m| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                let mut out = vec![0u8; 4096];
                                for i in 0..2000u64 {
                                    let k = key((i * 13 + t as u64 * 97) % 1024);
                                    let _ = m.try_read(k, Span::FULL, &mut out);
                                }
                            });
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_hit_path, bench_insert_evict, bench_write_absorb, bench_concurrent
}

// ---------------------------------------------------------------------
// Hit-path arbitration: eager leaf-lock vs drained lock-free fast path.
// ---------------------------------------------------------------------

const HITPATH_CAPACITY: usize = 1024;

#[derive(Debug, Serialize, Deserialize)]
struct HitPathResult {
    /// "eager" (apply under the policy lock at access time) or "drained"
    /// (atomic ref word + event ring, applied in batches).
    mode: String,
    /// "clock" or "adaptive" (single clock candidate: the eager path pays
    /// per-access ghost feeding inside the lock).
    policy: String,
    threads: usize,
    total_ops: u64,
    secs: f64,
    mops_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Speedup {
    policy: String,
    threads: usize,
    /// drained throughput / eager throughput.
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct HitPathReport {
    bench: String,
    capacity: usize,
    quick: bool,
    results: Vec<HitPathResult>,
    speedups: Vec<Speedup>,
}

/// Frames reserved (by strict quota) for the churn thread's partition, so
/// its eviction scans can never displace the readers' resident set.
const CHURN_QUOTA: usize = 64;
const READ_SET: u64 = (HITPATH_CAPACITY - CHURN_QUOTA) as u64;
const CHURN_APP: kcache::AppId = kcache::AppId(1);

fn hitpath_manager(policy: &str, eager: bool) -> BufferManager {
    let adaptive = match policy {
        "adaptive" => Some(AdaptiveConfig::new([PolicyKind::Clock])),
        _ => None,
    };
    let m = BufferManager::builder(HITPATH_CAPACITY)
        .watermarks(0, HITPATH_CAPACITY / 4)
        .partitioning(PartitionConfig::strict([(CHURN_APP.0, CHURN_QUOTA)]))
        .adaptive(adaptive)
        .epoch_accesses(0)
        .eager_accounting(eager)
        .build();
    let buf = vec![0xABu8; 4096];
    for b in 0..READ_SET {
        m.insert_clean(key(b), NodeId(0), Span::FULL, &buf);
    }
    m
}

/// Hit storm with one churn thread: `threads` reader threads serve
/// resident 64 B-span reads (small spans, so the per-access *bookkeeping*
/// cost under measurement is not drowned by a 4 KB memcpy per read) while
/// one churner inserts fresh blocks into its own strict partition — every
/// insert is a miss plus an owner-filtered eviction scan that holds the
/// policy lock (and can never displace the readers' set). On the eager
/// path every reader hit must take that same lock — the convoy the
/// drained fast path removes. `threads == 1` runs no churner: the
/// uncontended per-hit cost.
fn measure_hits(m: &BufferManager, threads: usize, per_thread: u64) -> (u64, f64) {
    measure_hits_storm(m, threads, per_thread, threads > 1)
}

fn measure_hits_storm(
    m: &BufferManager,
    threads: usize,
    per_thread: u64,
    churn: bool,
) -> (u64, f64) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let live_readers = AtomicUsize::new(threads);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let live_readers = &live_readers;
            s.spawn(move || {
                let mut out = vec![0u8; 64];
                let span = Span::new(128, 192);
                let mut b = (t as u64 * 131) % READ_SET;
                for _ in 0..per_thread {
                    b = (b + 7) % READ_SET;
                    assert!(m.try_read(key(b), span, &mut out));
                }
                live_readers.fetch_sub(1, Ordering::Relaxed);
            });
        }
        if churn {
            let live_readers = &live_readers;
            s.spawn(move || {
                let buf = vec![0xCDu8; 4096];
                let mut next = 0u64;
                while live_readers.load(Ordering::Relaxed) > 0 {
                    next += 1;
                    let k = key(1_000_000 + next % (4 * CHURN_QUOTA as u64));
                    let _ = m.insert_clean_by(k, NodeId(0), Span::FULL, &buf, CHURN_APP);
                }
            });
        }
    });
    (threads as u64 * per_thread, start.elapsed().as_secs_f64())
}

fn hitpath_report(quick: bool, json_path: &str) {
    let per_thread: u64 = if quick { 30_000 } else { 300_000 };
    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for policy in ["clock", "adaptive"] {
        for &threads in &[1usize, 2, 4, 8] {
            let mut rates = [0.0f64; 2];
            for (i, mode) in ["eager", "drained"].iter().enumerate() {
                let m = hitpath_manager(policy, *mode == "eager");
                measure_hits(&m, threads, per_thread / 4); // warm-up
                                                           // Median of three samples: one timeslice-starved run must
                                                           // not decide the arbitration.
                let mut samples: Vec<(u64, f64)> =
                    (0..3).map(|_| measure_hits(&m, threads, per_thread)).collect();
                samples.sort_by(|a, b| (a.1).total_cmp(&b.1));
                let (ops, secs) = samples[1];
                let rate = ops as f64 / secs;
                rates[i] = rate;
                println!("hitpath/{policy}/{mode}/{threads}t: {:.2} Mops/s", rate / 1e6);
                results.push(HitPathResult {
                    mode: mode.to_string(),
                    policy: policy.to_string(),
                    threads,
                    total_ops: ops,
                    secs,
                    mops_per_sec: rate / 1e6,
                });
            }
            speedups.push(Speedup {
                policy: policy.to_string(),
                threads,
                speedup: rates[1] / rates[0],
            });
        }
    }
    for s in &speedups {
        println!(
            "hitpath speedup {}/{}t: {:.2}x drained over eager",
            s.policy, s.threads, s.speedup
        );
    }
    let report = HitPathReport {
        bench: "buffer_manager/hitpath".into(),
        capacity: HITPATH_CAPACITY,
        quick,
        results,
        speedups,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(json_path, &text).expect("write BENCH_hitpath.json");
    // Round-trip: a bench run doubles as the JSON format check.
    let parsed: HitPathReport = serde_json::from_str(&text).expect("re-parse report");
    assert_eq!(parsed.results.len(), report.results.len());
    println!("hitpath report written to {json_path} ({} results, parse OK)", report.results.len());
}

// ---------------------------------------------------------------------
// Observability guard: obs-on vs obs-off hit path (`BENCH_obs.json`).
// ---------------------------------------------------------------------

#[derive(Debug, Serialize, Deserialize)]
struct ObsOverhead {
    policy: String,
    threads: usize,
    /// (obs_off - obs_on) / obs_off, in percent; negative means obs-on
    /// measured faster (noise floor).
    overhead_pct: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ObsReport {
    bench: String,
    capacity: usize,
    quick: bool,
    results: Vec<HitPathResult>,
    overheads: Vec<ObsOverhead>,
}

fn obs_manager(obs_on: bool) -> BufferManager {
    let obs = obs_on.then(|| kcache::ObsHub::new(kcache::obs::DEFAULT_TRACE_CAPACITY));
    let m = BufferManager::builder(HITPATH_CAPACITY)
        .watermarks(0, HITPATH_CAPACITY / 4)
        .partitioning(PartitionConfig::strict([(CHURN_APP.0, CHURN_QUOTA)]))
        .epoch_accesses(0)
        .obs(obs, 0)
        .build();
    let buf = vec![0xABu8; 4096];
    for b in 0..READ_SET {
        m.insert_clean(key(b), NodeId(0), Span::FULL, &buf);
    }
    m
}

/// The telemetry price on the number this crate exists to defend: the
/// drained clock hit path, with and without a wired [`kcache::ObsHub`].
/// An obs-on hit runs the *same* instructions as an obs-off hit — the
/// hub's hit/miss counters are deferred mirrors folded in at sync
/// points, never touched per access — so the two rates must stay within
/// the measurement noise of each other (the repo gate is 3 %). A hit
/// storm with no churner: the quantity under test is the per-hit
/// telemetry cost, and adding an insert/evict thread would measure lock
/// arbitration and scheduler behavior instead (the hitpath report
/// above already owns that axis).
///
/// Protocol: samples alternate obs-off/obs-on (machine drift lands on
/// both sides equally) and each side reports its best of five — the
/// sample least disturbed by the scheduler — because the quantity under
/// test is a code-path cost, not run-to-run variance.
fn obs_report(quick: bool, json_path: &str) {
    // Longer windows than the hitpath report: a 3% gate needs samples
    // long enough to average over timer interrupts and scheduler ticks.
    let per_thread: u64 = if quick { 30_000 } else { 1_000_000 };
    let mut results = Vec::new();
    let mut overheads = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let managers = [obs_manager(false), obs_manager(true)];
        for m in &managers {
            measure_hits_storm(m, threads, per_thread / 4, false); // warm-up
        }
        let mut best: [Option<(u64, f64)>; 2] = [None, None];
        for _ in 0..5 {
            for (i, m) in managers.iter().enumerate() {
                let (ops, secs) = measure_hits_storm(m, threads, per_thread, false);
                if best[i].is_none_or(|(_, b)| secs < b) {
                    best[i] = Some((ops, secs));
                }
            }
        }
        let mut rates = [0.0f64; 2];
        for (i, mode) in ["obs_off", "obs_on"].iter().enumerate() {
            let (ops, secs) = best[i].expect("sampled");
            let rate = ops as f64 / secs;
            rates[i] = rate;
            println!("obs/{mode}/{threads}t: {:.2} Mops/s", rate / 1e6);
            results.push(HitPathResult {
                mode: mode.to_string(),
                policy: "clock".into(),
                threads,
                total_ops: ops,
                secs,
                mops_per_sec: rate / 1e6,
            });
        }
        let overhead_pct = (rates[0] - rates[1]) / rates[0] * 100.0;
        println!("obs overhead {threads}t: {overhead_pct:.2}%");
        overheads.push(ObsOverhead { policy: "clock".into(), threads, overhead_pct });
    }
    let report = ObsReport {
        bench: "buffer_manager/obs_hitpath".into(),
        capacity: HITPATH_CAPACITY,
        quick,
        results,
        overheads,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialize obs report");
    std::fs::write(json_path, &text).expect("write BENCH_obs.json");
    let parsed: ObsReport = serde_json::from_str(&text).expect("re-parse obs report");
    assert_eq!(parsed.results.len(), report.results.len());
    println!("obs report written to {json_path} ({} results, parse OK)", report.results.len());
}

// ---------------------------------------------------------------------
// Shard sweep: per-shard leaf locks vs the single-shard facade
// (`BENCH_shard.json`).
// ---------------------------------------------------------------------

/// Working set for the shard hit storm: half the capacity, so hash-skew
/// across per-shard slices never forces evictions of the read set.
const SHARD_READ_SET: u64 = (HITPATH_CAPACITY / 2) as u64;

#[derive(Debug, Serialize, Deserialize)]
struct ShardResult {
    /// "hit" (resident reads) or "miss" (insert + eviction churn).
    path: String,
    /// "baseline" (default builder, no shards call) or "sharded"
    /// (explicit `.shards(n)`).
    mode: String,
    shards: usize,
    threads: usize,
    total_ops: u64,
    secs: f64,
    mops_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ShardReport {
    bench: String,
    capacity: usize,
    quick: bool,
    /// Host parallelism at measurement time. With `cpus == 1` the
    /// miss-path curve is expected to be flat: threads serialize on the
    /// scheduler regardless of lock granularity, so flat parity (not
    /// scaling) is the acceptance bar recorded here.
    cpus: usize,
    notes: String,
    results: Vec<ShardResult>,
}

fn shard_manager(shards: Option<usize>) -> BufferManager {
    let mut b = BufferManager::builder(HITPATH_CAPACITY)
        .watermarks(0, HITPATH_CAPACITY / 4)
        .epoch_accesses(0);
    if let Some(n) = shards {
        b = b.shards(n);
    }
    let m = b.build();
    let buf = vec![0xABu8; 4096];
    for blk in 0..SHARD_READ_SET {
        m.insert_clean(key(blk), NodeId(0), Span::FULL, &buf);
    }
    m
}

/// Pure-hit storm over the shard working set. No success assertion:
/// hash routing splits capacity unevenly across shards, so a rare
/// straggler miss must not abort the measurement (it still prices a
/// full lookup, which is the quantity under test).
fn measure_shard_hits(m: &BufferManager, threads: usize, per_thread: u64) -> (u64, f64) {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut out = vec![0u8; 64];
                let span = Span::new(128, 192);
                let mut b = (t as u64 * 131) % SHARD_READ_SET;
                for _ in 0..per_thread {
                    b = (b + 7) % SHARD_READ_SET;
                    let _ = m.try_read(key(b), span, &mut out);
                }
            });
        }
    });
    (threads as u64 * per_thread, start.elapsed().as_secs_f64())
}

/// Miss-path storm: every insert is a miss plus (once warm) an eviction
/// scan under the owning shard's policy lock — the contention sharding
/// divides. Thread-disjoint key ranges spread across shards by hash.
fn measure_shard_misses(m: &BufferManager, threads: usize, per_thread: u64) -> (u64, f64) {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let buf = vec![0xCDu8; 4096];
                let mut next = 2_000_000_000u64 + t as u64 * 1_000_000_000;
                for _ in 0..per_thread {
                    next += 1;
                    m.insert_clean(key(next), NodeId(0), Span::FULL, &buf);
                }
            });
        }
    });
    (threads as u64 * per_thread, start.elapsed().as_secs_f64())
}

fn shard_report(quick: bool, json_path: &str) {
    let hit_per_thread: u64 = if quick { 30_000 } else { 300_000 };
    let miss_per_thread: u64 = if quick { 5_000 } else { 50_000 };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();
    // (mode, shards): the default builder is the unsharded reference the
    // CI gate compares `.shards(1)` against.
    let configs: [(&str, Option<usize>); 5] = [
        ("baseline", None),
        ("sharded", Some(1)),
        ("sharded", Some(2)),
        ("sharded", Some(4)),
        ("sharded", Some(8)),
    ];
    for &threads in &[1usize, 4, 8] {
        for (path, per_thread, measure) in [
            (
                "hit",
                hit_per_thread,
                measure_shard_hits as fn(&BufferManager, usize, u64) -> (u64, f64),
            ),
            ("miss", miss_per_thread, measure_shard_misses),
        ] {
            let managers: Vec<BufferManager> =
                configs.iter().map(|&(_, shards)| shard_manager(shards)).collect();
            for m in &managers {
                measure(m, threads, per_thread / 4); // warm-up
            }
            // Same protocol as the obs guard: samples alternate across
            // all configs each round (machine drift lands on every
            // config equally) and each config reports its best of five
            // — the baseline/shards=1 pair feeds a 3% CI gate, and the
            // quantity under test is a code-path cost, not run-to-run
            // scheduler variance.
            let mut best: Vec<Option<(u64, f64)>> = vec![None; configs.len()];
            for _ in 0..5 {
                for (i, m) in managers.iter().enumerate() {
                    let (ops, secs) = measure(m, threads, per_thread);
                    if best[i].is_none_or(|(_, b)| secs < b) {
                        best[i] = Some((ops, secs));
                    }
                }
            }
            for (i, &(mode, shards)) in configs.iter().enumerate() {
                let n = shards.unwrap_or(1);
                let (ops, secs) = best[i].expect("sampled");
                let rate = ops as f64 / secs;
                println!("shard/{path}/{mode}/{n}s/{threads}t: {:.2} Mops/s", rate / 1e6);
                results.push(ShardResult {
                    path: path.to_string(),
                    mode: mode.to_string(),
                    shards: n,
                    threads,
                    total_ops: ops,
                    secs,
                    mops_per_sec: rate / 1e6,
                });
            }
        }
    }
    let report = ShardReport {
        bench: "buffer_manager/shard_sweep".into(),
        capacity: HITPATH_CAPACITY,
        quick,
        cpus,
        notes: "Acceptance: shards=1 within 3% of the default-builder baseline \
                (CI gate); miss-path throughput non-decreasing with shard count \
                at 4/8 threads on multi-core hosts. With cpus=1 a flat miss-path \
                curve is expected and acceptable: threads serialize on the \
                scheduler, so lock granularity cannot change throughput."
            .into(),
        results,
    };
    let text = serde_json::to_string_pretty(&report).expect("serialize shard report");
    std::fs::write(json_path, &text).expect("write BENCH_shard.json");
    let parsed: ShardReport = serde_json::from_str(&text).expect("re-parse shard report");
    assert_eq!(parsed.results.len(), report.results.len());
    println!("shard report written to {json_path} ({} results, parse OK)", report.results.len());
}

fn arg_path(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.into())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Cargo runs bench binaries with cwd = the package root, so the
    // defaults must anchor at the workspace root or the committed
    // trajectory entries would never be the ones regenerated.
    let json_path =
        arg_path(&args, "--json", concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hitpath.json"));
    let obs_path =
        arg_path(&args, "--obs-json", concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json"));
    let shard_path = arg_path(
        &args,
        "--shard-json",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json"),
    );
    if !quick {
        benches();
    }
    hitpath_report(quick, &json_path);
    obs_report(quick, &obs_path);
    shard_report(quick, &shard_path);
}
