//! Component benches for the buffer manager — including the paper's
//! central implementation argument: approximate (clock) LRU keeps the
//! per-access cost low, where exact LRU "can result in a significant
//! overhead at each read/write invocation".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use kcache::{BlockKey, BufferManager, EvictPolicy, PolicyKind, Span};
use pvfs::Fid;
use sim_net::NodeId;
use std::sync::Arc;

fn key(b: u64) -> BlockKey {
    BlockKey::new(Fid(1), b)
}

fn filled_manager(policy: EvictPolicy, cap: usize) -> BufferManager {
    let m = BufferManager::new(cap, policy);
    let buf = vec![0xABu8; 4096];
    for b in 0..cap as u64 {
        m.insert_clean(key(b), NodeId(0), Span::FULL, &buf);
    }
    m
}

/// Hit path: the per-access bookkeeping cost the paper worries about,
/// now measured across the whole policy family — this is the number that
/// justifies clock over exact LRU, and prices LFU/2Q/ARC/sharing-aware.
fn bench_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_path");
    g.throughput(Throughput::Elements(1));
    for kind in PolicyKind::ALL {
        let name = kind.name();
        let m = filled_manager(EvictPolicy::of(kind), 300);
        let mut out = vec![0u8; 4096];
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 7) % 300;
                assert!(m.try_read(key(i), Span::FULL, &mut out));
            })
        });
    }
    g.finish();
}

/// Miss + insert + eviction churn.
fn bench_insert_evict(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_evict");
    g.throughput(Throughput::Elements(1));
    for kind in PolicyKind::ALL {
        let name = kind.name();
        let m = filled_manager(EvictPolicy::of(kind), 300);
        let buf = vec![0xCDu8; 4096];
        let mut next = 300u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                next += 1;
                m.insert_clean(key(next), NodeId(0), Span::FULL, &buf);
            })
        });
    }
    g.finish();
}

/// Write-behind absorb path (copy + dirty-list linkage).
fn bench_write_absorb(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_absorb");
    g.throughput(Throughput::Bytes(4096));
    let buf = vec![0xEFu8; 4096];
    g.bench_function("absorb_then_flush_cycle", |b| {
        b.iter_batched(
            || BufferManager::new(300, EvictPolicy::default()),
            |m| {
                for blk in 0..128u64 {
                    let _ = m.write(key(blk), NodeId(0), Span::FULL, &buf);
                }
                let items = m.take_dirty(128);
                for it in &items {
                    m.flush_complete(it.key, it.span);
                }
                items.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Multi-threaded contention: the fine-grained-locking claim (§3.2).
fn bench_concurrent(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent_access");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("{}_threads", threads), |b| {
            b.iter_batched(
                || Arc::new(filled_manager(EvictPolicy::default(), 1024)),
                |m| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                let mut out = vec![0u8; 4096];
                                for i in 0..2000u64 {
                                    let k = key((i * 13 + t as u64 * 97) % 1024);
                                    let _ = m.try_read(k, Span::FULL, &mut out);
                                }
                            });
                        }
                    });
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_hit_path, bench_insert_evict, bench_write_absorb, bench_concurrent
}
criterion_main!(benches);
