//! Ablation benches: regenerate the design-choice studies of DESIGN.md on
//! the smoke grid under `cargo bench`, printing the resulting tables so the
//! bench log doubles as an ablation report.

use cluster_harness::ablations::{
    ablation_cache_size, ablation_clean_first, ablation_fabric, ablation_harvester, ablation_lru,
    ablation_policy_comparison, ablation_sync_write, ablation_write_policy,
};
use cluster_harness::figures::Grid;
use criterion::{criterion_group, criterion_main, Criterion};

fn grid() -> Grid {
    Grid::smoke()
}

macro_rules! ablation_bench {
    ($fn_name:ident, $driver:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut printed = false;
            c.bench_function(stringify!($driver), |b| {
                b.iter(|| {
                    let fig = $driver(&grid());
                    if !printed {
                        println!("\n{}", fig.to_markdown());
                        printed = true;
                    }
                    fig
                })
            });
        }
    };
}

ablation_bench!(bench_write_policy, ablation_write_policy);
ablation_bench!(bench_lru, ablation_lru);
ablation_bench!(bench_clean_first, ablation_clean_first);
ablation_bench!(bench_fabric, ablation_fabric);
ablation_bench!(bench_sync_write, ablation_sync_write);
ablation_bench!(bench_harvester, ablation_harvester);
ablation_bench!(bench_cache_size, ablation_cache_size);
ablation_bench!(bench_policy_comparison, ablation_policy_comparison);

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_write_policy, bench_lru, bench_clean_first, bench_fabric,
              bench_sync_write, bench_harvester, bench_cache_size,
              bench_policy_comparison
}
criterion_main!(benches);
