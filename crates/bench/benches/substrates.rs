//! Substrate microbenches: striping arithmetic, the DES engine, the
//! network fabric and the disk model — how fast the simulator itself runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pvfs::{split_ranges, ByteRange, StripeSpec};
use sim_core::{Actor, Ctx, Dur, Engine, Msg};
use sim_net::{Deliver, Fabric, NetConfig, NetMessage, NodeId, Port, Xmit};

fn bench_striping(c: &mut Criterion) {
    let mut g = c.benchmark_group("striping");
    let spec = StripeSpec { unit: 65536, n_iods: 6, base: 2 };
    for (name, range) in [
        ("small_one_iod", ByteRange::new(12_345, 4096)),
        ("one_mb_all_iods", ByteRange::new(999, 1 << 20)),
    ] {
        g.throughput(Throughput::Elements(1));
        g.bench_function(name, |b| b.iter(|| split_ranges(&spec, std::hint::black_box(range))));
    }
    g.finish();
}

struct PingPong {
    peer: usize,
    left: u32,
}
struct Ball;
impl Actor for PingPong {
    fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_in(Dur::micros(1), self.peer, Ball);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("ping_pong_100k_events", |b| {
        b.iter_batched(
            || {
                let mut eng = Engine::new(0);
                let a = eng.reserve_actor();
                let p2 = eng.add_actor(Box::new(PingPong { peer: a, left: 50_000 }));
                eng.install(a, Box::new(PingPong { peer: p2, left: 50_000 }));
                eng.post(Dur::ZERO, a, Ball);
                eng
            },
            |mut eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

struct Sink;
impl Actor for Sink {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        let _ = msg.is::<Deliver>();
    }
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("hub_1mb_transfer", |b| {
        b.iter_batched(
            || {
                let mut eng = Engine::new(0);
                let sinks: Vec<_> = (0..2).map(|_| eng.add_actor(Box::new(Sink))).collect();
                let fabric = eng.add_actor(Box::new(Fabric::new(NetConfig::hub_100mbps(), sinks)));
                let m = NetMessage::new((NodeId(0), Port(1)), (NodeId(1), Port(2)), 1 << 20, 0, ());
                eng.post(Dur::ZERO, fabric, Xmit(m));
                eng
            },
            |mut eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_disk(c: &mut Criterion) {
    use sim_disk::{Disk, DiskGeometry, DiskOp, DiskRequest, DiskSched};
    let mut g = c.benchmark_group("disk");
    g.throughput(Throughput::Elements(256));
    for (name, sched) in
        [("fifo_256_random", DiskSched::Fifo), ("clook_256_random", DiskSched::CLook)]
    {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut eng = Engine::new(0);
                    let sink = eng.add_actor(Box::new(Sink));
                    let disk =
                        eng.add_actor(Box::new(Disk::new(DiskGeometry::maxtor_20gb(), sched)));
                    let mut x = 0x9E3779B9u64;
                    for i in 0..256u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        eng.post(
                            Dur::ZERO,
                            disk,
                            DiskRequest {
                                op: DiskOp::Read,
                                pblk: x % 5_000_000,
                                blocks: 8,
                                reply_to: sink,
                                token: i,
                            },
                        );
                    }
                    eng
                },
                |mut eng| eng.run(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_striping, bench_engine, bench_fabric, bench_disk
}
criterion_main!(benches);
