//! One bench per paper figure: each runs the corresponding experiment
//! driver on the smoke grid and reports host time per full figure
//! regeneration. The figure *data* itself is produced by
//! `cargo run --release -p cluster-harness --bin figures` and recorded in
//! EXPERIMENTS.md; these benches keep regeneration cost visible and the
//! drivers exercised under `cargo bench`.

use cluster_harness::figures::{fig4, fig5, fig6, fig7, fig8, Grid};
use criterion::{criterion_group, criterion_main, Criterion};

fn grid() -> Grid {
    Grid::smoke()
}

fn bench_fig4_overhead(c: &mut Criterion) {
    c.bench_function("fig4_overhead", |b| {
        b.iter(|| {
            let figs = fig4(&grid());
            assert_eq!(figs.len(), 2);
            figs
        })
    });
}

fn bench_fig5_locality(c: &mut Criterion) {
    c.bench_function("fig5_locality", |b| {
        b.iter(|| {
            let figs = fig5(&grid());
            assert_eq!(figs.len(), 2);
            figs
        })
    });
}

fn bench_fig6_sharing_p4(c: &mut Criterion) {
    c.bench_function("fig6_sharing_p4", |b| {
        b.iter(|| {
            let figs = fig6(&grid());
            assert_eq!(figs.len(), 3);
            figs
        })
    });
}

fn bench_fig7_sharing_p2(c: &mut Criterion) {
    c.bench_function("fig7_sharing_p2", |b| {
        b.iter(|| {
            let figs = fig7(&grid());
            assert_eq!(figs.len(), 3);
            figs
        })
    });
}

fn bench_fig8_parallelism(c: &mut Criterion) {
    c.bench_function("fig8_parallelism", |b| {
        b.iter(|| {
            let figs = fig8(&grid());
            assert_eq!(figs.len(), 3);
            figs
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(8));
    targets = bench_fig4_overhead, bench_fig5_locality, bench_fig6_sharing_p4,
              bench_fig7_sharing_p2, bench_fig8_parallelism
}
criterion_main!(benches);
