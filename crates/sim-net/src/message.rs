//! Network message envelope and addressing.

use std::any::Any;
use std::fmt;

/// Identity of a cluster node (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A service port on a node. Well-known ports are defined by the protocol
/// crates (iod request port, iod flush port, mgr port, per-client reply
/// ports).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// Accounting class of a message: the fabric keeps separate counters for
/// cooperative-caching peer traffic so experiments can report how many
/// bytes the remote-hit tier moved over each fabric model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficClass {
    #[default]
    Default,
    /// Cooperative-caching traffic: directory updates/queries and
    /// peer-to-peer block transfers.
    Peer,
}

/// A message in flight between two node/port endpoints.
///
/// `wire_bytes` is the protocol-level size (headers + data) used for timing;
/// `payload` carries the typed content for the receiving actor.
pub struct NetMessage {
    pub src: NodeId,
    pub src_port: Port,
    pub dst: NodeId,
    pub dst_port: Port,
    pub wire_bytes: u32,
    /// Monotone per-sender tag, for tracing and test assertions.
    pub tag: u64,
    pub class: TrafficClass,
    pub payload: Box<dyn Any>,
}

impl NetMessage {
    pub fn new<T: Any>(
        src: (NodeId, Port),
        dst: (NodeId, Port),
        wire_bytes: u32,
        tag: u64,
        payload: T,
    ) -> NetMessage {
        NetMessage {
            src: src.0,
            src_port: src.1,
            dst: dst.0,
            dst_port: dst.1,
            wire_bytes,
            tag,
            class: TrafficClass::Default,
            payload: Box::new(payload),
        }
    }

    /// Tag the message with an accounting class (builder style).
    pub fn with_class(mut self, class: TrafficClass) -> NetMessage {
        self.class = class;
        self
    }

    /// Downcast the payload, preserving the message on mismatch.
    pub fn cast<T: Any>(self) -> Result<(MessageMeta, Box<T>), NetMessage> {
        let meta = self.meta();
        let NetMessage { src, src_port, dst, dst_port, wire_bytes, tag, class, payload } = self;
        match payload.downcast::<T>() {
            Ok(p) => Ok((meta, p)),
            Err(payload) => {
                Err(NetMessage { src, src_port, dst, dst_port, wire_bytes, tag, class, payload })
            }
        }
    }

    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    pub fn meta(&self) -> MessageMeta {
        MessageMeta {
            src: self.src,
            src_port: self.src_port,
            dst: self.dst,
            dst_port: self.dst_port,
            wire_bytes: self.wire_bytes,
            tag: self.tag,
        }
    }
}

impl fmt::Debug for NetMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NetMessage({:?}{:?} -> {:?}{:?}, {}B, tag {})",
            self.src, self.src_port, self.dst, self.dst_port, self.wire_bytes, self.tag
        )
    }
}

/// Copyable header of a [`NetMessage`].
#[derive(Debug, Clone, Copy)]
pub struct MessageMeta {
    pub src: NodeId,
    pub src_port: Port,
    pub dst: NodeId,
    pub dst_port: Port,
    pub wire_bytes: u32,
    pub tag: u64,
}

/// Event payload: hand a message to the fabric for transmission.
pub struct Xmit(pub NetMessage);

/// Event payload: a fully received message delivered to a node endpoint.
pub struct Deliver(pub NetMessage);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_preserves_message_on_mismatch() {
        struct A(u32);
        struct B;
        let m = NetMessage::new((NodeId(1), Port(10)), (NodeId(2), Port(20)), 64, 7, A(5));
        let m = match m.cast::<B>() {
            Ok(_) => panic!("wrong downcast succeeded"),
            Err(m) => m,
        };
        assert_eq!(m.wire_bytes, 64);
        let (meta, a) = m.cast::<A>().expect("original type");
        assert_eq!(a.0, 5);
        assert_eq!(meta.tag, 7);
        assert_eq!(meta.src, NodeId(1));
        assert_eq!(meta.dst_port, Port(20));
    }

    #[test]
    fn peek_does_not_consume() {
        struct A(u32);
        let m = NetMessage::new((NodeId(0), Port(1)), (NodeId(1), Port(2)), 10, 0, A(9));
        assert_eq!(m.peek::<A>().map(|a| a.0), Some(9));
        assert!(m.peek::<u64>().is_none());
        assert_eq!(m.meta().wire_bytes, 10);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", Port(4)), ":4");
    }
}
