//! # sim-net — cluster interconnect model
//!
//! Recreates the paper's network substrate: 100 Mbps Ethernet NICs attached
//! to a shared 16-port hub (with a switched mode as an ablation), a
//! frame-granular transmission model (MTU 1500), and a per-node port
//! demultiplexer ([`NodeNet`]) that provides the *socket interception point*
//! the paper's kernel module relies on.
//!
//! Timing model per message: the sender's NIC puts the message on the wire
//! one frame at a time, contending with other NICs at frame granularity; the
//! message is delivered to the destination node's [`NodeNet`] when its last
//! frame (plus propagation delay) arrives, and routed to the actor bound to
//! the destination port. Node-local messages short-circuit through a fast
//! loopback path.

pub mod config;
pub mod dispatch;
pub mod fabric;
pub mod message;

pub use config::{FabricKind, NetConfig};
pub use dispatch::NodeNet;
pub use fabric::{uncontended_latency, Fabric, FabricStats};
pub use message::{Deliver, MessageMeta, NetMessage, NodeId, Port, TrafficClass, Xmit};
