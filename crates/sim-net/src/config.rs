//! Network configuration and timing math.

use sim_core::Dur;

/// Which fabric topology connects the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// Shared-medium Ethernet hub: every frame occupies the single medium
    /// (half-duplex). This is the paper's platform (Linksys EtherFast hub).
    Hub,
    /// Store-and-forward switch: per-node full-duplex uplink/downlink.
    /// Provided as an ablation of the platform assumption.
    Switch,
}

/// Parameters of the cluster interconnect.
#[derive(Debug, Clone)]
pub struct NetConfig {
    pub kind: FabricKind,
    /// Link (and hub medium) bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum user payload carried per Ethernet frame (MTU minus IP/TCP
    /// headers — 1460 for standard Ethernet).
    pub frame_payload: u32,
    /// Per-frame wire overhead in bytes: preamble+SFD (8), Ethernet header
    /// (14), IP (20), TCP (20), FCS (4), inter-frame gap (12).
    pub frame_overhead: u32,
    /// One-way propagation + hub/switch forwarding latency.
    pub prop_delay: Dur,
    /// Extra per-frame latency inside a switch (store-and-forward); ignored
    /// in hub mode.
    pub switch_latency: Dur,
    /// Effective loopback bandwidth for node-local traffic (bytes/sec); the
    /// kernel loopback path is a memcpy, far faster than the wire.
    pub loopback_bytes_per_sec: u64,
    /// Fixed per-message loopback latency.
    pub loopback_latency: Dur,
}

impl NetConfig {
    /// The paper's platform: 100 Mbps Ethernet through a 16-port hub.
    pub fn hub_100mbps() -> NetConfig {
        NetConfig {
            kind: FabricKind::Hub,
            bandwidth_bps: 100_000_000,
            frame_payload: 1460,
            frame_overhead: 78,
            prop_delay: Dur::micros(5),
            switch_latency: Dur::micros(10),
            loopback_bytes_per_sec: 400_000_000,
            loopback_latency: Dur::micros(15),
        }
    }

    /// Switched variant of the same link speed (ablation).
    pub fn switch_100mbps() -> NetConfig {
        NetConfig { kind: FabricKind::Switch, ..NetConfig::hub_100mbps() }
    }

    /// Wire time of a frame carrying `data` payload bytes.
    pub fn frame_time(&self, data: u32) -> Dur {
        Dur::transfer((data + self.frame_overhead) as u64, self.bandwidth_bps)
    }

    /// Number of frames needed for a message of `bytes` payload.
    pub fn frames_for(&self, bytes: u32) -> u32 {
        if bytes == 0 {
            1 // empty messages (pure control) still cost one frame
        } else {
            bytes.div_ceil(self.frame_payload)
        }
    }

    /// Total wire time if the message were sent back-to-back with no
    /// contention (used for sanity checks and analytic baselines).
    pub fn message_wire_time(&self, bytes: u32) -> Dur {
        let full = bytes / self.frame_payload;
        let tail = bytes % self.frame_payload;
        let mut t = self.frame_time(self.frame_payload) * full as u64;
        if tail > 0 || bytes == 0 {
            t += self.frame_time(tail);
        }
        t
    }

    /// Loopback transfer time for node-local messages.
    pub fn loopback_time(&self, bytes: u32) -> Dur {
        self.loopback_latency
            + Dur::from_secs_f64(bytes as f64 / self.loopback_bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_math() {
        let cfg = NetConfig::hub_100mbps();
        assert_eq!(cfg.frames_for(0), 1);
        assert_eq!(cfg.frames_for(1), 1);
        assert_eq!(cfg.frames_for(1460), 1);
        assert_eq!(cfg.frames_for(1461), 2);
        assert_eq!(cfg.frames_for(4096), 3);
    }

    #[test]
    fn frame_time_scales_with_payload() {
        let cfg = NetConfig::hub_100mbps();
        // 1460+78 bytes at 100 Mbps = 123.04 us
        let t = cfg.frame_time(1460);
        assert_eq!(t, Dur::nanos(123_040));
        assert!(cfg.frame_time(100) < t);
    }

    #[test]
    fn message_wire_time_sums_frames() {
        let cfg = NetConfig::hub_100mbps();
        let one = cfg.frame_time(1460);
        assert_eq!(cfg.message_wire_time(1460), one);
        assert_eq!(cfg.message_wire_time(2920), one * 2);
        let t = cfg.message_wire_time(1461);
        assert_eq!(t, one + cfg.frame_time(1));
    }

    #[test]
    fn effective_bandwidth_near_nominal() {
        let cfg = NetConfig::hub_100mbps();
        // 1 MB of payload: effective rate should be ~95% of 100 Mbps
        // (frame overhead).
        let t = cfg.message_wire_time(1 << 20).as_secs_f64();
        let mbps = (1u64 << 20) as f64 * 8.0 / t / 1e6;
        assert!((90.0..100.0).contains(&mbps), "effective rate {} Mbps", mbps);
    }

    #[test]
    fn loopback_much_faster_than_wire() {
        let cfg = NetConfig::hub_100mbps();
        assert!(cfg.loopback_time(1 << 20) < cfg.message_wire_time(1 << 20) / 4);
    }
}
