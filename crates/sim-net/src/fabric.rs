//! The cluster interconnect actor.
//!
//! Models a frame-granular network: each NIC transmits one Ethernet frame at
//! a time, contending for the shared medium (hub mode) or for its uplink and
//! the destination's downlink (switch mode). Frame-level arbitration is what
//! makes concurrent streams share bandwidth fairly — a 1 MB transfer does
//! not lock out a competing 4 KB request for its whole duration, exactly as
//! on the paper's real Ethernet.
//!
//! Messages are delivered whole (store-and-forward at the receiver, which is
//! what a TCP receive buffer gives user code) once their last frame arrives.

use crate::config::{FabricKind, NetConfig};
use crate::message::{Deliver, NetMessage, TrafficClass, Xmit};
use sim_core::{Actor, ActorId, Ctx, Dur, FifoResource, Msg, SimTime};
use std::any::Any;
use std::collections::VecDeque;

/// Counters the fabric maintains; snapshot them after a run with
/// [`Fabric::stats`].
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    pub messages: u64,
    pub loopback_messages: u64,
    pub frames: u64,
    pub payload_bytes: u64,
    pub wire_bytes: u64,
    /// Cooperative-caching traffic ([`TrafficClass::Peer`]): directory
    /// messages and peer-to-peer block transfers, on either fabric model.
    pub peer_messages: u64,
    pub peer_payload_bytes: u64,
}

struct Outbound {
    msg: NetMessage,
    /// Payload bytes not yet put on the wire. Control messages with zero
    /// payload are normalized to one byte so they still cost one frame.
    remaining: u32,
    /// Bytes carried by the frame currently on the wire.
    in_flight: u32,
    /// When the most recent frame fully arrives at the destination.
    last_arrival: SimTime,
}

/// Fabric-internal event: the NIC of `node` finished putting a frame on the
/// wire and may start the next one.
struct FrameDone {
    node: usize,
}

/// The interconnect. One instance per simulated cluster.
pub struct Fabric {
    cfg: NetConfig,
    /// Hub mode: the single shared medium.
    medium: FifoResource,
    /// Switch mode: per-node transmit links.
    uplinks: Vec<FifoResource>,
    /// Switch mode: per-node receive links.
    downlinks: Vec<FifoResource>,
    /// Per-node outbound queues (NIC transmit rings).
    nics: Vec<VecDeque<Outbound>>,
    /// Per-node delivery endpoints (normally the node's `NodeNet`).
    endpoints: Vec<ActorId>,
    stats: FabricStats,
}

impl Fabric {
    /// Build a fabric for `endpoints.len()` nodes; `endpoints[i]` receives
    /// [`Deliver`] events for node `i`.
    pub fn new(cfg: NetConfig, endpoints: Vec<ActorId>) -> Fabric {
        let n = endpoints.len();
        Fabric {
            medium: FifoResource::new("hub-medium"),
            uplinks: (0..n).map(|i| FifoResource::new(format!("uplink-{i}"))).collect(),
            downlinks: (0..n).map(|i| FifoResource::new(format!("downlink-{i}"))).collect(),
            nics: (0..n).map(|_| VecDeque::new()).collect(),
            endpoints,
            cfg,
            stats: FabricStats::default(),
        }
    }

    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Utilization of the shared medium over `[0, now]` (hub mode).
    pub fn medium_utilization(&self, now: SimTime) -> f64 {
        self.medium.utilization(now)
    }

    fn start_frame(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        let now = ctx.now();
        let ob = self.nics[node].front_mut().expect("start_frame on empty NIC queue");
        let data = ob.remaining.min(self.cfg.frame_payload);
        ob.in_flight = data;
        let ft = self.cfg.frame_time(data);
        self.stats.frames += 1;
        self.stats.wire_bytes += (data + self.cfg.frame_overhead) as u64;

        let (nic_free, arrival) = match self.cfg.kind {
            FabricKind::Hub => {
                // Half-duplex shared medium: the frame owns the hub for its
                // whole wire time; sender and receiver finish together.
                let done = self.medium.reserve(now, ft);
                (done, done)
            }
            FabricKind::Switch => {
                // Full-duplex: transmit on the uplink, then store-and-forward
                // across the switch onto the destination downlink.
                let up = self.uplinks[node].reserve(now, ft);
                let dn_start = up + self.cfg.switch_latency;
                let arrival = self.downlinks[ob.msg.dst.index()].reserve(dn_start, ft);
                (up, arrival)
            }
        };
        ob.last_arrival = arrival;
        ctx.schedule_self(nic_free.since(now), FrameDone { node });
    }

    fn frame_done(&mut self, ctx: &mut Ctx<'_>, node: usize) {
        let now = ctx.now();
        let finished = {
            let ob = self.nics[node].front_mut().expect("FrameDone with empty NIC queue");
            ob.remaining -= ob.in_flight;
            ob.in_flight = 0;
            ob.remaining == 0
        };
        if finished {
            let ob = self.nics[node].pop_front().expect("queue changed under us");
            let deliver_at = ob.last_arrival + self.cfg.prop_delay;
            let target = self.endpoints[ob.msg.dst.index()];
            ctx.schedule_in(deliver_at.since(now), target, Deliver(ob.msg));
        }
        if !self.nics[node].is_empty() {
            self.start_frame(ctx, node);
        }
    }
}

impl Actor for Fabric {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.cast::<Xmit>() {
            Ok(x) => {
                let m = x.0;
                self.stats.messages += 1;
                self.stats.payload_bytes += m.wire_bytes as u64;
                if m.class == TrafficClass::Peer {
                    self.stats.peer_messages += 1;
                    self.stats.peer_payload_bytes += m.wire_bytes as u64;
                }
                if m.src == m.dst {
                    // Node-local traffic short-circuits the wire entirely.
                    self.stats.loopback_messages += 1;
                    let delay = self.cfg.loopback_time(m.wire_bytes);
                    let target = self.endpoints[m.dst.index()];
                    ctx.schedule_in(delay, target, Deliver(m));
                    return;
                }
                let node = m.src.index();
                self.nics[node].push_back(Outbound {
                    remaining: m.wire_bytes.max(1),
                    in_flight: 0,
                    last_arrival: SimTime::ZERO,
                    msg: m,
                });
                if self.nics[node].len() == 1 {
                    self.start_frame(ctx, node);
                }
                return;
            }
            Err(m) => m,
        };
        match msg.cast::<FrameDone>() {
            Ok(fd) => self.frame_done(ctx, fd.node),
            Err(other) => panic!("fabric received unexpected message: {:?}", other),
        }
    }

    fn name(&self) -> String {
        "fabric".into()
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// Convenience: total one-way latency of an uncontended `bytes`-byte message
/// (used by tests and analytic sanity checks).
pub fn uncontended_latency(cfg: &NetConfig, bytes: u32) -> Dur {
    cfg.message_wire_time(bytes)
        + cfg.prop_delay
        + match cfg.kind {
            FabricKind::Hub => Dur::ZERO,
            // Store-and-forward adds one switch hop plus the retransmission
            // of the final frame on the downlink.
            FabricKind::Switch => {
                cfg.switch_latency + cfg.frame_time(bytes % cfg.frame_payload.max(1))
            }
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NodeId, Port};
    use sim_core::Engine;

    /// Collects deliveries with their arrival times.
    struct Sink {
        got: Vec<(u64, SimTime)>,
    }

    impl Actor for Sink {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if let Ok(d) = msg.cast::<Deliver>() {
                self.got.push((d.0.tag, ctx.now()));
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn build(cfg: NetConfig, nodes: usize) -> (Engine, ActorId, Vec<ActorId>) {
        let mut eng = Engine::new(1);
        let sinks: Vec<ActorId> =
            (0..nodes).map(|_| eng.add_actor(Box::new(Sink { got: vec![] }))).collect();
        let fabric = eng.add_actor(Box::new(Fabric::new(cfg, sinks.clone())));
        (eng, fabric, sinks)
    }

    fn msg(src: u16, dst: u16, bytes: u32, tag: u64) -> NetMessage {
        NetMessage::new((NodeId(src), Port(1)), (NodeId(dst), Port(2)), bytes, tag, ())
    }

    #[test]
    fn single_message_latency_matches_analytic() {
        let cfg = NetConfig::hub_100mbps();
        let expect = uncontended_latency(&cfg, 4096);
        let (mut eng, fabric, sinks) = build(cfg, 2);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 1, 4096, 1)));
        eng.run();
        let sink = eng.actor_as::<Sink>(sinks[1]).unwrap();
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].1, SimTime::ZERO + expect);
    }

    #[test]
    fn hub_serializes_concurrent_senders() {
        let cfg = NetConfig::hub_100mbps();
        let wire_each = cfg.message_wire_time(14600); // 10 frames
        let (mut eng, fabric, sinks) = build(cfg, 3);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 2, 14600, 1)));
        eng.post(Dur::ZERO, fabric, Xmit(msg(1, 2, 14600, 2)));
        eng.run();
        let sink = eng.actor_as::<Sink>(sinks[2]).unwrap();
        assert_eq!(sink.got.len(), 2);
        let last = sink.got.iter().map(|g| g.1).max().unwrap();
        // Both streams share one medium: total completion ~ sum of wire
        // times (within a propagation delay).
        let lower = SimTime::ZERO + wire_each * 2;
        assert!(last >= lower, "last {:?} earlier than serialized bound {:?}", last, lower);
    }

    #[test]
    fn switch_parallelizes_disjoint_pairs() {
        let cfg = NetConfig::switch_100mbps();
        let wire_each = cfg.message_wire_time(14600);
        let (mut eng, fabric, sinks) = build(cfg, 4);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 2, 14600, 1)));
        eng.post(Dur::ZERO, fabric, Xmit(msg(1, 3, 14600, 2)));
        eng.run();
        let t2 = eng.actor_as::<Sink>(sinks[2]).unwrap().got[0].1;
        let t3 = eng.actor_as::<Sink>(sinks[3]).unwrap().got[0].1;
        // Disjoint src/dst pairs must not serialize: both finish in about
        // one message wire time, far less than two.
        let upper = SimTime::ZERO + wire_each + wire_each / 2;
        assert!(t2 < upper, "t2 {:?} vs upper {:?}", t2, upper);
        assert!(t3 < upper, "t3 {:?} vs upper {:?}", t3, upper);
    }

    #[test]
    fn frames_interleave_between_active_senders() {
        // A long message and a short message start together on a hub; the
        // short one must finish long before the long one completes.
        let cfg = NetConfig::hub_100mbps();
        let long_wire = cfg.message_wire_time(1 << 20);
        let (mut eng, fabric, sinks) = build(cfg, 3);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 2, 1 << 20, 1)));
        eng.post(Dur::ZERO, fabric, Xmit(msg(1, 2, 4096, 2)));
        eng.run();
        let sink = eng.actor_as::<Sink>(sinks[2]).unwrap();
        let short_done = sink.got.iter().find(|g| g.0 == 2).unwrap().1;
        assert!(
            short_done.since(SimTime::ZERO) < long_wire / 10,
            "short message starved: {:?} vs long wire {:?}",
            short_done,
            long_wire
        );
    }

    #[test]
    fn loopback_bypasses_the_medium() {
        let cfg = NetConfig::hub_100mbps();
        let lb = cfg.loopback_time(1 << 20);
        let (mut eng, fabric, sinks) = build(cfg, 2);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 0, 1 << 20, 1)));
        eng.run();
        let sink = eng.actor_as::<Sink>(sinks[0]).unwrap();
        assert_eq!(sink.got[0].1, SimTime::ZERO + lb);
        let f = eng.actor_as::<Fabric>(fabric).unwrap();
        assert_eq!(f.stats().loopback_messages, 1);
        assert_eq!(f.stats().frames, 0, "loopback must not consume wire frames");
    }

    #[test]
    fn fifo_order_preserved_per_pair() {
        let cfg = NetConfig::hub_100mbps();
        let (mut eng, fabric, sinks) = build(cfg, 2);
        for tag in 0..20 {
            eng.post(Dur::ZERO, fabric, Xmit(msg(0, 1, 1000, tag)));
        }
        eng.run();
        let sink = eng.actor_as::<Sink>(sinks[1]).unwrap();
        let tags: Vec<u64> = sink.got.iter().map(|g| g.0).collect();
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let cfg = NetConfig::hub_100mbps();
        let (mut eng, fabric, _sinks) = build(cfg, 2);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 1, 3000, 1)));
        eng.post(Dur::ZERO, fabric, Xmit(msg(1, 0, 0, 2)));
        eng.run();
        let f = eng.actor_as::<Fabric>(fabric).unwrap();
        assert_eq!(f.stats().messages, 2);
        assert_eq!(f.stats().payload_bytes, 3000);
        assert_eq!(f.stats().frames, 3 + 1, "3 frames for 3000B, 1 for control");
        assert!(f.medium_utilization(eng.now()) > 0.0);
    }

    #[test]
    fn peer_class_counted_on_both_fabrics_and_loopback() {
        for cfg in [NetConfig::hub_100mbps(), NetConfig::switch_100mbps()] {
            let (mut eng, fabric, _sinks) = build(cfg, 3);
            eng.post(Dur::ZERO, fabric, Xmit(msg(0, 1, 5000, 1).with_class(TrafficClass::Peer)));
            eng.post(Dur::ZERO, fabric, Xmit(msg(1, 2, 7000, 2)));
            // Peer loopback (module talking to a same-node service) still
            // counts as peer traffic.
            eng.post(Dur::ZERO, fabric, Xmit(msg(2, 2, 100, 3).with_class(TrafficClass::Peer)));
            eng.run();
            let f = eng.actor_as::<Fabric>(fabric).unwrap();
            assert_eq!(f.stats().messages, 3);
            assert_eq!(f.stats().peer_messages, 2);
            assert_eq!(f.stats().peer_payload_bytes, 5100);
            assert_eq!(f.stats().payload_bytes, 12100);
        }
    }

    #[test]
    fn zero_byte_control_message_still_delivered() {
        let cfg = NetConfig::hub_100mbps();
        let (mut eng, fabric, sinks) = build(cfg, 2);
        eng.post(Dur::ZERO, fabric, Xmit(msg(0, 1, 0, 9)));
        eng.run();
        assert_eq!(eng.actor_as::<Sink>(sinks[1]).unwrap().got.len(), 1);
    }
}
