//! Per-node inbound demultiplexer.
//!
//! Every node runs one [`NodeNet`] actor: the fabric delivers all of the
//! node's inbound messages to it, and it forwards each message to the actor
//! registered for the destination port. This is the "kernel network stack"
//! of a node, and — crucially for the paper — the place where a cache
//! module *transparently inserts itself*: it re-registers the client
//! library's reply port to point at itself, and the client library is none
//! the wiser (§3.2 of the paper: interception is invisible to PVFS).

use crate::message::{Deliver, NodeId, Port};
use sim_core::{Actor, ActorId, Ctx, Dur, Msg};
use std::any::Any;
use std::collections::HashMap;

/// Inbound port router for one node.
pub struct NodeNet {
    node: NodeId,
    routes: HashMap<u16, ActorId>,
    /// Messages whose port had no registration (a protocol bug if > 0).
    pub dropped: u64,
}

impl NodeNet {
    pub fn new(node: NodeId) -> NodeNet {
        NodeNet { node, routes: HashMap::new(), dropped: 0 }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Register (or override) the handler for a port. Overriding is the
    /// interception mechanism: installing a cache module rebinds the
    /// client's ports to the module.
    pub fn bind(&mut self, port: Port, handler: ActorId) {
        self.routes.insert(port.0, handler);
    }

    pub fn handler_for(&self, port: Port) -> Option<ActorId> {
        self.routes.get(&port.0).copied()
    }
}

impl Actor for NodeNet {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.cast::<Deliver>() {
            Ok(d) => {
                let m = d.0;
                debug_assert_eq!(
                    m.dst, self.node,
                    "message for {:?} delivered to node {:?}",
                    m.dst, self.node
                );
                match self.routes.get(&m.dst_port.0) {
                    Some(&target) => ctx.schedule_in(Dur::ZERO, target, Deliver(m)),
                    None => {
                        debug_assert!(false, "no handler for port {:?} on {:?}", m.dst_port, m.dst);
                        self.dropped += 1;
                    }
                }
            }
            Err(other) => panic!("NodeNet received unexpected message: {:?}", other),
        }
    }

    fn name(&self) -> String {
        format!("net-{}", self.node)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::NetMessage;
    use sim_core::Engine;

    struct Probe {
        hits: u64,
    }
    impl Actor for Probe {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            if msg.is::<Deliver>() {
                self.hits += 1;
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn deliver(dst_port: u16) -> Deliver {
        Deliver(NetMessage::new((NodeId(9), Port(1)), (NodeId(0), Port(dst_port)), 8, 0, ()))
    }

    #[test]
    fn routes_by_destination_port() {
        let mut eng = Engine::new(0);
        let a = eng.add_actor(Box::new(Probe { hits: 0 }));
        let b = eng.add_actor(Box::new(Probe { hits: 0 }));
        let mut net = NodeNet::new(NodeId(0));
        net.bind(Port(10), a);
        net.bind(Port(20), b);
        let net_id = eng.add_actor(Box::new(net));
        eng.post(Dur::ZERO, net_id, deliver(10));
        eng.post(Dur::ZERO, net_id, deliver(10));
        eng.post(Dur::ZERO, net_id, deliver(20));
        eng.run();
        assert_eq!(eng.actor_as::<Probe>(a).unwrap().hits, 2);
        assert_eq!(eng.actor_as::<Probe>(b).unwrap().hits, 1);
    }

    #[test]
    fn rebinding_a_port_intercepts_traffic() {
        let mut eng = Engine::new(0);
        let original = eng.add_actor(Box::new(Probe { hits: 0 }));
        let interceptor = eng.add_actor(Box::new(Probe { hits: 0 }));
        let mut net = NodeNet::new(NodeId(0));
        net.bind(Port(10), original);
        net.bind(Port(10), interceptor); // cache module takes over the port
        assert_eq!(net.handler_for(Port(10)), Some(interceptor));
        let net_id = eng.add_actor(Box::new(net));
        eng.post(Dur::ZERO, net_id, deliver(10));
        eng.run();
        assert_eq!(eng.actor_as::<Probe>(original).unwrap().hits, 0);
        assert_eq!(eng.actor_as::<Probe>(interceptor).unwrap().hits, 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn unknown_port_counts_drop() {
        let mut eng = Engine::new(0);
        let net_id = eng.add_actor(Box::new(NodeNet::new(NodeId(0))));
        eng.post(Dur::ZERO, net_id, deliver(99));
        eng.run();
        assert_eq!(eng.actor_as::<NodeNet>(net_id).unwrap().dropped, 1);
    }
}
