//! Hot-path metric cells: counters, gauges, and fixed-bucket log-scale
//! histograms.
//!
//! Everything in this file is a plain relaxed atomic — **no mutex, no
//! spin, no fallback slow path** — because these cells sit on the cache
//! hit path, where the budget is one relaxed RMW per increment
//! (mirroring the `RefWords` discipline from the lock-free hit fast
//! path). CI greps this file to keep it that way; registration,
//! snapshotting, and export (which may take locks) live in
//! `registry.rs`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Stripes per counter. Concurrent writers on a single shared cell would
/// serialize on its cache line — a measurable tax on a multi-threaded
/// hit storm even with relaxed ordering — so each thread increments its
/// own padded stripe and readers sum. Power of two so stripe selection
/// is a mask.
const COUNTER_STRIPES: usize = 8;

/// One cache line per stripe: without the alignment the stripes share
/// lines and the striping buys nothing.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Round-robin stripe assignment, one slot per thread, fixed at the
/// thread's first increment. A thread-local read per `inc` is the whole
/// lookup cost; threads created later reuse slots (mod the stripe
/// count), which only degrades back toward sharing, never past it.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_STRIPE.fetch_add(1, Relaxed) & (COUNTER_STRIPES - 1);
            s.set(v);
            v
        }
    })
}

/// Monotonic event counter, striped across padded per-thread cells.
/// Cloning shares the cells. `get` sums the stripes; each stripe is
/// monotonic under relaxed loads, so `get` is monotonic too, though a
/// sum taken during concurrent increments is a valid-but-racy point
/// between the stripes' individual timelines (fine for metrics).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<[PaddedCell; COUNTER_STRIPES]>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0[stripe_index()].0.fetch_add(n, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.iter().map(|c| c.0.load(Relaxed)).sum()
    }
}

/// Last-write-wins level gauge (e.g. directory size, resident frames).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Bucket count of the log-scale histogram: bucket `i` holds values
/// whose bit length is `i` (i.e. `v == 0` → bucket 0, otherwise
/// `v ∈ [2^(i-1), 2^i)` → bucket `i`), so 64-bit nanosecond latencies
/// always fit and `record` is a `leading_zeros` plus one relaxed add.
pub const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistCells {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

/// Fixed-bucket log2 latency/depth histogram. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCells>);

impl Histogram {
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Which bucket a value lands in: its bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Relaxed)
    }

    pub(crate) fn load_buckets(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Relaxed)).collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_bucketing() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1 << 40);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6 + (1 << 40));
        let b = h.load_buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b[41], 1);
    }
}
