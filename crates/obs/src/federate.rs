//! Federation of per-node hubs into one cluster telemetry plane.
//!
//! PR 7 gave the cluster a single shared [`ObsHub`]; with per-node
//! hubs each node's metrics and trace ring are isolated (the node id
//! still rides in every trace event's `pid`), and [`ClusterObs`] is
//! the read side: it merges per-node [`MetricsSnapshot`]s into a
//! cluster rollup, drains every ring into one time-ordered trace, and
//! renders both with per-node breakdown.
//!
//! Rollup semantics follow [`MetricsSnapshot::accumulate`]: counters
//! and histograms **sum** across nodes; gauges are levels, so the
//! rollup keeps the last node's value — read gauge levels from the
//! per-node breakdown, not the rollup.
//!
//! The old single-shared-hub wiring is still supported via
//! [`ClusterObs::shared`], which federates trivially (one entry); the
//! differential test in the cluster crate pins per-node totals ==
//! shared totals on the same workload.

use crate::registry::MetricsSnapshot;
use crate::trace::{chrome_trace_json, TraceEvent};
use crate::ObsHub;
use std::sync::Arc;

/// Read-side aggregator over every node's [`ObsHub`].
pub struct ClusterObs {
    nodes: Vec<(String, Arc<ObsHub>)>,
    shared: bool,
}

impl ClusterObs {
    /// One private hub per node, labeled `node0..nodeN-1`.
    pub fn per_node(n_nodes: usize, trace_capacity: usize) -> Arc<ClusterObs> {
        Arc::new(ClusterObs {
            nodes: (0..n_nodes.max(1))
                .map(|i| (format!("node{i}"), ObsHub::new(trace_capacity)))
                .collect(),
            shared: false,
        })
    }

    /// Wrap an existing single shared hub (the PR 7 wiring) so every
    /// consumer can speak `ClusterObs` regardless of topology.
    pub fn shared(hub: Arc<ObsHub>) -> Arc<ClusterObs> {
        Arc::new(ClusterObs { nodes: vec![("cluster".to_string(), hub)], shared: true })
    }

    /// True when all nodes write into one hub (no per-node breakdown).
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The hub node `i` should write into (the single hub when shared).
    pub fn hub_for(&self, node: usize) -> Arc<ObsHub> {
        if self.shared {
            self.nodes[0].1.clone()
        } else {
            self.nodes[node.min(self.nodes.len() - 1)].1.clone()
        }
    }

    /// Per-node `(label, hub)` pairs, node order.
    pub fn hubs(&self) -> impl Iterator<Item = (&str, &Arc<ObsHub>)> {
        self.nodes.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Cluster rollup: counters/histograms summed across nodes, gauges
    /// last-write (see module docs).
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut acc = MetricsSnapshot::default();
        for (_, hub) in &self.nodes {
            acc.accumulate(&hub.snapshot());
        }
        acc
    }

    /// Per-node `(label, snapshot)` breakdown.
    pub fn per_node_snapshots(&self) -> Vec<(String, MetricsSnapshot)> {
        self.nodes.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
    }

    /// Trace events dropped across every node's ring.
    pub fn trace_dropped(&self) -> u64 {
        self.nodes.iter().map(|(_, h)| h.trace_dropped()).sum()
    }

    /// Total epoch windows (logged, discarded) across nodes.
    pub fn epoch_counts(&self) -> (usize, u64) {
        self.nodes.iter().fold((0, 0), |(l, d), (_, h)| {
            let (hl, hd) = h.epoch_counts();
            (l + hl, d + hd)
        })
    }

    /// Drain every node's trace ring into one timestamp-ordered event
    /// list (destructive, like [`ObsHub::drain_trace`]).
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for (_, hub) in &self.nodes {
            all.extend(hub.drain_trace());
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Drain all rings into one Chrome-trace JSON document — per-node
    /// events land in their own `pid` lane, flow arrows stitch across.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.drain_trace())
    }

    /// Cluster rollup + per-node breakdown as one JSON document.
    pub fn metrics_json(&self) -> String {
        let (epochs, discarded) = self.epoch_counts();
        let mut out = String::from("{\n  \"cluster\": ");
        out.push_str(&self.rollup().to_json());
        out.push_str(&format!(
            ",\n  \"trace_dropped\": {},\n  \"epochs_logged\": {},\n  \"epochs_discarded\": {},",
            self.trace_dropped(),
            epochs,
            discarded
        ));
        out.push_str("\n  \"nodes\": {");
        for (i, (name, hub)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (el, ed) = hub.epoch_counts();
            out.push_str(&format!(
                "\n    \"{}\": {{\"trace_dropped\":{},\"epochs_logged\":{},\"epochs_discarded\":{},\"snapshot\":{}}}",
                crate::trace::escape_json(name),
                hub.trace_dropped(),
                el,
                ed,
                hub.snapshot().to_json()
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl std::fmt::Debug for ClusterObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterObs")
            .field("nodes", &self.nodes.len())
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;

    #[test]
    fn rollup_sums_counters_and_histograms_across_nodes() {
        let cluster = ClusterObs::per_node(3, 64);
        for i in 0..3 {
            let hub = cluster.hub_for(i);
            hub.registry().counter("cache.hits").add((i as u64 + 1) * 10);
            hub.registry().histogram("fetch.ns").record(100 * (i as u64 + 1));
            hub.registry().gauge("level").set(i as u64);
        }
        let roll = cluster.rollup();
        assert_eq!(roll.counters["cache.hits"], 60);
        assert_eq!(roll.histograms["fetch.ns"].count, 3);
        assert_eq!(roll.histograms["fetch.ns"].sum, 600);
        let nodes = cluster.per_node_snapshots();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].0, "node0");
        assert_eq!(nodes[2].1.counters["cache.hits"], 30);
        assert_eq!(nodes[1].1.gauges["level"], 1);
        let json = cluster.metrics_json();
        assert!(json.contains("\"cluster\""));
        assert!(json.contains("\"node1\""));
    }

    #[test]
    fn drain_merges_rings_in_timestamp_order() {
        let cluster = ClusterObs::per_node(2, 64);
        let h0 = cluster.hub_for(0);
        let h1 = cluster.hub_for(1);
        let e0 = h0.intern("a", None, None);
        let e1 = h1.intern("b", None, None);
        h0.set_now(300);
        h0.instant(e0, 0, 0, 0, 0);
        h1.set_now(100);
        h1.instant(e1, 1, 0, 0, 0);
        h0.set_now(200);
        h0.instant(e0, 0, 0, 0, 0);
        let ev = cluster.drain_trace();
        assert_eq!(ev.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), vec![100, 200, 300]);
        assert!(cluster.drain_trace().is_empty(), "drain is destructive");
    }

    #[test]
    fn shared_wrapper_routes_every_node_to_one_hub() {
        let hub = ObsHub::new(64);
        let cluster = ClusterObs::shared(hub.clone());
        assert!(cluster.is_shared());
        assert_eq!(cluster.node_count(), 1);
        cluster.hub_for(0).registry().counter("c").inc();
        cluster.hub_for(7).registry().counter("c").inc();
        assert_eq!(hub.snapshot().counters["c"], 2);
        assert_eq!(cluster.rollup().counters["c"], 2);
    }

    #[test]
    fn flow_events_survive_federated_export() {
        let cluster = ClusterObs::per_node(2, 64);
        let h0 = cluster.hub_for(0);
        let h1 = cluster.hub_for(1);
        let f0 = h0.intern("coop_fetch", None, None);
        let f1 = h1.intern("coop_fetch", None, None);
        h0.flow(f0, Phase::FlowStart, 100, 0, 1, crate::FlowId::coop(0, 1));
        h1.flow(f1, Phase::FlowStep, 200, 1, 2, crate::FlowId::coop(0, 1));
        h0.flow(f0, Phase::FlowEnd, 300, 0, 1, crate::FlowId::coop(0, 1));
        let json = cluster.chrome_trace_json();
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"t\""));
        assert!(json.contains("\"ph\":\"f\""));
    }
}
