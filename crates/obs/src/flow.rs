//! Cross-node flow correlation ids.
//!
//! A cooperative fetch is one logical operation executed by three
//! actors on (up to) three nodes: the requesting cache module, the
//! pvfs manager's block directory, and a peer cache serving the
//! blocks. Each actor traces into its **own** per-node hub, so the
//! only way to stitch the story back together in a trace viewer is a
//! shared correlation id carried on the wire messages
//! (`BlockDirQuery` / `PeerReadReq`).
//!
//! A [`FlowId`] packs the requester's node id with its per-node
//! conversation sequence number, which makes ids unique cluster-wide
//! without any coordination: two nodes can never mint the same id, and
//! one node never reuses a sequence number. Zero is reserved as "no
//! flow" so protocol messages can default to untraced.

/// Cluster-unique correlation id for one cross-node conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The reserved "not part of a flow" id.
    pub const NONE: FlowId = FlowId(0);

    const SEQ_BITS: u32 = 48;
    const SEQ_MASK: u64 = (1 << FlowId::SEQ_BITS) - 1;

    /// Mint the id for cooperative-fetch conversation `seq` started by
    /// `node`. `node + 1` occupies the top 16 bits so node 0's flows
    /// are still distinguishable from [`FlowId::NONE`].
    pub fn coop(node: u16, seq: u64) -> FlowId {
        FlowId(((node as u64 + 1) << FlowId::SEQ_BITS) | (seq & FlowId::SEQ_MASK))
    }

    /// The node that minted this id (inverse of [`FlowId::coop`]).
    pub fn node(self) -> u16 {
        ((self.0 >> FlowId::SEQ_BITS) as u16).wrapping_sub(1)
    }

    /// The minting node's conversation sequence number.
    pub fn seq(self) -> u64 {
        self.0 & FlowId::SEQ_MASK
    }

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_node_and_seq_without_collisions() {
        let a = FlowId::coop(0, 1);
        let b = FlowId::coop(1, 1);
        let c = FlowId::coop(0, 2);
        assert!(!a.is_none() && a != b && a != c);
        assert_eq!((a.node(), a.seq()), (0, 1));
        assert_eq!((b.node(), b.seq()), (1, 1));
        assert!(FlowId::NONE.is_none());
        assert_eq!(FlowId::default(), FlowId::NONE);
    }
}
