//! Fixed-memory quantile sketch for SLO percentiles.
//!
//! The log2 histograms in `metrics.rs` are perfect for shape but too
//! coarse for a p99: one power-of-two bucket can span the whole tail.
//! This sketch refines each power-of-two major bucket with 16 linear
//! sub-buckets (HdrHistogram's log-linear layout), which bounds the
//! relative error of any quantile estimate at 1/16 (6.25%) while
//! keeping memory fixed: 1024 atomic cells, ~8 KiB per sketch.
//!
//! Same hot-path discipline as the metric cells: `record` is one
//! relaxed `fetch_add` per cell — no locks, no allocation, wait-free.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: 2^4 = 16 linear cells per power of two,
/// bounding quantile estimates to ≤ 1/16 relative error.
pub const SKETCH_SUB_BITS: u32 = 4;
const SUB: usize = 1 << SKETCH_SUB_BITS;
const CELLS: usize = SUB * 64;

/// Index of the cell holding `v`. Values below 16 get exact cells;
/// larger values index by (bit length, top 4 bits below the leading
/// one). The mapping is monotonic, so walking cells in index order
/// walks values in sorted order.
fn cell_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let m = (63 - v.leading_zeros()) as usize;
        let sub = ((v >> (m as u32 - SKETCH_SUB_BITS)) as usize) & (SUB - 1);
        m * SUB + sub
    }
}

/// Largest value mapping to cell `idx` — the estimate a quantile query
/// returns, so estimates always upper-bound the exact order statistic.
fn cell_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let m = (idx / SUB) as u32;
        let sub = (idx % SUB) as u64;
        // The very top cell's exclusive bound is 2^64; wrapping turns
        // it into the correct inclusive u64::MAX.
        (SUB as u64 + sub + 1).wrapping_shl(m - SKETCH_SUB_BITS).wrapping_sub(1)
    }
}

/// Concurrent log-linear quantile sketch (fixed 1024 cells).
pub struct QuantileSketch {
    cells: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            cells: (0..CELLS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Hot path: three relaxed adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cells[cell_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Point-in-time copy, the mergeable/query-able form.
    pub fn snapshot(&self) -> QuantileSnapshot {
        QuantileSnapshot {
            cells: self.cells.iter().map(|c| c.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
        }
    }
}

/// Copied sketch state: mergeable across nodes, query-able for
/// quantiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSnapshot {
    cells: Vec<u64>,
    count: u64,
    sum: u64,
}

impl QuantileSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another node's sketch into this one (cell-wise add).
    pub fn merge(&mut self, other: &QuantileSnapshot) {
        if self.cells.len() < other.cells.len() {
            self.cells.resize(other.cells.len(), 0);
        }
        for (i, c) in other.cells.iter().enumerate() {
            self.cells[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimate the `q`-quantile (0.0 ≤ q ≤ 1.0): the upper edge of
    /// the cell containing the order statistic at rank
    /// `round(q · (count − 1))`. Guaranteed `exact ≤ estimate ≤
    /// exact + exact/16`. Returns 0 on an empty sketch.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, c) in self.cells.iter().enumerate() {
            cum += c;
            if cum > rank {
                return cell_upper(i);
            }
        }
        cell_upper(CELLS - 1)
    }
}

/// Per-`TrafficClass` fetch-latency SLO targets (nanoseconds),
/// threaded from the cluster config into each cache module. Defaults
/// sit above the paper's measured medians — ~9.1 ms for a disk fill
/// (`Default` class) and ~4.4 ms for a cooperative peer fetch (`Peer`)
/// — so a healthy run burns (exceeds the target) only in the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTargets {
    /// p99 target for `TrafficClass::Default` fetches (iod/disk path).
    pub fetch_p99_ns_default: u64,
    /// p99 target for `TrafficClass::Peer` fetches (cooperative path).
    pub fetch_p99_ns_peer: u64,
}

impl Default for SloTargets {
    fn default() -> SloTargets {
        SloTargets { fetch_p99_ns_default: 15_000_000, fetch_p99_ns_peer: 8_000_000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mapping_is_monotonic_and_upper_bounds() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let c = cell_of(v);
            assert!(c >= prev, "monotonic at {v}");
            assert!(cell_upper(c) >= v, "upper bound at {v}");
            prev = c;
        }
        for s in 10..64u32 {
            let v = 1u64 << s;
            assert!(cell_upper(cell_of(v)) >= v);
            assert!(cell_of(v) > cell_of(v - 1), "power boundary at {v}");
        }
        assert_eq!(cell_of(u64::MAX), CELLS - 1);
        assert_eq!(cell_upper(cell_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let s = QuantileSketch::new();
        for v in 0..16u64 {
            s.record(v);
        }
        let snap = s.snapshot();
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), 15);
    }

    #[test]
    fn merge_equals_single_sketch() {
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        let whole = QuantileSketch::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 37)
            } else {
                b.record(v * 37)
            }
            whole.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    proptest! {
        // The satellite property: every estimated quantile brackets the
        // exact sorted-order statistic from above within 1/16 relative
        // error.
        #[test]
        fn estimates_bracket_exact_sorted_quantiles(
            mut values in collection::vec(0u64..(u64::MAX >> 8), 1..500),
        ) {
            let s = QuantileSketch::new();
            for &v in &values {
                s.record(v);
            }
            let snap = s.snapshot();
            values.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let rank = (q * (values.len() - 1) as f64).round() as usize;
                let exact = values[rank];
                let est = snap.quantile(q);
                prop_assert!(est >= exact, "q={q}: est {est} < exact {exact}");
                prop_assert!(
                    est <= exact + exact / 16,
                    "q={q}: est {est} > exact {exact} + 1/16"
                );
            }
        }
    }
}
