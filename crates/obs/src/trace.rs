//! Bounded structured trace ring + Chrome-trace export.
//!
//! Same Vyukov bounded-MPMC sequence-number discipline as the core
//! crate's `EventRing` (and the same no-`unsafe` constraint): each slot
//! is plain atomics, producers claim a slot with one CAS on the enqueue
//! cursor, and a full ring **drops the event and counts it** — tracing
//! is lossy by design (unlike the accounting ring, where the producer
//! becomes the drainer, a trace event carries no correctness weight).
//!
//! Event names are interned once at wiring time (a mutex, cold path
//! only); the hot-path record is a handful of relaxed stores. Sim-clock
//! timestamps are nanoseconds; the exporter emits Chrome's microsecond
//! `ts`/`dur` with fractional precision, so `chrome://tracing` (or
//! Perfetto) opens the file directly.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Interned trace-event name (index into the hub's name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(pub(crate) u32);

/// Chrome-trace phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `ph: "i"` — a point in time.
    Instant,
    /// `ph: "X"` — a complete span with a duration.
    Span,
    /// `ph: "s"` — start of a cross-lane flow arrow.
    FlowStart,
    /// `ph: "t"` — intermediate step of a flow.
    FlowStep,
    /// `ph: "f"` — end of a flow.
    FlowEnd,
}

impl Phase {
    fn encode(self) -> u32 {
        match self {
            Phase::Instant => 0,
            Phase::Span => 1,
            Phase::FlowStart => 2,
            Phase::FlowStep => 3,
            Phase::FlowEnd => 4,
        }
    }

    fn decode(raw: u32) -> Phase {
        match raw {
            1 => Phase::Span,
            2 => Phase::FlowStart,
            3 => Phase::FlowStep,
            4 => Phase::FlowEnd,
            _ => Phase::Instant,
        }
    }

    /// Flow phases carry a flow id instead of arguments.
    pub fn is_flow(self) -> bool {
        matches!(self, Phase::FlowStart | Phase::FlowStep | Phase::FlowEnd)
    }
}

/// One drained trace event, names resolved.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    pub phase: Phase,
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Process lane in the trace viewer — we use the node id.
    pub pid: u32,
    /// Thread lane — we use a per-component lane id.
    pub tid: u32,
    /// Up to two named arguments (label from the interner, value raw).
    pub args: Vec<(String, u64)>,
    /// Flow correlation id — nonzero only for flow-phase events, where
    /// it rides in the slot's `arg0` cell.
    pub flow_id: u64,
}

struct Slot {
    seq: AtomicUsize,
    name: AtomicU32,
    phase: AtomicU32,
    ts: AtomicU64,
    dur: AtomicU64,
    pid: AtomicU32,
    tid: AtomicU32,
    arg0: AtomicU64,
    arg1: AtomicU64,
}

struct NameEntry {
    name: String,
    arg_names: [Option<String>; 2],
}

/// A drained [`Slot`]'s payload: (name, phase, ts, dur, pid, tid, arg0,
/// arg1).
type RawSlot = (u32, u32, u64, u64, u32, u32, u64, u64);

/// Bounded MPMC trace ring with an interner for event names.
pub struct TraceRing {
    slots: Vec<Slot>,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
    dropped: AtomicU64,
    names: Mutex<Vec<NameEntry>>,
}

impl TraceRing {
    /// `capacity` is rounded up to a power of two (sequence arithmetic
    /// requires it).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    name: AtomicU32::new(0),
                    phase: AtomicU32::new(0),
                    ts: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                    pid: AtomicU32::new(0),
                    tid: AtomicU32::new(0),
                    arg0: AtomicU64::new(0),
                    arg1: AtomicU64::new(0),
                })
                .collect(),
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            names: Mutex::new(Vec::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Intern an event name with up to two argument labels (idempotent
    /// on the name). Cold path — called at wiring time, or at epoch
    /// frequency for dynamic names.
    pub fn intern(&self, name: &str, arg0: Option<&str>, arg1: Option<&str>) -> EventId {
        let mut names = self.names.lock().unwrap();
        if let Some(i) = names.iter().position(|e| e.name == name) {
            return EventId(i as u32);
        }
        names.push(NameEntry {
            name: name.to_string(),
            arg_names: [arg0.map(str::to_string), arg1.map(str::to_string)],
        });
        EventId((names.len() - 1) as u32)
    }

    /// Record one event; on a full ring the event is dropped and
    /// counted. Hot path: one CAS + relaxed stores.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        id: EventId,
        phase: Phase,
        ts_ns: u64,
        dur_ns: u64,
        pid: u32,
        tid: u32,
        arg0: u64,
        arg1: u64,
    ) -> bool {
        let mask = self.slots.len() - 1;
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.name.store(id.0, Ordering::Relaxed);
                        slot.phase.store(phase.encode(), Ordering::Relaxed);
                        slot.ts.store(ts_ns, Ordering::Relaxed);
                        slot.dur.store(dur_ns, Ordering::Relaxed);
                        slot.pid.store(pid, Ordering::Relaxed);
                        slot.tid.store(tid, Ordering::Relaxed);
                        slot.arg0.store(arg0, Ordering::Relaxed);
                        slot.arg1.store(arg1, Ordering::Relaxed);
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                // Full lap behind: the ring is full. Tracing is lossy.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    fn pop_raw(&self) -> Option<RawSlot> {
        let mask = self.slots.len() - 1;
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let out = (
                            slot.name.load(Ordering::Relaxed),
                            slot.phase.load(Ordering::Relaxed),
                            slot.ts.load(Ordering::Relaxed),
                            slot.dur.load(Ordering::Relaxed),
                            slot.pid.load(Ordering::Relaxed),
                            slot.tid.load(Ordering::Relaxed),
                            slot.arg0.load(Ordering::Relaxed),
                            slot.arg1.load(Ordering::Relaxed),
                        );
                        slot.seq.store(pos.wrapping_add(self.slots.len()), Ordering::Release);
                        return Some(out);
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every buffered event (FIFO), resolving names and argument
    /// labels. Destructive: a second drain returns only newer events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let names = self.names.lock().unwrap();
        let mut out = Vec::new();
        while let Some((name, phase, ts, dur, pid, tid, a0, a1)) = self.pop_raw() {
            let entry = names.get(name as usize);
            let phase = Phase::decode(phase);
            let mut args = Vec::new();
            // Flow phases repurpose arg0 as the flow id, so they never
            // carry named arguments.
            if !phase.is_flow() {
                if let Some(e) = entry {
                    if let Some(l) = &e.arg_names[0] {
                        args.push((l.clone(), a0));
                    }
                    if let Some(l) = &e.arg_names[1] {
                        args.push((l.clone(), a1));
                    }
                }
            }
            out.push(TraceEvent {
                name: entry.map(|e| e.name.clone()).unwrap_or_else(|| format!("event-{name}")),
                phase,
                ts_ns: ts,
                dur_ns: dur,
                pid,
                tid,
                args,
                flow_id: if phase.is_flow() { a0 } else { 0 },
            });
        }
        out
    }
}

/// Render drained events as a Chrome-trace (`chrome://tracing`) JSON
/// array. Timestamps convert from sim nanoseconds to the format's
/// microseconds, keeping nanosecond precision as fractions.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"name\":\"{}\",", escape_json(&e.name)));
        match e.phase {
            Phase::Span => {
                out.push_str(&format!(
                    "\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},",
                    e.ts_ns as f64 / 1000.0,
                    e.dur_ns as f64 / 1000.0
                ));
            }
            Phase::Instant => {
                out.push_str(&format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},",
                    e.ts_ns as f64 / 1000.0
                ));
            }
            Phase::FlowStart | Phase::FlowStep | Phase::FlowEnd => {
                let ph = match e.phase {
                    Phase::FlowStart => "s",
                    Phase::FlowStep => "t",
                    _ => "f",
                };
                // "bp":"e" binds the finish to the enclosing slice, the
                // binding Perfetto renders most reliably.
                let bind = if e.phase == Phase::FlowEnd { "\"bp\":\"e\"," } else { "" };
                out.push_str(&format!(
                    "\"cat\":\"flow\",\"ph\":\"{}\",{}\"id\":{},\"ts\":{:.3},",
                    ph,
                    bind,
                    e.flow_id,
                    e.ts_ns as f64 / 1000.0
                ));
            }
        }
        out.push_str(&format!("\"pid\":{},\"tid\":{},\"args\":{{", e.pid, e.tid));
        for (j, (label, value)) in e.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(label), value));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escaping for names we intern ourselves.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_fifo() {
        let r = TraceRing::new(8);
        let a = r.intern("alpha", Some("x"), None);
        let b = r.intern("beta", Some("x"), Some("y"));
        assert_eq!(r.intern("alpha", None, None), a, "interning is idempotent");
        r.record(a, Phase::Instant, 100, 0, 1, 0, 7, 0);
        r.record(b, Phase::Span, 200, 50, 2, 1, 8, 9);
        let ev = r.drain();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "alpha");
        assert_eq!(ev[0].args, vec![("x".to_string(), 7)]);
        assert_eq!(ev[1].phase, Phase::Span);
        assert_eq!(ev[1].dur_ns, 50);
        assert_eq!(ev[1].args, vec![("x".to_string(), 8), ("y".to_string(), 9)]);
        assert!(r.drain().is_empty(), "drain is destructive");
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = TraceRing::new(4);
        let id = r.intern("e", None, None);
        for i in 0..4 {
            assert!(r.record(id, Phase::Instant, i, 0, 0, 0, 0, 0));
        }
        assert!(!r.record(id, Phase::Instant, 99, 0, 0, 0, 0, 0));
        assert!(!r.record(id, Phase::Instant, 99, 0, 0, 0, 0, 0));
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.drain().len(), 4, "buffered events survive the overflow");
        // Capacity freed: recording works again.
        assert!(r.record(id, Phase::Instant, 100, 0, 0, 0, 0, 0));
    }

    #[test]
    fn chrome_export_shapes() {
        let r = TraceRing::new(8);
        let s = r.intern("fetch", Some("blocks"), None);
        let i = r.intern("tick \"q\"", None, None);
        r.record(s, Phase::Span, 1_500, 2_000, 3, 1, 12, 0);
        r.record(i, Phase::Instant, 4_000, 0, 3, 2, 0, 0);
        let json = chrome_trace_json(&r.drain());
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.500,\"dur\":2.000"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":4.000"));
        assert!(json.contains("\"blocks\":12"));
        assert!(json.contains("tick \\\"q\\\""), "names are escaped");
    }

    #[test]
    fn flow_events_round_trip_with_id() {
        let r = TraceRing::new(8);
        let f = r.intern("coop_fetch", None, None);
        r.record(f, Phase::FlowStart, 1_000, 0, 1, 1, 0xBEEF, 0);
        r.record(f, Phase::FlowStep, 2_000, 0, 0, 0, 0xBEEF, 0);
        r.record(f, Phase::FlowEnd, 3_000, 0, 1, 1, 0xBEEF, 0);
        let ev = r.drain();
        assert_eq!(ev.len(), 3);
        assert!(ev.iter().all(|e| e.flow_id == 0xBEEF && e.args.is_empty()));
        assert_eq!(ev[0].phase, Phase::FlowStart);
        assert_eq!(ev[1].phase, Phase::FlowStep);
        assert_eq!(ev[2].phase, Phase::FlowEnd);
        let json = chrome_trace_json(&ev);
        assert!(json.contains(&format!("\"ph\":\"s\",\"id\":{},\"ts\":1.000", 0xBEEF)));
        assert!(json.contains(&format!("\"ph\":\"t\",\"id\":{},\"ts\":2.000", 0xBEEF)));
        assert!(json.contains(&format!("\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":3.000", 0xBEEF)));
        assert!(json.contains("\"cat\":\"flow\""));
    }

    #[test]
    fn concurrent_producers_lose_only_counted_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = TraceRing::new(64);
        let id = r.intern("e", None, None);
        let pushed = AtomicU64::new(0);
        std::thread::scope(|sc| {
            for t in 0..4u32 {
                let r = &r;
                let pushed = &pushed;
                sc.spawn(move || {
                    for i in 0..10_000u64 {
                        if r.record(id, Phase::Instant, i, 0, t, 0, 0, 0) {
                            pushed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let drained = r.drain().len() as u64;
        assert_eq!(drained, pushed.load(Ordering::Relaxed));
        assert_eq!(r.dropped() + pushed.load(Ordering::Relaxed), 40_000);
    }
}
