//! Metric registration and snapshotting — the cold side of `metrics.rs`.
//!
//! Handles are resolved **once** (at wiring time, under a mutex) and
//! cached by the instrumented component; after that the hot path never
//! touches the registry. Snapshots are point-in-time copies;
//! [`MetricsSnapshot::delta`] subtracts an earlier snapshot so the
//! epoch-aligned export can report per-epoch activity while the cells
//! themselves stay monotonic.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Registry of named metric cells. Registration is idempotent: asking
/// for an existing name returns a handle to the same cell, so two
/// components may safely share a metric. Lookup is map-backed
/// (O(log n)) so registration cost stays flat as the per-app and
/// per-ghost dynamic names multiply.
#[derive(Default)]
pub struct MetricRegistry {
    inner: Mutex<Inner>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().unwrap();
        g.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().unwrap();
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock().unwrap();
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every registered cell.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: g.gauges.iter().map(|(n, v)| (n.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.load_buckets(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Copied state of one histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    fn accumulate(&mut self, d: &HistogramSnapshot) {
        self.count += d.count;
        self.sum += d.sum;
        if self.buckets.len() < d.buckets.len() {
            self.buckets.resize(d.buckets.len(), 0);
        }
        for (i, b) in d.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
    }

    /// Coarse quantile estimate from the log2 buckets: the upper edge
    /// (`2^i − 1`) of the bucket holding the order statistic at rank
    /// `round(q · (count − 1))`. Power-of-two resolution — use the
    /// `quantile` sketch when 1/16 relative error matters. Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum > rank {
                // Bucket i holds values with bit length i: 0 for i=0,
                // [2^(i-1), 2^i - 1] otherwise.
                return if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Point-in-time metric values (or, after [`delta`](Self::delta), the
/// activity between two points in time). Counters and histograms
/// subtract; gauges are levels, so a delta keeps the later value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Activity between `earlier` and `self`. Cells registered after
    /// `earlier` was taken count from zero.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| {
                    (n.clone(), v.saturating_sub(earlier.counters.get(n).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    (n.clone(), h.delta(earlier.histograms.get(n).unwrap_or(&Default::default())))
                })
                .collect(),
        }
    }

    /// Fold a delta into an accumulator — the inverse of [`delta`],
    /// used by the snapshot-invariant tests: summing every epoch delta
    /// must reproduce the cumulative totals.
    pub fn accumulate(&mut self, d: &MetricsSnapshot) {
        for (n, v) in &d.counters {
            *self.counters.entry(n.clone()).or_insert(0) += v;
        }
        for (n, v) in &d.gauges {
            self.gauges.insert(n.clone(), *v);
        }
        for (n, h) in &d.histograms {
            self.histograms.entry(n.clone()).or_default().accumulate(h);
        }
    }

    /// JSON object (hand-rolled — this crate is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_map(&mut out, self.counters.iter().map(|(n, v)| (n.as_str(), v.to_string())));
        out.push_str("},\"gauges\":{");
        push_map(&mut out, self.gauges.iter().map(|(n, v)| (n.as_str(), v.to_string())));
        out.push_str("},\"histograms\":{");
        push_map(
            &mut out,
            self.histograms.iter().map(|(n, h)| {
                let buckets = h.buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",");
                (
                    n.as_str(),
                    format!(
                        "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        h.count, h.sum, buckets
                    ),
                )
            }),
        );
        out.push_str("}}");
        out
    }

    /// Plain-text summary, one metric per line.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.counters {
            out.push_str(&format!("counter {n} = {v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("gauge   {n} = {v}\n"));
        }
        for (n, h) in &self.histograms {
            let mean = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            out.push_str(&format!("hist    {n}: count={} mean={:.1}\n", h.count, mean));
        }
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&crate::trace::escape_json(name));
        out.push_str("\":");
        out.push_str(&value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counters["x"], 2);
        let g1 = r.gauge("g");
        r.gauge("g").set(7);
        assert_eq!(g1.get(), 7);
        let h = r.histogram("h");
        r.histogram("h").record(12);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn delta_subtracts_and_accumulate_inverts() {
        let r = MetricRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        let g = r.gauge("g");
        c.add(3);
        h.record(10);
        g.set(1);
        let s0 = r.snapshot();
        c.add(5);
        h.record(20);
        h.record(30);
        g.set(2);
        let s1 = r.snapshot();
        let d = s1.delta(&s0);
        assert_eq!(d.counters["c"], 5);
        assert_eq!(d.histograms["h"].count, 2);
        assert_eq!(d.histograms["h"].sum, 50);
        assert_eq!(d.gauges["g"], 2);

        let mut acc = s0.clone();
        acc.accumulate(&d);
        assert_eq!(acc, s1);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let r = MetricRegistry::new();
        r.counter("a").inc();
        r.histogram("h").record(2);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"count\":1"));
    }
}
