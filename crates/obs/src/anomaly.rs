//! Anomaly flight recorder: an epoch-mark rule engine.
//!
//! The epoch-delta log ([`ObsHub::epoch_deltas`]) already slices every
//! metric into per-epoch activity windows; the rule engine replays
//! those windows looking for the three failure signatures the cache
//! stack can actually produce:
//!
//! * **hit-ratio collapse** — the per-epoch hit ratio drops sharply
//!   between consecutive windows (working-set blowout, partition
//!   thrash, or an eviction-policy regression);
//! * **stale-hint storm** — a burst of `coop.stale_hint_blocks` in one
//!   window (the block directory's hints have rotted faster than
//!   aging reclaims them);
//! * **trace-ring overflow burst** — `obs.trace_dropped` jumps inside
//!   one window (the ring is sized below the event rate, so the trace
//!   evidence for *this* incident is incomplete).
//!
//! When any rule fires, the harness dumps a flight record: the firings,
//! a full metrics snapshot, and the tail of the (bounded) trace ring —
//! the black box to read after the crash, not a live alerting path.

use crate::registry::MetricsSnapshot;
use crate::trace::{chrome_trace_json, TraceEvent};

/// Thresholds for the epoch-mark rules; serde-free mirror of the
/// cluster config's `[telemetry.anomaly]` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyRules {
    /// Absolute drop in hit ratio between consecutive epochs that
    /// counts as a collapse (0.3 = thirty percentage points).
    pub hit_ratio_drop: f64,
    /// Ignore epochs with fewer accesses than this when judging hit
    /// ratio — tiny windows make noisy ratios.
    pub min_epoch_accesses: u64,
    /// `coop.stale_hint_blocks` delta in one epoch that counts as a
    /// storm.
    pub stale_hints_per_epoch: u64,
    /// `obs.trace_dropped` delta in one epoch that counts as an
    /// overflow burst.
    pub trace_drops_per_epoch: u64,
}

impl Default for AnomalyRules {
    fn default() -> AnomalyRules {
        AnomalyRules {
            hit_ratio_drop: 0.3,
            min_epoch_accesses: 64,
            stale_hints_per_epoch: 256,
            trace_drops_per_epoch: 1024,
        }
    }
}

/// One rule firing in one node's epoch window.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyFiring {
    /// Node label (`node3`, or `cluster` for a shared hub).
    pub node: String,
    /// Index into that hub's epoch-delta log.
    pub epoch: usize,
    /// Stable rule name: `hit_ratio_collapse`, `stale_hint_storm`, or
    /// `trace_overflow_burst`.
    pub rule: &'static str,
    /// Human-readable evidence (values that tripped the threshold).
    pub detail: String,
}

fn prefixed_sum(snap: &MetricsSnapshot, prefix: &str) -> u64 {
    snap.counters.iter().filter(|(n, _)| n.starts_with(prefix)).map(|(_, v)| v).sum()
}

/// Replay one hub's epoch-delta log against the rules.
pub fn evaluate(
    node: &str,
    deltas: &[MetricsSnapshot],
    rules: &AnomalyRules,
) -> Vec<AnomalyFiring> {
    let mut out = Vec::new();
    let mut prev_ratio: Option<f64> = None;
    for (epoch, d) in deltas.iter().enumerate() {
        let hits = prefixed_sum(d, "cache.hits.");
        let misses = prefixed_sum(d, "cache.misses.");
        let accesses = hits + misses;
        if accesses >= rules.min_epoch_accesses {
            let ratio = hits as f64 / accesses as f64;
            if let Some(p) = prev_ratio {
                if p - ratio >= rules.hit_ratio_drop {
                    out.push(AnomalyFiring {
                        node: node.to_string(),
                        epoch,
                        rule: "hit_ratio_collapse",
                        detail: format!(
                            "hit ratio {:.3} -> {:.3} ({} accesses)",
                            p, ratio, accesses
                        ),
                    });
                }
            }
            prev_ratio = Some(ratio);
        }
        let stale = d.counters.get("coop.stale_hint_blocks").copied().unwrap_or(0);
        if stale >= rules.stale_hints_per_epoch {
            out.push(AnomalyFiring {
                node: node.to_string(),
                epoch,
                rule: "stale_hint_storm",
                detail: format!("{stale} stale hint blocks in one epoch"),
            });
        }
        let drops = d.counters.get("obs.trace_dropped").copied().unwrap_or(0);
        if drops >= rules.trace_drops_per_epoch {
            out.push(AnomalyFiring {
                node: node.to_string(),
                epoch,
                rule: "trace_overflow_burst",
                detail: format!("{drops} trace events dropped in one epoch"),
            });
        }
    }
    out
}

/// Render the flight record. Always a valid JSON object — `fired`
/// tells the reader whether anything tripped; `recent_events` is the
/// tail (`max_events`) of the drained trace in Chrome-trace form.
pub fn flight_json(
    firings: &[AnomalyFiring],
    snapshot: &MetricsSnapshot,
    events: &[TraceEvent],
    max_events: usize,
) -> String {
    let tail = &events[events.len().saturating_sub(max_events)..];
    let mut out = String::from("{\n  \"fired\": ");
    out.push_str(if firings.is_empty() { "false" } else { "true" });
    out.push_str(",\n  \"firings\": [");
    for (i, f) in firings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"node\":\"{}\",\"epoch\":{},\"rule\":\"{}\",\"detail\":\"{}\"}}",
            crate::trace::escape_json(&f.node),
            f.epoch,
            f.rule,
            crate::trace::escape_json(&f.detail)
        ));
    }
    out.push_str("\n  ],\n  \"snapshot\": ");
    out.push_str(&snapshot.to_json());
    out.push_str(",\n  \"recent_events\": ");
    out.push_str(chrome_trace_json(tail).trim_end());
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHub;

    fn delta(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (n, v) in pairs {
            s.counters.insert(n.to_string(), *v);
        }
        s
    }

    #[test]
    fn hit_ratio_collapse_fires_once_and_respects_floor() {
        let rules = AnomalyRules::default();
        let deltas = vec![
            delta(&[("cache.hits.lru", 90), ("cache.misses.lru", 10)]),
            // Tiny window: skipped, does not poison the baseline.
            delta(&[("cache.hits.lru", 1), ("cache.misses.lru", 1)]),
            delta(&[("cache.hits.lru", 30), ("cache.misses.lru", 70)]),
            delta(&[("cache.hits.lru", 30), ("cache.misses.lru", 70)]),
        ];
        let f = evaluate("node0", &deltas, &rules);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hit_ratio_collapse");
        assert_eq!(f[0].epoch, 2);
        assert_eq!(f[0].node, "node0");
    }

    #[test]
    fn storm_and_overflow_rules_fire_on_thresholds() {
        let rules = AnomalyRules {
            stale_hints_per_epoch: 10,
            trace_drops_per_epoch: 5,
            ..Default::default()
        };
        let deltas = vec![
            delta(&[("coop.stale_hint_blocks", 9), ("obs.trace_dropped", 4)]),
            delta(&[("coop.stale_hint_blocks", 10), ("obs.trace_dropped", 5)]),
        ];
        let f = evaluate("n", &deltas, &rules);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.rule == "stale_hint_storm" && x.epoch == 1));
        assert!(f.iter().any(|x| x.rule == "trace_overflow_burst" && x.epoch == 1));
    }

    #[test]
    fn quiet_log_fires_nothing() {
        let rules = AnomalyRules::default();
        let deltas = vec![delta(&[("cache.hits.lru", 80), ("cache.misses.lru", 20)]); 5];
        assert!(evaluate("n", &deltas, &rules).is_empty());
    }

    #[test]
    fn flight_json_bounds_events_and_reports_fired() {
        let hub = ObsHub::new(16);
        let id = hub.intern("e", None, None);
        for i in 0..8 {
            hub.set_now(i * 100);
            hub.instant(id, 0, 0, 0, 0);
        }
        let events = hub.drain_trace();
        let firings = vec![AnomalyFiring {
            node: "node0".into(),
            epoch: 3,
            rule: "stale_hint_storm",
            detail: "300 stale".into(),
        }];
        let json = flight_json(&firings, &hub.snapshot(), &events, 4);
        assert!(json.contains("\"fired\": true"));
        assert!(json.contains("stale_hint_storm"));
        // Only the 4-event tail is kept: ts 400..700 survive, 0..300 don't.
        assert!(json.contains("\"ts\":0.400"));
        assert!(!json.contains("\"ts\":0.100"));
        let empty = flight_json(&[], &hub.snapshot(), &[], 4);
        assert!(empty.contains("\"fired\": false"));
    }
}
