//! # kcache-obs — always-on observability for the cache stack
//!
//! Dependency-free metrics + tracing substrate shared by every layer:
//!
//! * [`metrics`] — lock-free cells (counters, gauges, log-scale
//!   histograms). One relaxed atomic add per hot-path increment; the
//!   file contains no locks and CI greps to keep it that way.
//! * [`registry`] — named registration with typed handles (resolved
//!   once at wiring time) and point-in-time [`MetricsSnapshot`]s whose
//!   [`MetricsSnapshot::delta`] powers epoch-aligned reporting.
//! * [`trace`] — a bounded Vyukov MPMC [`TraceRing`] of structured
//!   spans/instants with interned names, exported as Chrome-trace JSON
//!   (`chrome://tracing` / Perfetto).
//!
//! [`ObsHub`] ties the three together for one simulated cluster: a
//! shared registry, a shared trace ring, the sim-clock "now" (stored by
//! whichever actor is currently executing), and the epoch-aligned delta
//! log driven by the buffer manager's existing `epoch_tick` hook.
//!
//! Instrumented components hold an `Option<...>` of pre-resolved
//! handles; with observability off (the default) the hot path pays one
//! never-taken branch.

pub mod anomaly;
pub mod federate;
pub mod flow;
pub mod metrics;
pub mod quantile;
pub mod registry;
pub mod trace;

pub use anomaly::{evaluate, flight_json, AnomalyFiring, AnomalyRules};
pub use federate::ClusterObs;
pub use flow::FlowId;
pub use metrics::{Counter, Gauge, Histogram, HIST_BUCKETS};
pub use quantile::{QuantileSketch, QuantileSnapshot, SloTargets};
pub use registry::{HistogramSnapshot, MetricRegistry, MetricsSnapshot};
pub use trace::{chrome_trace_json, EventId, Phase, TraceEvent, TraceRing};

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Epoch deltas kept before the oldest is discarded (a delta per ~512
/// accesses: 4096 windows cover any run the harness performs while
/// bounding a pathological one).
pub const MAX_EPOCH_DELTAS: usize = 4096;

/// Default trace-ring capacity (slots; rounded up to a power of two).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

struct EpochState {
    last: MetricsSnapshot,
    deltas: Vec<MetricsSnapshot>,
    discarded: u64,
    /// Ring-drop total already folded into `obs.trace_dropped`, so
    /// each epoch's delta of that counter is the drops in that window.
    drops_marked: u64,
}

/// One node's observability plumbing, shared by `Arc` across that
/// node's buffer manager, cache module, and the harness. Federate
/// per-node hubs with [`ClusterObs`].
pub struct ObsHub {
    registry: MetricRegistry,
    trace: TraceRing,
    now_ns: AtomicU64,
    epochs: Mutex<EpochState>,
    trace_drop_counter: Counter,
}

impl ObsHub {
    pub fn new(trace_capacity: usize) -> Arc<ObsHub> {
        let registry = MetricRegistry::new();
        // Mirrored from the ring at every epoch mark so the anomaly
        // rules see per-epoch drop bursts, not just a lifetime total.
        let trace_drop_counter = registry.counter("obs.trace_dropped");
        Arc::new(ObsHub {
            registry,
            trace: TraceRing::new(trace_capacity),
            now_ns: AtomicU64::new(0),
            epochs: Mutex::new(EpochState {
                last: MetricsSnapshot::default(),
                deltas: Vec::new(),
                discarded: 0,
                drops_marked: 0,
            }),
            trace_drop_counter,
        })
    }

    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Advance the hub's sim clock — called by an actor when it starts
    /// handling an event, so instruments timestamp with simulated time.
    #[inline]
    pub fn set_now(&self, ns: u64) {
        self.now_ns.store(ns, Relaxed);
    }

    #[inline]
    pub fn now(&self) -> u64 {
        self.now_ns.load(Relaxed)
    }

    /// Intern a trace-event name (cold path; idempotent).
    pub fn intern(&self, name: &str, arg0: Option<&str>, arg1: Option<&str>) -> EventId {
        self.trace.intern(name, arg0, arg1)
    }

    /// Record an instant event at the hub's current sim time.
    #[inline]
    pub fn instant(&self, id: EventId, pid: u32, tid: u32, arg0: u64, arg1: u64) {
        self.trace.record(id, Phase::Instant, self.now(), 0, pid, tid, arg0, arg1);
    }

    /// Record a complete span from `start_ns` to `start_ns + dur_ns`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        id: EventId,
        pid: u32,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
        a0: u64,
        a1: u64,
    ) {
        self.trace.record(id, Phase::Span, start_ns, dur_ns, pid, tid, a0, a1);
    }

    /// Trace events dropped on ring overflow.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Record a flow-phase event (`s`/`t`/`f`) at an explicit
    /// timestamp — correlation points are emitted by actors on
    /// different nodes, so the caller supplies its own clock rather
    /// than trusting the hub's last `set_now`.
    #[inline]
    pub fn flow(&self, id: EventId, phase: Phase, ts_ns: u64, pid: u32, tid: u32, flow: FlowId) {
        debug_assert!(phase.is_flow());
        self.trace.record(id, phase, ts_ns, 0, pid, tid, flow.0, 0);
    }

    /// Close the current epoch window: snapshot all metrics, log the
    /// delta against the previous epoch boundary. Driven by the buffer
    /// manager's `epoch_tick` hook.
    pub fn mark_epoch(&self) {
        let mut e = self.epochs.lock().unwrap();
        // Fold new ring drops into the mirror counter under the lock,
        // *before* snapshotting, so the delta attributes them to the
        // closing window.
        let drops = self.trace.dropped();
        self.trace_drop_counter.add(drops - e.drops_marked);
        e.drops_marked = drops;
        let snap = self.registry.snapshot();
        let delta = snap.delta(&e.last);
        e.last = snap;
        if e.deltas.len() >= MAX_EPOCH_DELTAS {
            e.deltas.remove(0);
            e.discarded += 1;
        }
        e.deltas.push(delta);
    }

    /// The logged epoch deltas (oldest first).
    pub fn epoch_deltas(&self) -> Vec<MetricsSnapshot> {
        self.epochs.lock().unwrap().deltas.clone()
    }

    /// Epoch windows logged / discarded to the cap.
    pub fn epoch_counts(&self) -> (usize, u64) {
        let e = self.epochs.lock().unwrap();
        (e.deltas.len(), e.discarded)
    }

    /// Cumulative point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Drain the trace ring (destructive, FIFO).
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Drain the trace ring into a Chrome-trace JSON document.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.drain_trace())
    }

    /// Cumulative snapshot + per-epoch deltas as one JSON document.
    pub fn metrics_json(&self) -> String {
        let snap = self.snapshot();
        let deltas = self.epoch_deltas();
        let mut out = String::from("{\n  \"snapshot\": ");
        out.push_str(&snap.to_json());
        out.push_str(",\n  \"epoch_deltas\": [");
        for (i, d) in deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&d.to_json());
        }
        let (epochs, discarded) = self.epoch_counts();
        out.push_str(&format!(
            "\n  ],\n  \"trace_dropped\": {},\n  \"epochs_logged\": {},\n  \"epochs_discarded\": {}\n}}\n",
            self.trace_dropped(),
            epochs,
            discarded
        ));
        out
    }

    /// Plain-text summary of the cumulative snapshot.
    pub fn summary_text(&self) -> String {
        self.snapshot().summary_text()
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (epochs, discarded) = self.epoch_counts();
        f.debug_struct("ObsHub")
            .field("now_ns", &self.now())
            .field("trace_capacity", &self.trace.capacity())
            .field("trace_dropped", &self.trace_dropped())
            .field("epochs", &epochs)
            .field("epochs_discarded", &discarded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hub_end_to_end() {
        let hub = ObsHub::new(64);
        let hits = hub.registry().counter("cache.hits");
        let lat = hub.registry().histogram("fetch.ns");
        let ev = hub.intern("miss_fill", Some("blocks"), None);
        hub.set_now(1_000);
        hits.inc();
        lat.record(250);
        hub.instant(ev, 0, 0, 4, 0);
        hub.span(ev, 0, 1, 500, 500, 2, 0);
        hub.mark_epoch();
        hits.inc();
        let (epochs, discarded) = hub.epoch_counts();
        assert_eq!((epochs, discarded), (1, 0));
        assert_eq!(hub.epoch_deltas()[0].counters["cache.hits"], 1);
        assert_eq!(hub.snapshot().counters["cache.hits"], 2);
        let trace = hub.chrome_trace_json();
        assert!(trace.contains("miss_fill"));
        assert!(trace.contains("\"blocks\":4"));
        let metrics = hub.metrics_json();
        assert!(metrics.contains("\"epoch_deltas\""));
        assert!(hub.summary_text().contains("cache.hits"));
    }

    #[test]
    fn epoch_marks_mirror_ring_drops_into_a_counter() {
        let hub = ObsHub::new(2);
        let id = hub.intern("e", None, None);
        for _ in 0..5 {
            hub.instant(id, 0, 0, 0, 0);
        }
        hub.mark_epoch();
        assert_eq!(hub.epoch_deltas()[0].counters["obs.trace_dropped"], 3);
        for _ in 0..2 {
            hub.instant(id, 0, 0, 0, 0);
        }
        hub.mark_epoch();
        assert_eq!(hub.epoch_deltas()[1].counters["obs.trace_dropped"], 2);
        assert_eq!(hub.snapshot().counters["obs.trace_dropped"], 5);
        let json = hub.metrics_json();
        assert!(json.contains("\"epochs_logged\": 2"));
        assert!(json.contains("\"epochs_discarded\": 0"));
        assert!(json.contains("\"trace_dropped\": 5"));
    }

    #[test]
    fn epoch_delta_log_is_bounded() {
        let hub = ObsHub::new(4);
        let c = hub.registry().counter("c");
        for _ in 0..(MAX_EPOCH_DELTAS + 10) {
            c.inc();
            hub.mark_epoch();
        }
        let (epochs, discarded) = hub.epoch_counts();
        assert_eq!(epochs, MAX_EPOCH_DELTAS);
        assert_eq!(discarded, 10);
    }

    proptest! {
        // The epoch-aligned export invariant: over any interleaving of
        // metric activity and epoch boundaries, the per-epoch deltas sum
        // back to the cumulative totals.
        #[test]
        fn epoch_deltas_sum_to_cumulative_totals(
            ops in collection::vec((0u8..4, 0u64..1_000), 1..300),
        ) {
            let hub = ObsHub::new(16);
            let c = hub.registry().counter("c");
            let g = hub.registry().gauge("g");
            let h = hub.registry().histogram("h");
            for (kind, v) in ops {
                match kind {
                    0 => c.add(v),
                    1 => g.set(v),
                    2 => h.record(v),
                    _ => hub.mark_epoch(),
                }
            }
            // Close the final window so every increment is in some delta.
            hub.mark_epoch();
            let mut acc = MetricsSnapshot::default();
            for d in hub.epoch_deltas() {
                acc.accumulate(&d);
            }
            let total = hub.snapshot();
            prop_assert_eq!(&acc.counters, &total.counters);
            prop_assert_eq!(&acc.histograms, &total.histograms);
            // Gauges are levels: the accumulated value is the last set.
            prop_assert_eq!(&acc.gauges, &total.gauges);
        }
    }
}
