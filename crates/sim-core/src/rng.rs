//! Deterministic random-number streams.
//!
//! Every source of randomness in a simulation is a [`DetRng`] stream derived
//! from `(master_seed, stream_id)`. Two runs with the same master seed are
//! bit-identical regardless of how many streams exist or in what order they
//! are created, because each stream's state depends only on its id — never on
//! global draw order.
//!
//! The generator is SplitMix64: tiny, fast, passes BigCrush for this use, and
//! trivially seedable from a hash of the stream id.

use rand::RngCore;

/// A deterministic, seekable pseudo-random stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create the stream identified by `stream_id` under `master_seed`.
    pub fn stream(master_seed: u64, stream_id: u64) -> DetRng {
        // Mix the two so that adjacent ids do not produce correlated streams.
        let mut s = master_seed ^ 0x6A09_E667_F3BC_C909;
        let a = splitmix64(&mut s);
        let mut s2 = stream_id.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(a);
        let b = splitmix64(&mut s2);
        DetRng { state: b }
    }

    /// Derive a sub-stream, e.g. one per simulated process from a per-node
    /// stream.
    pub fn substream(&self, id: u64) -> DetRng {
        DetRng::stream(self.state, id.wrapping_add(0x9E37_79B9))
    }

    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection method (bias-free).
        let mut x = self.next_u64_raw();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64_raw();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed duration with the given mean (in
    /// nanoseconds, returned as nanoseconds). Used for think times and
    /// arrival jitter.
    pub fn exp_nanos(&mut self, mean_nanos: u64) -> u64 {
        if mean_nanos == 0 {
            return 0;
        }
        let u = 1.0 - self.f64(); // (0, 1]
        (-(u.ln()) * mean_nanos as f64).round() as u64
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A Zipf(θ) sampler over `{0, .., n-1}` using the classical inverse-CDF
/// harmonic construction. θ = 0 is uniform; larger θ skews toward low ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::stream(42, 7);
        let mut b = DetRng::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = DetRng::stream(42, 1);
        let mut b = DetRng::stream(42, 2);
        let same = (0..64).filter(|_| a.next_u64_raw() == b.next_u64_raw()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::stream(1, 1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = DetRng::stream(3, 3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {} out of range", c);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::stream(4, 4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = DetRng::stream(5, 5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exp_nanos(1_000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((900.0..1_100.0).contains(&mean), "mean {} not ~1000", mean);
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = DetRng::stream(6, 6);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((4_000..6_000).contains(&c));
        }
    }

    #[test]
    fn zipf_skews_with_theta() {
        let z = Zipf::new(100, 1.2);
        let mut r = DetRng::stream(7, 7);
        let mut head = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        assert!(head as f64 / n as f64 > 0.5, "rank<10 mass {} too small", head);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::stream(8, 8);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = DetRng::stream(9, 9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
