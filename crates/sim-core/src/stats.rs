//! Measurement primitives used across the simulator.
//!
//! All statistics are plain accumulators — they never allocate per sample —
//! so they can sit on hot paths (per-request, per-block) without distorting
//! what they measure.

use crate::time::{Dur, SimTime};
use std::fmt;

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    pub fn new() -> Tally {
        Tally { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn record_dur(&mut self, d: Dur) {
        self.record(d.as_nanos() as f64);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two-bucketed histogram of durations; bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds. Fixed 64 buckets, no allocation on record.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_nanos: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; 64], count: 0, sum_nanos: 0 }
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    pub fn record(&mut self, d: Dur) {
        let n = d.as_nanos();
        let idx = if n == 0 { 0 } else { 63 - n.leading_zeros() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_nanos += n as u128;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur((self.sum_nanos / self.count as u128) as u64)
        }
    }

    /// Upper bound (exclusive) of the bucket containing the q-quantile.
    /// Coarse by construction (factor-of-two resolution) but allocation-free.
    pub fn quantile_upper_bound(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Dur(1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX));
            }
        }
        Dur(u64::MAX)
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
    }
}

/// Time-weighted average of a piecewise-constant value (queue depth,
/// utilization, cache occupancy). Integrates value×time between updates.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    pub fn new() -> TimeWeighted {
        TimeWeighted::default()
    }

    /// Record that the value changed to `value` at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let span = now.since(self.last_time).as_nanos() as f64;
        self.integral += self.last_value * span;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Average over `[0, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.since(self.last_time).as_nanos() as f64;
        let total = self.integral + self.last_value * span;
        let horizon = now.nanos() as f64;
        if horizon == 0.0 {
            0.0
        } else {
            total / horizon
        }
    }

    pub fn current(&self) -> f64 {
        self.last_value
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-9);
        // Sample variance of this classic dataset is 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert!((t.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tally_empty_is_zero() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
    }

    #[test]
    fn tally_merge_matches_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 11) as f64).collect();
        let mut whole = Tally::new();
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 33 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LogHistogram::new();
        h.record(Dur::nanos(1));
        h.record(Dur::nanos(3));
        h.record(Dur::nanos(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Dur::nanos((1 + 3 + 1000) / 3));
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(Dur::micros(1)); // bucket ~2^10
        }
        h.record(Dur::millis(10)); // far bucket
        let p50 = h.quantile_upper_bound(0.5);
        assert!(p50 <= Dur::micros(3), "p50 {} too high", p50);
        let p100 = h.quantile_upper_bound(1.0);
        assert!(p100 >= Dur::millis(10));
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.update(SimTime(0), 1.0);
        tw.update(SimTime(100), 3.0);
        // value 1.0 over [0,100), 3.0 over [100,200) => avg 2.0 at t=200.
        assert!((tw.average(SimTime(200)) - 2.0).abs() < 1e-9);
        assert_eq!(tw.max(), 3.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{}", c), "5");
    }
}
