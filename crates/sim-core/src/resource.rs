//! Serially-shared resources (CPU, disk arm, shared network medium).
//!
//! The simulator models contention with the *reservation* pattern: a caller
//! that knows its service time asks the resource when that work will
//! complete; the resource appends the job to its FIFO timeline and returns
//! the completion instant, which the caller uses to schedule its completion
//! event. This is exact for non-preemptive FIFO service and keeps the event
//! count at one event per job rather than one per queue operation.

use crate::stats::{Tally, TimeWeighted};
use crate::time::{Dur, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A non-preemptive FIFO resource with a single server.
#[derive(Debug)]
pub struct FifoResource {
    name: String,
    busy_until: SimTime,
    busy_time: Dur,
    jobs: u64,
    wait: Tally,
    service: Tally,
    backlog: TimeWeighted,
}

impl FifoResource {
    pub fn new(name: impl Into<String>) -> FifoResource {
        FifoResource {
            name: name.into(),
            busy_until: SimTime::ZERO,
            busy_time: Dur::ZERO,
            jobs: 0,
            wait: Tally::new(),
            service: Tally::new(),
            backlog: TimeWeighted::new(),
        }
    }

    /// Convenience constructor for the common shared-ownership case.
    pub fn shared(name: impl Into<String>) -> SharedResource {
        Rc::new(RefCell::new(FifoResource::new(name)))
    }

    /// Reserve `service` units of this resource starting no earlier than
    /// `now`; returns the instant the job completes.
    pub fn reserve(&mut self, now: SimTime, service: Dur) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.jobs += 1;
        self.busy_time += service;
        self.wait.record_dur(start.since(now));
        self.service.record_dur(service);
        self.busy_until = done;
        self.backlog.update(now, self.busy_until.since(now).as_secs_f64());
        done
    }

    /// Instant at which the resource next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Would a job submitted at `now` start immediately?
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `[0, now]` the resource spent serving.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            return 0.0;
        }
        // busy_time counts reserved service even if it extends past `now`;
        // clamp to the horizon for a sane ratio.
        let served =
            self.busy_time.as_nanos().saturating_sub(self.busy_until.since(now).as_nanos());
        served as f64 / now.nanos() as f64
    }

    /// Mean queueing delay experienced before service starts.
    pub fn mean_wait(&self) -> Dur {
        Dur(self.wait.mean() as u64)
    }

    /// Mean service demand per job.
    pub fn mean_service(&self) -> Dur {
        Dur(self.service.mean() as u64)
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Shared handle to a resource. Simulations are single-threaded per run, so
/// `Rc<RefCell<..>>` is the right ownership model here.
pub type SharedResource = Rc<RefCell<FifoResource>>;

/// Reserve on a shared resource (helper to keep call sites terse).
pub fn reserve(res: &SharedResource, now: SimTime, service: Dur) -> SimTime {
    res.borrow_mut().reserve(now, service)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("cpu");
        let done = r.reserve(SimTime(1000), Dur::nanos(500));
        assert_eq!(done, SimTime(1500));
        assert_eq!(r.mean_wait(), Dur::ZERO);
        assert_eq!(r.jobs(), 1);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new("disk");
        let d1 = r.reserve(SimTime(0), Dur::nanos(100));
        let d2 = r.reserve(SimTime(0), Dur::nanos(100));
        let d3 = r.reserve(SimTime(50), Dur::nanos(100));
        assert_eq!(d1, SimTime(100));
        assert_eq!(d2, SimTime(200), "second job waits for first");
        assert_eq!(d3, SimTime(300), "third waits for both");
        assert!(r.mean_wait() > Dur::ZERO);
    }

    #[test]
    fn resource_drains_then_idles() {
        let mut r = FifoResource::new("link");
        r.reserve(SimTime(0), Dur::nanos(10));
        assert!(!r.idle_at(SimTime(5)));
        assert!(r.idle_at(SimTime(10)));
        let done = r.reserve(SimTime(1000), Dur::nanos(10));
        assert_eq!(done, SimTime(1010), "gap does not carry over");
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut r = FifoResource::new("cpu");
        r.reserve(SimTime(0), Dur::nanos(500));
        let u = r.utilization(SimTime(1000));
        assert!((u - 0.5).abs() < 1e-9, "utilization {} should be 0.5", u);
    }

    #[test]
    fn utilization_clamps_future_reservations() {
        let mut r = FifoResource::new("cpu");
        r.reserve(SimTime(0), Dur::nanos(10_000));
        let u = r.utilization(SimTime(1000));
        assert!(u <= 1.0 + 1e-9, "utilization {} cannot exceed 1", u);
    }

    #[test]
    fn shared_helper_round_trips() {
        let r = FifoResource::shared("bus");
        let d1 = reserve(&r, SimTime(0), Dur::nanos(100));
        let d2 = reserve(&r, SimTime(0), Dur::nanos(50));
        assert_eq!(d1, SimTime(100));
        assert_eq!(d2, SimTime(150));
        assert_eq!(r.borrow().name(), "bus");
        assert_eq!(r.borrow().mean_service(), Dur::nanos(75));
    }
}
