//! The discrete-event engine: a totally-ordered event queue dispatching to
//! registered [`Actor`]s.
//!
//! Design notes:
//! * Events are ordered by `(time, sequence)`. The sequence number is a
//!   global monotone counter, so same-instant events dispatch in the order
//!   they were scheduled — runs are bit-reproducible.
//! * Actors interact **only** through events (possibly zero-delay). During
//!   dispatch the target actor is moved out of its slot, so an actor may
//!   freely schedule events for any actor, including itself.
//! * Payloads are `Box<dyn Any>`; each protocol crate defines its own typed
//!   messages and downcasts on receipt. [`Msg::cast`] keeps that ergonomic.

use crate::time::{Dur, SimTime};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of an actor registered with an [`Engine`].
pub type ActorId = usize;

/// Sentinel used as `from` for events not sent by any actor (timers,
/// bootstrap events).
pub const NO_ACTOR: ActorId = usize::MAX;

/// A message delivered to an actor.
pub struct Msg {
    /// Who scheduled this event (or [`NO_ACTOR`]).
    pub from: ActorId,
    /// Typed payload; downcast with [`Msg::cast`] or [`Msg::is`].
    pub payload: Box<dyn Any>,
}

impl Msg {
    pub fn new<T: Any>(from: ActorId, payload: T) -> Msg {
        Msg { from, payload: Box::new(payload) }
    }

    /// True if the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.payload.is::<T>()
    }

    /// Downcast the payload, returning the original message on mismatch so
    /// callers can chain attempts.
    pub fn cast<T: Any>(self) -> Result<Box<T>, Msg> {
        let Msg { from, payload } = self;
        payload.downcast::<T>().map_err(|payload| Msg { from, payload })
    }

    /// Borrow the payload as `T` if it is one.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Msg{{from: {}}}", self.from)
    }
}

/// A simulation participant. Actors own their state and react to messages.
pub trait Actor {
    /// Handle one message at the current simulation time.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Human-readable name for diagnostics.
    fn name(&self) -> String {
        "actor".to_string()
    }

    /// Opt-in downcast support so harness code can inspect actor state
    /// between runs (e.g. to read results out of a finished workload).
    /// Implementations that want this return `Some(self)`.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// Mutable counterpart of [`Actor::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    target: ActorId,
    msg: Msg,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Outcome of [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Number of events dispatched.
    pub events: u64,
    /// Simulation clock when the run ended.
    pub end_time: SimTime,
    /// Why the run ended.
    pub stop: StopReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// An actor called [`Ctx::stop`].
    Stopped,
    /// The configured horizon was reached.
    Horizon,
    /// The event budget was exhausted (likely a zero-delay livelock).
    EventBudget,
}

/// Scheduling context handed to an actor during dispatch.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ActorId,
    seq: &'a mut u64,
    queue: &'a mut BinaryHeap<QueuedEvent>,
    stop: &'a mut bool,
}

impl<'a> Ctx<'a> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor being dispatched.
    #[inline]
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `payload` to `target` after `delay` (zero-delay allowed;
    /// FIFO among same-instant events).
    pub fn schedule_in<T: Any>(&mut self, delay: Dur, target: ActorId, payload: T) {
        self.schedule_msg(delay, target, Msg::new(self.self_id, payload));
    }

    /// Deliver an already-built [`Msg`] after `delay`, preserving its `from`.
    pub fn schedule_msg(&mut self, delay: Dur, target: ActorId, msg: Msg) {
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(QueuedEvent { time: self.now + delay, seq, target, msg });
    }

    /// Deliver immediately (still via the queue, after events already due).
    pub fn send<T: Any>(&mut self, target: ActorId, payload: T) {
        self.schedule_in(Dur::ZERO, target, payload);
    }

    /// Schedule a message to this actor itself.
    pub fn schedule_self<T: Any>(&mut self, delay: Dur, payload: T) {
        let id = self.self_id;
        self.schedule_in(delay, id, payload);
    }

    /// Halt the simulation after the current dispatch completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The simulation engine.
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent>,
    actors: Vec<Option<Box<dyn Actor>>>,
    stop: bool,
    events_dispatched: u64,
    /// Hard cap on dispatched events; guards against zero-delay livelock.
    pub event_budget: u64,
    /// Master seed, recorded for reproducibility reporting.
    pub seed: u64,
}

impl Engine {
    pub fn new(seed: u64) -> Engine {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            stop: false,
            events_dispatched: 0,
            event_budget: u64::MAX,
            seed,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        self.actors.push(Some(actor));
        self.actors.len() - 1
    }

    /// Reserve an id to break construction cycles; fill it with
    /// [`Engine::install`] before any event targets it.
    pub fn reserve_actor(&mut self) -> ActorId {
        self.actors.push(None);
        self.actors.len() - 1
    }

    /// Install an actor into a reserved slot.
    pub fn install(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        assert!(self.actors[id].is_none(), "actor slot {} already occupied", id);
        self.actors[id] = Some(actor);
    }

    /// Schedule a bootstrap message from outside any actor.
    pub fn post<T: Any>(&mut self, delay: Dur, target: ActorId, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            time: self.now + delay,
            seq,
            target,
            msg: Msg::new(NO_ACTOR, payload),
        });
    }

    /// Run until the queue drains, an actor stops the run, `horizon` is
    /// passed, or the event budget is exhausted.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        let mut stop_reason = StopReason::QueueEmpty;
        while let Some(ev) = self.queue.peek() {
            if ev.time > horizon {
                self.now = horizon;
                stop_reason = StopReason::Horizon;
                break;
            }
            if self.events_dispatched >= self.event_budget {
                stop_reason = StopReason::EventBudget;
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_dispatched += 1;

            let mut actor = self.actors[ev.target]
                .take()
                .unwrap_or_else(|| panic!("event targets missing/in-flight actor {}", ev.target));
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: ev.target,
                    seq: &mut self.seq,
                    queue: &mut self.queue,
                    stop: &mut self.stop,
                };
                actor.handle(&mut ctx, ev.msg);
            }
            self.actors[ev.target] = Some(actor);

            if self.stop {
                stop_reason = StopReason::Stopped;
                break;
            }
        }
        RunReport { events: self.events_dispatched, end_time: self.now, stop: stop_reason }
    }

    /// Run to quiescence (or stop/budget).
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime(u64::MAX))
    }

    /// Immutable access to an actor between runs (e.g. to pull results).
    /// Panics if the id was never installed.
    pub fn actor(&self, id: ActorId) -> &dyn Actor {
        self.actors[id].as_deref().expect("actor not installed")
    }

    /// Mutable access to an actor between runs.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor {
        self.actors[id].as_deref_mut().expect("actor not installed")
    }

    /// Downcast an actor to a concrete type (requires the actor to opt in
    /// via [`Actor::as_any`]).
    pub fn actor_as<T: Any>(&self, id: ActorId) -> Option<&T> {
        self.actor(id).as_any()?.downcast_ref::<T>()
    }

    /// Mutable counterpart of [`Engine::actor_as`].
    pub fn actor_as_mut<T: Any>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actor_mut(id).as_any_mut()?.downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo actor: replies `Pong` to every `Ping` after a fixed delay.
    struct Ping(u32);
    struct Pong(#[allow(dead_code)] u32);

    struct Echo {
        delay: Dur,
        seen: Vec<u32>,
    }

    impl Actor for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if let Ok(p) = msg.cast::<Ping>() {
                self.seen.push(p.0);
                ctx.schedule_in(self.delay, ctx.self_id(), Pong(p.0));
            }
        }
        fn name(&self) -> String {
            "echo".into()
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl Actor for Recorder {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                if let Ok(p) = msg.cast::<Ping>() {
                    self.order.push(p.0);
                }
            }
        }
        let mut eng = Engine::new(0);
        let rec = eng.add_actor(Box::new(Recorder { order: vec![] }));
        eng.post(Dur::millis(3), rec, Ping(3));
        eng.post(Dur::millis(1), rec, Ping(1));
        eng.post(Dur::millis(2), rec, Ping(2));
        let report = eng.run();
        assert_eq!(report.events, 3);
        assert_eq!(report.stop, StopReason::QueueEmpty);
        assert_eq!(report.end_time, SimTime::ZERO + Dur::millis(3));
        let rec_actor = eng.actor(rec);
        let _ = rec_actor.name();
    }

    #[test]
    fn same_instant_events_fifo() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl Actor for Recorder {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                if let Ok(p) = msg.cast::<Ping>() {
                    self.order.push(p.0);
                }
            }
        }
        let mut eng = Engine::new(0);
        let rec = eng.add_actor(Box::new(Recorder { order: vec![] }));
        for i in 0..10 {
            eng.post(Dur::ZERO, rec, Ping(i));
        }
        eng.run();
        // Extract state via downcast-free trick: re-add? Simplest: trust via
        // a second actor is overkill; use actor_mut + Any through a probe msg.
        // Instead assert dispatch count and rely on recorder test below.
        assert_eq!(eng.events_dispatched(), 10);
    }

    #[test]
    fn zero_delay_chains_advance_seq_not_time() {
        struct Chain {
            hops: u32,
        }
        struct Hop(u32);
        impl Actor for Chain {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                if let Ok(h) = msg.cast::<Hop>() {
                    if h.0 > 0 {
                        self.hops += 1;
                        ctx.schedule_self(Dur::ZERO, Hop(h.0 - 1));
                    }
                }
            }
        }
        let mut eng = Engine::new(0);
        let a = eng.add_actor(Box::new(Chain { hops: 0 }));
        eng.post(Dur::ZERO, a, Hop(100));
        let report = eng.run();
        assert_eq!(report.end_time, SimTime::ZERO, "zero-delay must not advance time");
        assert_eq!(report.events, 101);
    }

    #[test]
    fn event_budget_breaks_livelock() {
        struct Livelock;
        struct Tick;
        impl Actor for Livelock {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.schedule_self(Dur::ZERO, Tick);
            }
        }
        let mut eng = Engine::new(0);
        let a = eng.add_actor(Box::new(Livelock));
        eng.event_budget = 1000;
        eng.post(Dur::ZERO, a, Tick);
        let report = eng.run();
        assert_eq!(report.stop, StopReason::EventBudget);
        assert_eq!(report.events, 1000);
    }

    #[test]
    fn stop_halts_run() {
        struct Stopper;
        struct Go;
        impl Actor for Stopper {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.stop();
            }
        }
        let mut eng = Engine::new(0);
        let a = eng.add_actor(Box::new(Stopper));
        eng.post(Dur::ZERO, a, Go);
        eng.post(Dur::millis(1), a, Go); // never dispatched
        let report = eng.run();
        assert_eq!(report.stop, StopReason::Stopped);
        assert_eq!(report.events, 1);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        struct Sink;
        struct Tick;
        impl Actor for Sink {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
        }
        let mut eng = Engine::new(0);
        let a = eng.add_actor(Box::new(Sink));
        eng.post(Dur::secs(10), a, Tick);
        let report = eng.run_until(SimTime::ZERO + Dur::secs(1));
        assert_eq!(report.stop, StopReason::Horizon);
        assert_eq!(report.events, 0);
        assert_eq!(report.end_time, SimTime::ZERO + Dur::secs(1));
        // The future event is still queued; a longer run dispatches it.
        let report2 = eng.run();
        assert_eq!(report2.events, 1);
    }

    #[test]
    fn reserve_and_install_break_cycles() {
        struct Fwd {
            peer: ActorId,
            got: bool,
        }
        struct Token;
        impl Actor for Fwd {
            fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
                if msg.is::<Token>() && !self.got {
                    self.got = true;
                    ctx.send(self.peer, Token);
                }
            }
        }
        let mut eng = Engine::new(0);
        let a = eng.reserve_actor();
        let b = eng.add_actor(Box::new(Fwd { peer: a, got: false }));
        eng.install(a, Box::new(Fwd { peer: b, got: false }));
        eng.post(Dur::ZERO, a, Token);
        let report = eng.run();
        assert_eq!(report.events, 3, "a -> b -> a(drop)");
    }

    #[test]
    fn msg_cast_roundtrip_preserves_on_error() {
        let m = Msg::new(3, Ping(9));
        assert!(m.is::<Ping>());
        assert!(m.peek::<Ping>().is_some());
        let m = match m.cast::<Pong>() {
            Ok(_) => panic!("wrong cast succeeded"),
            Err(m) => m,
        };
        let p = m.cast::<Ping>().expect("original type still castable");
        assert_eq!(p.0, 9);
    }

    #[test]
    fn echo_round_trip_takes_delay() {
        let mut eng = Engine::new(0);
        let e = eng.add_actor(Box::new(Echo { delay: Dur::micros(250), seen: vec![] }));
        eng.post(Dur::ZERO, e, Ping(1));
        let report = eng.run();
        assert_eq!(report.end_time, SimTime::ZERO + Dur::micros(250));
        assert_eq!(report.events, 2);
    }
}
