//! # sim-core — deterministic discrete-event simulation engine
//!
//! The foundation of the CLUSTER 2002 reproduction: a small, exact,
//! bit-reproducible discrete-event kernel.
//!
//! * [`time`] — integer-nanosecond simulation clock ([`SimTime`], [`Dur`]).
//! * [`engine`] — the event queue and [`Actor`] dispatch loop.
//! * [`resource`] — FIFO reservation resources for CPUs, disks, links.
//! * [`rng`] — per-stream deterministic PRNGs ([`DetRng`], [`Zipf`]).
//! * [`stats`] — allocation-free accumulators (tally, log-histogram,
//!   time-weighted average).
//!
//! Determinism contract: given the same master seed and the same sequence of
//! API calls, every run dispatches the identical event sequence. All
//! same-instant events are FIFO-ordered by a global sequence number, and all
//! randomness flows through [`DetRng`] streams keyed by stable ids.

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Actor, ActorId, Ctx, Engine, Msg, RunReport, StopReason, NO_ACTOR};
pub use resource::{FifoResource, SharedResource};
pub use rng::{DetRng, Zipf};
pub use stats::{Counter, LogHistogram, Tally, TimeWeighted};
pub use time::{Dur, SimTime};
