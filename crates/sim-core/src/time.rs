//! Simulated time.
//!
//! The simulator counts in integer **nanoseconds** so that event ordering is
//! exact and runs are bit-reproducible. [`SimTime`] is an absolute instant on
//! the simulation clock; [`Dur`] is a span between instants. Both are thin
//! `u64` newtypes, cheap to copy and totally ordered.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (floating-point) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    /// One nanosecond — the smallest representable non-zero span, used to
    /// order "immediately after" events.
    pub const EPSILON: Dur = Dur(1);

    #[inline]
    pub fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    #[inline]
    pub fn micros(us: u64) -> Dur {
        Dur(us * NANOS_PER_MICRO)
    }

    #[inline]
    pub fn millis(ms: u64) -> Dur {
        Dur(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub fn secs(s: u64) -> Dur {
        Dur(s * NANOS_PER_SEC)
    }

    /// Build a duration from floating-point seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Dur {
        if !s.is_finite() || s <= 0.0 {
            return Dur::ZERO;
        }
        Dur((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Time to move `bytes` over a link of `bits_per_sec` capacity.
    pub fn transfer(bytes: u64, bits_per_sec: u64) -> Dur {
        debug_assert!(bits_per_sec > 0, "zero-bandwidth link");
        // bytes * 8 * 1e9 / bps, computed in u128 to avoid overflow.
        let nanos = (bytes as u128 * 8 * NANOS_PER_SEC as u128) / bits_per_sec as u128;
        Dur(nanos as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative SimTime difference");
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative Dur difference");
        Dur(self.0 - rhs.0)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

fn fmt_nanos(n: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if n >= NANOS_PER_SEC {
        write!(f, "{:.6}s", n as f64 / NANOS_PER_SEC as f64)
    } else if n >= NANOS_PER_MILLI {
        write!(f, "{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
    } else if n >= NANOS_PER_MICRO {
        write!(f, "{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
    } else {
        write!(f, "{}ns", n)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Dur::micros(1).as_nanos(), 1_000);
        assert_eq!(Dur::millis(1).as_nanos(), 1_000_000);
        assert_eq!(Dur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Dur::nanos(7).as_nanos(), 7);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + Dur::millis(5);
        assert_eq!((t + Dur::micros(1)) - t, Dur::micros(1));
        assert_eq!(t.since(SimTime::ZERO), Dur::millis(5));
        assert_eq!(SimTime::ZERO.since(t), Dur::ZERO, "since saturates");
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1500 bytes over 100 Mbps = 120 microseconds.
        let d = Dur::transfer(1500, 100_000_000);
        assert_eq!(d, Dur::micros(120));
        // 1 byte over 1 Gbps = 8 ns.
        assert_eq!(Dur::transfer(1, 1_000_000_000), Dur::nanos(8));
    }

    #[test]
    fn transfer_time_large_values_no_overflow() {
        // 1 TB over 10 Mbps: would overflow u64 if computed naively in bits*1e9.
        let d = Dur::transfer(1 << 40, 10_000_000);
        assert!(d.as_secs_f64() > 800_000.0);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(1.5), Dur(1_500_000_000));
    }

    #[test]
    fn display_picks_readable_unit() {
        assert_eq!(format!("{}", Dur::nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::secs(12)), "12.000000s");
    }

    #[test]
    fn dur_scalar_ops() {
        assert_eq!(Dur::micros(10) * 4, Dur::micros(40));
        assert_eq!(Dur::micros(10) / 4, Dur::nanos(2_500));
        assert_eq!(Dur::micros(10).saturating_sub(Dur::micros(20)), Dur::ZERO);
        assert_eq!(Dur::micros(20).max(Dur::micros(10)), Dur::micros(20));
    }
}
