//! Sharing-aware eviction — the paper's inter-application insight turned
//! into an eviction preference. The whole point of the kernel-level cache
//! is that one application's fetch serves another application's future
//! read (§2); a block that has demonstrably been referenced by multiple
//! applications is worth more than a private one, so it is evicted last.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};

/// Per-frame referent set (a 64-bit app bitmask) plus a logical access
/// clock. Eviction offers single-application frames first, LRU within the
/// class, then shared frames, again LRU — so the policy degrades to exact
/// LRU when no sharing exists and to "protect the shared hot set" when it
/// does.
pub struct SharingAware {
    table: FrameTable,
    /// Bit `app % 64` per distinct known referent. Unknown origins
    /// contribute no bit at all: an unattributed touch (direct manager
    /// API use, sync-write refreshes) must never make a block look
    /// shared.
    apps: Vec<u64>,
    last: Vec<u64>,
    tick: u64,
    scan: Vec<u32>,
    scan_pos: usize,
}

fn app_bit(app: AppId) -> u64 {
    if app == AppId::UNKNOWN {
        0
    } else {
        1 << (app.0 % 64)
    }
}

impl SharingAware {
    pub fn new(capacity: usize) -> SharingAware {
        SharingAware {
            table: FrameTable::new(capacity),
            apps: vec![0; capacity],
            last: vec![0; capacity],
            tick: 0,
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    /// Number of distinct *known* applications observed on `frame`
    /// (tests; unattributed accesses count zero).
    pub fn referents(&self, frame: u32) -> u32 {
        self.apps[frame as usize].count_ones()
    }

    fn stamp(&mut self, frame: u32) {
        self.tick += 1;
        self.last[frame as usize] = self.tick;
    }
}

impl ReplacementPolicy for SharingAware {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SharingAware
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, app: AppId) {
        self.apps[frame as usize] |= app_bit(app);
        self.stamp(frame);
    }

    fn on_insert(&mut self, frame: u32, _key: u64, app: AppId) {
        self.table.insert(frame, app);
        self.apps[frame as usize] = app_bit(app);
        self.stamp(frame);
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
        self.apps[frame as usize] = 0;
    }

    fn begin_scan(&mut self) {
        self.scan = self.table.resident_frames();
        let (apps, last) = (&self.apps, &self.last);
        // Unshared before shared, oldest before newest within each class.
        self.scan.sort_by_key(|&f| (apps[f as usize].count_ones() > 1, last[f as usize]));
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_frames_outlive_private_ones() {
        let mut s = SharingAware::new(3);
        for f in 0..3 {
            s.on_insert(f, f as u64, AppId(0));
        }
        s.on_access(1, 1, AppId(1)); // frame 1 now shared by apps 0 and 1
        s.on_access(0, 0, AppId(0)); // refresh 0: still private
        assert_eq!(s.referents(1), 2);
        s.begin_scan();
        assert_eq!(s.next_candidate(None), Some(2), "oldest private frame first");
        assert_eq!(s.next_candidate(None), Some(0));
        assert_eq!(s.next_candidate(None), Some(1), "the shared frame goes last");
    }

    #[test]
    fn unknown_accessors_never_fake_sharing() {
        let mut s = SharingAware::new(2);
        s.on_insert(0, 0, AppId::UNKNOWN);
        s.on_access(0, 0, AppId::UNKNOWN);
        s.on_access(0, 0, AppId::UNKNOWN);
        assert_eq!(s.referents(0), 0, "unknown accesses contribute no referent");
        // A privately-owned block refreshed by an unattributed touch (e.g.
        // a sync-write propagation) must stay classified as private.
        s.on_insert(1, 1, AppId(0));
        s.on_access(1, 1, AppId::UNKNOWN);
        assert_eq!(s.referents(1), 1, "unknown touch must not fake sharing on an owned block");
    }

    #[test]
    fn reinsert_resets_referents() {
        let mut s = SharingAware::new(2);
        s.on_insert(0, 1, AppId(0));
        s.on_access(0, 1, AppId(1));
        s.on_remove(0, 1);
        s.on_insert(0, 2, AppId(3));
        assert_eq!(s.referents(0), 1, "new block must not inherit the old referent set");
    }
}
