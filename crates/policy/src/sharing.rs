//! Sharing-aware eviction — the paper's inter-application insight turned
//! into an eviction preference. The whole point of the kernel-level cache
//! is that one application's fetch serves another application's future
//! read (§2); a block that has demonstrably been referenced by multiple
//! applications is worth more than a private one, so it is evicted last.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};

/// Per-frame referent set (a 64-bit app bitmask) plus a logical access
/// clock. Eviction ranks frames by **referent count** ascending (fewer
/// distinct applications ⇒ evicted earlier), LRU within each count class —
/// so the policy degrades to exact LRU when no sharing exists and
/// protection scales with how widely a block is actually shared, not the
/// old binary shared/private split (a 3-app block now outlives a 2-app
/// one).
///
/// Referent evidence arrives on two paths: the deferred `on_access`
/// replay (the event ring) and the table's lock-free
/// [`RefWords`](crate::RefWords)
/// app-touch mask, which the buffer manager stores into on every hit
/// without taking the policy lock. `begin_scan` unions the undrained
/// mask into the live generation so protection is current *at scan
/// time*, not as of the last drain.
///
/// Sharing observed long ago is not sharing now: the referent mask is
/// **aged on every epoch tick** (driven by the buffer manager when epochs
/// are enabled) with a two-generation scheme — the current-epoch mask
/// rolls into an aged generation and a fresh one starts; a referent that
/// does not re-touch the block within two epochs stops protecting it.
pub struct SharingAware {
    table: FrameTable,
    /// Bit `app % 64` per distinct known referent observed in the current
    /// epoch. Unknown origins contribute no bit at all: an unattributed
    /// touch (direct manager API use, sync-write refreshes) must never
    /// make a block look shared.
    apps: Vec<u64>,
    /// Referents from the previous epoch (union'd with `apps` for
    /// ranking; dropped at the next tick unless refreshed).
    aged: Vec<u64>,
    last: Vec<u64>,
    tick: u64,
    scan: Vec<u32>,
    scan_pos: usize,
}

// Same bit layout as the RefWords app-touch mask (bits 0..=62, `app %
// 63`), so the two mask spaces union directly at scan time.
fn app_bit(app: AppId) -> u64 {
    if app == AppId::UNKNOWN {
        0
    } else {
        1 << (app.0 % 63)
    }
}

impl SharingAware {
    pub fn new(capacity: usize) -> SharingAware {
        SharingAware {
            table: FrameTable::new(capacity),
            apps: vec![0; capacity],
            aged: vec![0; capacity],
            last: vec![0; capacity],
            tick: 0,
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    /// Number of distinct *known* applications currently protecting
    /// `frame` — the union of the live and aged generations (unattributed
    /// accesses count zero).
    pub fn referents(&self, frame: u32) -> u32 {
        (self.apps[frame as usize] | self.aged[frame as usize]).count_ones()
    }

    fn stamp(&mut self, frame: u32) {
        self.tick += 1;
        self.last[frame as usize] = self.tick;
    }
}

impl ReplacementPolicy for SharingAware {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SharingAware
    }

    fn consumes_app_mask(&self) -> bool {
        true
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, app: AppId) {
        self.apps[frame as usize] |= app_bit(app);
        self.stamp(frame);
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.apps[frame as usize] = app_bit(app);
        self.aged[frame as usize] = 0;
        self.stamp(frame);
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
        self.apps[frame as usize] = 0;
        self.aged[frame as usize] = 0;
    }

    fn begin_scan(&mut self) {
        self.scan = self.table.resident_frames();
        // Fold in the lock-free fast path's app-touch masks *now* rather
        // than waiting for the deferred event ring to drain: a hit the
        // manager recorded with one atomic `fetch_or` moments ago must
        // already protect the frame in this scan. The fold *consumes*
        // the mask (the ref bit stays in place for clock-style ranking)
        // so each touch enters the generational bookkeeping exactly once
        // — a re-read at the next scan must not resurrect evidence the
        // epoch aging already retired. The `on_access` replay of the
        // same touch is an idempotent OR into the live generation.
        for &f in &self.scan {
            self.apps[f as usize] |= self.table.ref_words().take_app_mask(f);
        }
        let (apps, aged, last) = (&self.apps, &self.aged, &self.last);
        // Fewest referents first, oldest before newest within each class.
        self.scan.sort_by_key(|&f| {
            ((apps[f as usize] | aged[f as usize]).count_ones(), last[f as usize])
        });
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        // Scan order without the scan's side effects: the app-touch masks
        // are *read* (`app_mask`), not consumed — exporting a ranking for
        // migration must not retire undrained sharing evidence.
        let mut order = self.table.resident_frames();
        order.sort_by_key(|&f| {
            let mask =
                self.apps[f as usize] | self.aged[f as usize] | self.table.ref_words().app_mask(f);
            (mask.count_ones(), self.last[f as usize])
        });
        Some(order)
    }

    fn epoch_tick(&mut self, _quotas: &[(AppId, usize)]) -> Vec<crate::QuotaUpdate> {
        // Age the referent masks: the live generation becomes the aged one
        // and a fresh epoch starts. A referent seen two epochs ago is
        // forgotten entirely.
        for f in 0..self.apps.len() {
            self.aged[f] = self.apps[f];
            self.apps[f] = 0;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_frames_outlive_private_ones() {
        let mut s = SharingAware::new(3);
        for f in 0..3 {
            s.on_insert(f, f as u64, AppId(0));
        }
        s.on_access(1, 1, AppId(1)); // frame 1 now shared by apps 0 and 1
        s.on_access(0, 0, AppId(0)); // refresh 0: still private
        assert_eq!(s.referents(1), 2);
        s.begin_scan();
        assert_eq!(s.next_candidate(None), Some(2), "oldest private frame first");
        assert_eq!(s.next_candidate(None), Some(0));
        assert_eq!(s.next_candidate(None), Some(1), "the shared frame goes last");
    }

    #[test]
    fn unknown_accessors_never_fake_sharing() {
        let mut s = SharingAware::new(2);
        s.on_insert(0, 0, AppId::UNKNOWN);
        s.on_access(0, 0, AppId::UNKNOWN);
        s.on_access(0, 0, AppId::UNKNOWN);
        assert_eq!(s.referents(0), 0, "unknown accesses contribute no referent");
        // A privately-owned block refreshed by an unattributed touch (e.g.
        // a sync-write propagation) must stay classified as private.
        s.on_insert(1, 1, AppId(0));
        s.on_access(1, 1, AppId::UNKNOWN);
        assert_eq!(s.referents(1), 1, "unknown touch must not fake sharing on an owned block");
    }

    #[test]
    fn more_referents_outlive_fewer() {
        let mut s = SharingAware::new(3);
        for f in 0..3 {
            s.on_insert(f, f as u64, AppId(0));
        }
        // Frame 1: 3 referents; frame 2: 2 referents; frame 0: private,
        // touched last (most recent) — count dominates recency.
        s.on_access(1, 1, AppId(1));
        s.on_access(1, 1, AppId(2));
        s.on_access(2, 2, AppId(1));
        s.on_access(0, 0, AppId(0));
        s.begin_scan();
        assert_eq!(s.next_candidate(None), Some(0), "private frame first despite recency");
        assert_eq!(s.next_candidate(None), Some(2), "2-referent frame next");
        assert_eq!(s.next_candidate(None), Some(1), "3-referent frame survives longest");
    }

    #[test]
    fn epoch_tick_decays_stale_sharing() {
        use crate::ReplacementPolicy as _;
        let mut s = SharingAware::new(2);
        s.on_insert(0, 0, AppId(0));
        s.on_access(0, 0, AppId(1));
        assert_eq!(s.referents(0), 2);
        // One tick: the observation ages but still protects.
        assert!(s.epoch_tick(&[]).is_empty());
        assert_eq!(s.referents(0), 2, "aged generation still counts");
        // A second tick with no re-reference forgets it entirely.
        s.epoch_tick(&[]);
        assert_eq!(s.referents(0), 0, "sharing observed two epochs ago is gone");
        // Re-referenced blocks keep their protection across ticks.
        s.on_insert(1, 1, AppId(0));
        s.on_access(1, 1, AppId(1));
        s.epoch_tick(&[]);
        s.on_access(1, 1, AppId(1));
        assert_eq!(s.referents(1), 2, "refresh during the epoch survives the tick");
    }

    #[test]
    fn undrained_ref_word_touches_protect_at_scan_time() {
        let mut s = SharingAware::new(3);
        for f in 0..3 {
            s.on_insert(f, f as u64, AppId(0));
        }
        // A second app's hit lands only in the lock-free ref word — the
        // deferred replay has NOT run. The scan must still see it.
        s.table().ref_words().touch(1, AppId(1));
        s.begin_scan();
        assert_eq!(s.next_candidate(None), Some(0), "private frames drain first");
        assert_eq!(s.next_candidate(None), Some(2));
        assert_eq!(s.next_candidate(None), Some(1), "undrained touch protects the shared frame");
        assert_eq!(s.referents(1), 2, "mask folded into the live generation");
        // The eventual replay of the same touch is idempotent.
        s.on_access(1, 1, AppId(1));
        assert_eq!(s.referents(1), 2);
    }

    #[test]
    fn reinsert_resets_referents() {
        let mut s = SharingAware::new(2);
        s.on_insert(0, 1, AppId(0));
        s.on_access(0, 1, AppId(1));
        s.on_remove(0, 1);
        s.on_insert(0, 2, AppId(3));
        assert_eq!(s.referents(0), 1, "new block must not inherit the old referent set");
    }
}
