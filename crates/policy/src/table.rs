//! Shared residency/pin bookkeeping every policy embeds.

use crate::PolicyStats;

/// Dense per-frame residency and pin flags plus the policy's stat
/// counters. Policies layer their own metadata (reference bits, queues,
/// frequencies, app sets) on top; the table is the single source of truth
/// for "may this frame be offered as a candidate at all".
#[derive(Debug, Clone)]
pub struct FrameTable {
    resident: Vec<bool>,
    pinned: Vec<bool>,
    n_resident: usize,
    pub stats: PolicyStats,
}

impl FrameTable {
    pub fn new(capacity: usize) -> FrameTable {
        FrameTable {
            resident: vec![false; capacity],
            pinned: vec![false; capacity],
            n_resident: 0,
            stats: PolicyStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.resident.len()
    }

    pub fn resident_count(&self) -> usize {
        self.n_resident
    }

    pub fn is_resident(&self, frame: u32) -> bool {
        self.resident.get(frame as usize).copied().unwrap_or(false)
    }

    pub fn is_pinned(&self, frame: u32) -> bool {
        self.pinned.get(frame as usize).copied().unwrap_or(false)
    }

    /// A frame the policy may legitimately offer for eviction.
    pub fn evictable(&self, frame: u32) -> bool {
        self.is_resident(frame) && !self.is_pinned(frame)
    }

    /// Mark `frame` resident (idempotent; counts one insert per new
    /// residency). Panics on out-of-pool frames — an out-of-range index is
    /// a manager bug, not a policy decision.
    pub fn insert(&mut self, frame: u32) {
        let f = &mut self.resident[frame as usize];
        if !*f {
            *f = true;
            self.n_resident += 1;
            self.stats.inserts += 1;
        }
        debug_assert!(self.n_resident <= self.capacity());
    }

    /// Mark `frame` vacated; clears any pin (an invalidation may remove a
    /// frame whose flush is still in flight).
    pub fn remove(&mut self, frame: u32) {
        let f = &mut self.resident[frame as usize];
        if *f {
            *f = false;
            self.n_resident -= 1;
            self.stats.removes += 1;
        }
        self.pinned[frame as usize] = false;
    }

    pub fn set_pinned(&mut self, frame: u32, pinned: bool) {
        self.pinned[frame as usize] = pinned;
    }

    /// Frames currently resident, ascending (diagnostics/tests).
    pub fn resident_frames(&self) -> Vec<u32> {
        (0..self.capacity() as u32).filter(|&f| self.resident[f as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_counts() {
        let mut t = FrameTable::new(4);
        t.insert(1);
        t.insert(1); // idempotent
        t.insert(3);
        assert_eq!(t.resident_count(), 2);
        assert_eq!(t.stats.inserts, 2);
        assert!(t.evictable(1) && !t.evictable(0));
        t.set_pinned(1, true);
        assert!(!t.evictable(1));
        t.remove(1);
        assert!(!t.is_resident(1) && !t.is_pinned(1), "remove clears the pin");
        assert_eq!(t.stats.removes, 1);
        t.remove(1); // idempotent
        assert_eq!(t.stats.removes, 1);
        assert_eq!(t.resident_frames(), vec![3]);
    }
}
