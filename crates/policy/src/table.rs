//! Shared residency/pin/ownership bookkeeping every policy embeds.

use crate::{AppId, AppUsage, PolicyStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-frame atomic ref/recency words — the lock-free half of the hit
/// fast path. Each frame owns one `AtomicU64`: bit 63 is the **reference
/// bit** (set by every hit or recency touch, consumed by clock-style
/// scans), bits 0..=62 are the **app-touch mask** (bit `app % 63` per
/// distinct known accessor since the word was last consumed — advisory
/// recency attribution for diagnostics and future mask-consuming
/// policies).
///
/// The words are shared by `Arc`: the buffer manager clones the handle
/// out of its policy's [`FrameTable`] once at construction and then
/// updates recency with a single relaxed `fetch_or` per hit — no policy
/// lock — which is exactly the seed clock's store-only hit cost. Cloning
/// a `FrameTable` (live policy migration) carries the same physical
/// words, so reference bits survive an adaptive policy switch.
#[derive(Debug, Clone)]
pub struct RefWords(Arc<Vec<AtomicU64>>);

impl RefWords {
    /// The reference bit (bit 63); bits 0..=62 form the app-touch mask.
    pub const REF: u64 = 1 << 63;

    pub fn new(capacity: usize) -> RefWords {
        RefWords(Arc::new((0..capacity).map(|_| AtomicU64::new(0)).collect()))
    }

    pub fn capacity(&self) -> usize {
        self.0.len()
    }

    fn bit(app: AppId) -> u64 {
        if app == AppId::UNKNOWN {
            0
        } else {
            1 << (app.0 % 63)
        }
    }

    /// Record a hit / recency touch by `app`: one relaxed `fetch_or`.
    pub fn touch(&self, frame: u32, app: AppId) {
        if let Some(w) = self.0.get(frame as usize) {
            w.fetch_or(Self::REF | Self::bit(app), Ordering::Relaxed);
        }
    }

    /// Consume the word (second chance): returns whether the frame was
    /// referenced since the last consume/clear, zeroing the whole word —
    /// ref bit and app mask — like the seed clock's `swap(false)`.
    pub fn take(&self, frame: u32) -> bool {
        self.0.get(frame as usize).is_some_and(|w| w.swap(0, Ordering::Relaxed) & Self::REF != 0)
    }

    /// Non-consuming read of the reference bit.
    pub fn is_referenced(&self, frame: u32) -> bool {
        self.0.get(frame as usize).is_some_and(|w| w.load(Ordering::Relaxed) & Self::REF != 0)
    }

    /// Non-consuming read of the app-touch mask (bits 0..=62).
    pub fn app_mask(&self, frame: u32) -> u64 {
        self.0.get(frame as usize).map_or(0, |w| w.load(Ordering::Relaxed) & !Self::REF)
    }

    /// Consume the app-touch mask (bits 0..=62), leaving the ref bit in
    /// place: each touch is handed to the caller exactly once, to fold
    /// into its own (generational) bookkeeping, without disturbing
    /// clock-style ref-bit ranking.
    pub fn take_app_mask(&self, frame: u32) -> u64 {
        self.0
            .get(frame as usize)
            .map_or(0, |w| w.fetch_and(Self::REF, Ordering::Relaxed) & !Self::REF)
    }

    /// Reset the word (fresh insert: a block earns its second chance by
    /// being *re*-accessed).
    pub fn clear(&self, frame: u32) {
        if let Some(w) = self.0.get(frame as usize) {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// Dense per-frame residency, pin and **owner** flags plus the policy's
/// stat counters and the per-application usage ledger. Policies layer
/// their own metadata (reference bits, queues, frequencies, app sets) on
/// top; the table is the single source of truth for "may this frame be
/// offered as a candidate at all".
///
/// The owner of a frame is the application that *installed* the resident
/// block (quota charging follows the inserter, not later referents — a
/// block another app merely read stays on its installer's bill). An
/// **owner filter** ([`FrameTable::evictable_for`]) narrows candidate
/// eligibility to one owner, which is how the buffer manager draws
/// eviction candidates from a single partition without any policy having
/// to know about quotas. The filter is a *parameter of the scan*, passed
/// by the caller on every `next_candidate` call — deliberately not stored
/// here, so concurrent scans can never clobber each other's filter.
#[derive(Debug, Clone)]
pub struct FrameTable {
    resident: Vec<bool>,
    pinned: Vec<bool>,
    owner: Vec<AppId>,
    /// Fingerprint of the block resident in each frame (0 for vacant
    /// frames). What lets ghost simulators and live-migration replay
    /// reconstruct a policy's contents from the table alone.
    key: Vec<u64>,
    n_resident: usize,
    per_app: BTreeMap<u32, AppUsage>,
    /// The lock-free recency words (shared with the buffer manager; see
    /// [`RefWords`]). Cloning the table shares the same physical words.
    ref_words: RefWords,
    pub stats: PolicyStats,
}

impl FrameTable {
    pub fn new(capacity: usize) -> FrameTable {
        FrameTable {
            resident: vec![false; capacity],
            pinned: vec![false; capacity],
            owner: vec![AppId::UNKNOWN; capacity],
            key: vec![0; capacity],
            n_resident: 0,
            per_app: BTreeMap::new(),
            ref_words: RefWords::new(capacity),
            stats: PolicyStats::default(),
        }
    }

    /// The table's atomic ref/recency words (shared handle).
    pub fn ref_words(&self) -> &RefWords {
        &self.ref_words
    }

    pub fn capacity(&self) -> usize {
        self.resident.len()
    }

    pub fn resident_count(&self) -> usize {
        self.n_resident
    }

    pub fn is_resident(&self, frame: u32) -> bool {
        self.resident.get(frame as usize).copied().unwrap_or(false)
    }

    pub fn is_pinned(&self, frame: u32) -> bool {
        self.pinned.get(frame as usize).copied().unwrap_or(false)
    }

    /// Application that installed the block currently in `frame`
    /// ([`AppId::UNKNOWN`] for vacant frames and unattributed inserts).
    pub fn owner_of(&self, frame: u32) -> AppId {
        self.owner.get(frame as usize).copied().unwrap_or(AppId::UNKNOWN)
    }

    /// A frame the policy may legitimately offer for eviction: resident
    /// and unpinned.
    pub fn evictable(&self, frame: u32) -> bool {
        self.is_resident(frame) && !self.is_pinned(frame)
    }

    /// [`FrameTable::evictable`] under an owner filter: with
    /// `Some(app)`, only frames installed by `app` qualify (the
    /// partition-local candidate check).
    pub fn evictable_for(&self, frame: u32, filter: Option<AppId>) -> bool {
        self.evictable(frame) && filter.is_none_or(|o| self.owner_of(frame) == o)
    }

    /// Mark `frame` resident, holding block `key`, owned by `app`
    /// (idempotent; counts one insert per new residency and keeps the first
    /// owner on re-inserts). Panics on out-of-pool frames — an out-of-range
    /// index is a manager bug, not a policy decision.
    pub fn insert(&mut self, frame: u32, key: u64, app: AppId) {
        let f = &mut self.resident[frame as usize];
        if !*f {
            *f = true;
            self.n_resident += 1;
            self.stats.inserts += 1;
            self.owner[frame as usize] = app;
            self.key[frame as usize] = key;
            if app != AppId::UNKNOWN {
                self.per_app.entry(app.0).or_default().resident += 1;
            }
        }
        debug_assert!(self.n_resident <= self.capacity());
    }

    /// Fingerprint of the block resident in `frame` (0 for vacant frames).
    pub fn key_of(&self, frame: u32) -> u64 {
        self.key.get(frame as usize).copied().unwrap_or(0)
    }

    /// Mark `frame` vacated; clears any pin (an invalidation may remove a
    /// frame whose flush is still in flight) and the ownership record.
    pub fn remove(&mut self, frame: u32) {
        let f = &mut self.resident[frame as usize];
        if *f {
            *f = false;
            self.n_resident -= 1;
            self.stats.removes += 1;
            let owner = self.owner[frame as usize];
            if owner != AppId::UNKNOWN {
                if let Some(u) = self.per_app.get_mut(&owner.0) {
                    u.resident = u.resident.saturating_sub(1);
                }
            }
        }
        self.owner[frame as usize] = AppId::UNKNOWN;
        self.key[frame as usize] = 0;
        self.pinned[frame as usize] = false;
    }

    pub fn set_pinned(&mut self, frame: u32, pinned: bool) {
        self.pinned[frame as usize] = pinned;
    }

    /// Resident frames currently owned by `app`.
    pub fn resident_of(&self, app: AppId) -> usize {
        if app == AppId::UNKNOWN {
            return 0;
        }
        self.per_app.get(&app.0).map_or(0, |u| u.resident as usize)
    }

    /// Attribute one cache hit to `app` (unattributed accesses are not
    /// ledgered).
    pub fn note_app_hit(&mut self, app: AppId) {
        if app != AppId::UNKNOWN {
            self.per_app.entry(app.0).or_default().hits += 1;
        }
    }

    /// Attribute one cache miss to `app`.
    pub fn note_app_miss(&mut self, app: AppId) {
        if app != AppId::UNKNOWN {
            self.per_app.entry(app.0).or_default().misses += 1;
        }
    }

    /// Attribute the eviction of one of `app`'s frames.
    pub fn note_app_eviction(&mut self, app: AppId) {
        if app != AppId::UNKNOWN {
            self.per_app.entry(app.0).or_default().evictions += 1;
        }
    }

    /// Per-application usage ledger, ascending by application id.
    pub fn app_usage(&self) -> Vec<(AppId, AppUsage)> {
        self.per_app.iter().map(|(&id, &u)| (AppId(id), u)).collect()
    }

    /// Frames currently resident, ascending (diagnostics/tests).
    pub fn resident_frames(&self) -> Vec<u32> {
        (0..self.capacity() as u32).filter(|&f| self.resident[f as usize]).collect()
    }

    /// `(frame, key, owner)` for every resident frame, ascending by frame —
    /// the export half of live policy migration: replaying these through a
    /// fresh policy's `on_insert` rebuilds its ranking metadata with the
    /// same residency.
    pub fn resident_entries(&self) -> Vec<(u32, u64, AppId)> {
        (0..self.capacity() as u32)
            .filter(|&f| self.resident[f as usize])
            .map(|f| (f, self.key[f as usize], self.owner[f as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_counts() {
        let mut t = FrameTable::new(4);
        t.insert(1, 101, AppId(0));
        t.insert(1, 999, AppId(1)); // idempotent; owner and key stay with the installer
        t.insert(3, 103, AppId(1));
        assert_eq!(t.resident_count(), 2);
        assert_eq!(t.stats.inserts, 2);
        assert_eq!(t.owner_of(1), AppId(0));
        assert!(t.evictable(1) && !t.evictable(0));
        t.set_pinned(1, true);
        assert!(!t.evictable(1));
        t.remove(1);
        assert!(!t.is_resident(1) && !t.is_pinned(1), "remove clears the pin");
        assert_eq!(t.owner_of(1), AppId::UNKNOWN, "remove clears the owner");
        assert_eq!(t.stats.removes, 1);
        t.remove(1); // idempotent
        assert_eq!(t.stats.removes, 1);
        assert_eq!(t.resident_frames(), vec![3]);
    }

    #[test]
    fn ref_words_set_consume_and_mask() {
        let t = FrameTable::new(4);
        let w = t.ref_words();
        assert!(!w.is_referenced(1));
        w.touch(1, AppId(2));
        w.touch(1, AppId(5));
        w.touch(1, AppId::UNKNOWN); // unknown sets REF but no app bit
        assert!(w.is_referenced(1));
        assert_eq!(w.app_mask(1), (1 << 2) | (1 << 5));
        assert!(w.take(1), "consume returns the referenced flag");
        assert!(!w.is_referenced(1), "consume zeroes the word");
        assert_eq!(w.app_mask(1), 0);
        assert!(!w.take(1), "second consume sees nothing");
        w.touch(2, AppId(0));
        w.clear(2);
        assert!(!w.is_referenced(2));
        // Out-of-pool frames are ignored, not a panic.
        w.touch(99, AppId(0));
        assert!(!w.take(99));
        // A cloned table shares the same physical words.
        let t2 = t.clone();
        t2.ref_words().touch(3, AppId(1));
        assert!(t.ref_words().is_referenced(3));
    }

    #[test]
    fn owner_filter_narrows_evictability() {
        let mut t = FrameTable::new(4);
        t.insert(0, 100, AppId(0));
        t.insert(1, 101, AppId(1));
        t.insert(2, 102, AppId::UNKNOWN);
        assert!(t.evictable(0) && t.evictable(1) && t.evictable(2));
        let f = Some(AppId(1));
        assert!(!t.evictable_for(0, f), "other app's frame filtered out");
        assert!(t.evictable_for(1, f), "owned frame stays evictable");
        assert!(!t.evictable_for(2, f), "unattributed frames belong to no partition");
        assert!(t.evictable_for(0, None) && t.evictable_for(2, None));
    }

    #[test]
    fn per_app_ledger_tracks_residency_and_events() {
        let mut t = FrameTable::new(4);
        t.insert(0, 100, AppId(7));
        t.insert(1, 101, AppId(7));
        t.insert(2, 102, AppId(3));
        assert_eq!(t.resident_of(AppId(7)), 2);
        assert_eq!(t.resident_of(AppId(3)), 1);
        assert_eq!(t.resident_of(AppId::UNKNOWN), 0);
        t.note_app_hit(AppId(7));
        t.note_app_miss(AppId(3));
        t.note_app_eviction(AppId(7));
        t.remove(0);
        assert_eq!(t.resident_of(AppId(7)), 1);
        let usage = t.app_usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].0, AppId(3), "ledger is ordered by app id");
        assert_eq!((usage[1].1.hits, usage[1].1.evictions, usage[1].1.resident), (1, 1, 1));
        // Unattributed events never enter the ledger.
        t.note_app_hit(AppId::UNKNOWN);
        assert_eq!(t.app_usage().len(), 2);
    }
}
