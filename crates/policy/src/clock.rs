//! Clock / second-chance — the paper's approximate LRU, extracted from the
//! seed buffer manager without behavioral change.

use crate::table::FrameTable;
use crate::{AccessEvent, AccessKind, AppId, PolicyKind, ReplacementPolicy};

/// Reference-bit clock. The reference bits live in the table's atomic
/// [`RefWords`](crate::RefWords): hits set the frame's word (one relaxed
/// `fetch_or` — on the buffer manager's fast path this happens **without
/// the policy lock**, which is the seed's store-only hit cost); inserts
/// clear it (a block earns its second chance by being *re*-read). An
/// eviction scan sweeps the hand over at most `2 * capacity` frames: the
/// first encounter of a referenced frame consumes its bit, the first
/// unreferenced evictable frame becomes the candidate. The hand persists
/// across scans, exactly like the seed manager's `clock_hand`.
pub struct Clock {
    table: FrameTable,
    hand: usize,
    /// Remaining steps in the current scan (armed by `begin_scan`).
    budget: usize,
}

impl Clock {
    pub fn new(capacity: usize) -> Clock {
        Clock { table: FrameTable::new(capacity), hand: 0, budget: 0 }
    }
}

impl ReplacementPolicy for Clock {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, app: AppId) {
        self.table.ref_words().touch(frame, app);
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.table.ref_words().clear(frame);
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
    }

    fn ranks_from_ref_words(&self) -> bool {
        true
    }

    /// Clock ranks directly from the atomic ref words, which the event
    /// producer already stored at access time; replaying `on_access` here
    /// would resurrect a bit an eviction scan may have legitimately
    /// consumed since. Only the deferred ledger updates remain.
    fn drain(&mut self, events: &[AccessEvent]) {
        for ev in events {
            match ev.kind {
                AccessKind::Hit | AccessKind::ProbeHit => {
                    self.table.stats.hits += 1;
                    self.table.note_app_hit(ev.app);
                }
                AccessKind::Miss => {
                    self.table.stats.misses += 1;
                    self.table.note_app_miss(ev.app);
                }
                AccessKind::Touch => {}
            }
        }
    }

    fn begin_scan(&mut self) {
        self.budget = 2 * self.table.capacity();
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.budget > 0 {
            self.budget -= 1;
            let idx = self.hand as u32;
            self.hand = (self.hand + 1) % self.table.capacity();
            // A partition-local scan must not strip other tenants'
            // second-chance protection: skip foreign frames before
            // touching their reference bit.
            if let Some(owner) = filter {
                if self.table.owner_of(idx) != owner {
                    continue;
                }
            }
            // Consume the reference bit first (second chance), matching the
            // seed's `swap(false)`-then-skip order.
            if self.table.ref_words().take(idx) {
                continue;
            }
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    /// Hand order approximates recency: the next frames the hand would
    /// visit are offered first, with currently-referenced frames — the
    /// ones a sweep would grant a second chance — ranked after every
    /// unreferenced frame. Reads the atomic words without consuming them,
    /// so exporting the ranking never strips protection.
    fn recency_ranking(&self) -> Option<Vec<u32>> {
        let cap = self.table.capacity();
        let sweep = |referenced: bool| {
            (0..cap).map(move |i| ((self.hand + i) % cap) as u32).filter(move |&f| {
                self.table.is_resident(f) && self.table.ref_words().is_referenced(f) == referenced
            })
        };
        Some(sweep(false).chain(sweep(true)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreferenced_frame_is_victim() {
        let mut c = Clock::new(4);
        for f in 0..4 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        for f in [0u32, 1, 3] {
            c.on_access(f, f as u64, AppId::UNKNOWN);
        }
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(2), "only frame 2 kept no reference bit");
    }

    #[test]
    fn pinned_frames_are_skipped() {
        let mut c = Clock::new(3);
        for f in 0..3 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        c.set_pinned(0, true);
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(1));
    }

    #[test]
    fn scan_terminates_on_empty_pool() {
        let mut c = Clock::new(8);
        c.begin_scan();
        assert_eq!(c.next_candidate(None), None);
    }

    #[test]
    fn lock_free_ref_word_grants_second_chance() {
        // The fast path: a producer touches the atomic word directly (no
        // on_access call) and the scan honors it exactly like a hit.
        let mut c = Clock::new(2);
        c.on_insert(0, 10, AppId::UNKNOWN);
        c.on_insert(1, 11, AppId::UNKNOWN);
        c.table().ref_words().touch(0, AppId(3));
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(1), "frame 0's atomic bit protects it");
    }

    #[test]
    fn drain_updates_ledgers_without_touching_recency() {
        let mut c = Clock::new(2);
        c.on_insert(0, 10, AppId(1));
        // The producer stored the recency word at access time...
        c.table().ref_words().touch(0, AppId(1));
        // ...and an eviction scan consumed it before the drain arrived.
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(0));
        c.drain(&[AccessEvent::hit(0, 10, AppId(1)), AccessEvent::miss(AppId(1))]);
        assert_eq!((c.stats().hits, c.stats().misses), (1, 1));
        assert!(
            !c.table().ref_words().is_referenced(0),
            "drain must not resurrect a consumed reference bit"
        );
    }

    #[test]
    fn filtered_scan_preserves_foreign_second_chances() {
        let mut c = Clock::new(4);
        // Frames 0,1 belong to app 0; 2,3 to app 1; everyone referenced.
        for f in 0..4u32 {
            c.on_insert(f, f as u64, AppId(f / 2));
            c.on_access(f, f as u64, AppId(f / 2));
        }
        // App 1's partition-local scan consumes only its *own* reference
        // bits (2, 3) on the way to its victim.
        c.begin_scan();
        assert_eq!(c.next_candidate(Some(AppId(1))), Some(2));
        // App 0's frames kept their bits: the next unfiltered scan still
        // grants them a second chance, so app 1's spent frames (3, then 2)
        // are offered first.
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(3));
        assert_eq!(c.next_candidate(None), Some(2));
    }
}
