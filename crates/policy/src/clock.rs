//! Clock / second-chance — the paper's approximate LRU, extracted from the
//! seed buffer manager without behavioral change.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, PolicyStats, ReplacementPolicy};

/// Reference-bit clock. Hits set the frame's reference bit; inserts clear
/// it (a block earns its second chance by being *re*-read). An eviction
/// scan sweeps the hand over at most `2 * capacity` frames: the first
/// encounter of a referenced frame consumes its bit, the first
/// unreferenced evictable frame becomes the candidate. The hand persists
/// across scans, exactly like the seed manager's `clock_hand`.
pub struct Clock {
    table: FrameTable,
    refbit: Vec<bool>,
    hand: usize,
    /// Remaining steps in the current scan (armed by `begin_scan`).
    budget: usize,
}

impl Clock {
    pub fn new(capacity: usize) -> Clock {
        Clock {
            table: FrameTable::new(capacity),
            refbit: vec![false; capacity],
            hand: 0,
            budget: 0,
        }
    }
}

impl ReplacementPolicy for Clock {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        self.refbit[frame as usize] = true;
    }

    fn on_insert(&mut self, frame: u32, _key: u64, _app: AppId) {
        self.table.insert(frame);
        self.refbit[frame as usize] = false;
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
    }

    fn set_pinned(&mut self, frame: u32, pinned: bool) {
        self.table.set_pinned(frame, pinned);
    }

    fn begin_scan(&mut self) {
        self.budget = 2 * self.table.capacity();
    }

    fn next_candidate(&mut self) -> Option<u32> {
        while self.budget > 0 {
            self.budget -= 1;
            let idx = self.hand as u32;
            self.hand = (self.hand + 1) % self.table.capacity();
            // Consume the reference bit first (second chance), matching the
            // seed's `swap(false)`-then-skip order.
            if std::mem::take(&mut self.refbit[idx as usize]) {
                continue;
            }
            if self.table.evictable(idx) {
                return Some(idx);
            }
        }
        None
    }

    fn stats(&self) -> &PolicyStats {
        &self.table.stats
    }

    fn stats_mut(&mut self) -> &mut PolicyStats {
        &mut self.table.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreferenced_frame_is_victim() {
        let mut c = Clock::new(4);
        for f in 0..4 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        for f in [0u32, 1, 3] {
            c.on_access(f, f as u64, AppId::UNKNOWN);
        }
        c.begin_scan();
        assert_eq!(c.next_candidate(), Some(2), "only frame 2 kept no reference bit");
    }

    #[test]
    fn pinned_frames_are_skipped() {
        let mut c = Clock::new(3);
        for f in 0..3 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        c.set_pinned(0, true);
        c.begin_scan();
        assert_eq!(c.next_candidate(), Some(1));
    }

    #[test]
    fn scan_terminates_on_empty_pool() {
        let mut c = Clock::new(8);
        c.begin_scan();
        assert_eq!(c.next_candidate(), None);
    }
}
