//! Clock / second-chance — the paper's approximate LRU, extracted from the
//! seed buffer manager without behavioral change.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};

/// Reference-bit clock. Hits set the frame's reference bit; inserts clear
/// it (a block earns its second chance by being *re*-read). An eviction
/// scan sweeps the hand over at most `2 * capacity` frames: the first
/// encounter of a referenced frame consumes its bit, the first
/// unreferenced evictable frame becomes the candidate. The hand persists
/// across scans, exactly like the seed manager's `clock_hand`.
pub struct Clock {
    table: FrameTable,
    refbit: Vec<bool>,
    hand: usize,
    /// Remaining steps in the current scan (armed by `begin_scan`).
    budget: usize,
}

impl Clock {
    pub fn new(capacity: usize) -> Clock {
        Clock {
            table: FrameTable::new(capacity),
            refbit: vec![false; capacity],
            hand: 0,
            budget: 0,
        }
    }
}

impl ReplacementPolicy for Clock {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        self.refbit[frame as usize] = true;
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.refbit[frame as usize] = false;
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
    }

    fn begin_scan(&mut self) {
        self.budget = 2 * self.table.capacity();
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.budget > 0 {
            self.budget -= 1;
            let idx = self.hand as u32;
            self.hand = (self.hand + 1) % self.table.capacity();
            // A partition-local scan must not strip other tenants'
            // second-chance protection: skip foreign frames before
            // touching their reference bit.
            if let Some(owner) = filter {
                if self.table.owner_of(idx) != owner {
                    continue;
                }
            }
            // Consume the reference bit first (second chance), matching the
            // seed's `swap(false)`-then-skip order.
            if std::mem::take(&mut self.refbit[idx as usize]) {
                continue;
            }
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreferenced_frame_is_victim() {
        let mut c = Clock::new(4);
        for f in 0..4 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        for f in [0u32, 1, 3] {
            c.on_access(f, f as u64, AppId::UNKNOWN);
        }
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(2), "only frame 2 kept no reference bit");
    }

    #[test]
    fn pinned_frames_are_skipped() {
        let mut c = Clock::new(3);
        for f in 0..3 {
            c.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        c.set_pinned(0, true);
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(1));
    }

    #[test]
    fn scan_terminates_on_empty_pool() {
        let mut c = Clock::new(8);
        c.begin_scan();
        assert_eq!(c.next_candidate(None), None);
    }

    #[test]
    fn filtered_scan_preserves_foreign_second_chances() {
        let mut c = Clock::new(4);
        // Frames 0,1 belong to app 0; 2,3 to app 1; everyone referenced.
        for f in 0..4u32 {
            c.on_insert(f, f as u64, AppId(f / 2));
            c.on_access(f, f as u64, AppId(f / 2));
        }
        // App 1's partition-local scan consumes only its *own* reference
        // bits (2, 3) on the way to its victim.
        c.begin_scan();
        assert_eq!(c.next_candidate(Some(AppId(1))), Some(2));
        // App 0's frames kept their bits: the next unfiltered scan still
        // grants them a second chance, so app 1's spent frames (3, then 2)
        // are offered first.
        c.begin_scan();
        assert_eq!(c.next_candidate(None), Some(3));
        assert_eq!(c.next_candidate(None), Some(2));
    }
}
