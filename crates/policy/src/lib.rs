//! # kcache-policy — pluggable cache-replacement policies
//!
//! The buffer manager's eviction decision, promoted from two hardcoded
//! booleans into a real subsystem. A [`ReplacementPolicy`] tracks frame
//! residency/recency metadata and, when the manager needs room, produces
//! eviction candidates in preference order. The manager keeps authority
//! over *whether* a candidate may actually be evicted (dirty state,
//! in-flight flushes, clean-first passes are its business); the policy only
//! ranks.
//!
//! Policies operate on **frame indices** (`u32`, dense `0..capacity`) and
//! opaque **key fingerprints** (`u64`, the block key's hash) so the crate
//! stays independent of the buffer manager's block types. The accessing
//! application is identified by an [`AppId`] — this is what lets the
//! [`SharingAware`] policy implement the paper's inter-application insight
//! as an eviction preference: blocks referenced by more than one
//! application are protected over single-owner blocks.
//!
//! Implementations:
//!
//! * [`Clock`] — second-chance / approximate LRU (the paper's default,
//!   extracted verbatim from the seed manager),
//! * [`ExactLru`] — exact LRU list updated on every access (the ablation
//!   the paper argues against),
//! * [`Lfu`] — least-frequently-used with LRU tie-break,
//! * [`TwoQ`] — 2Q (A1in FIFO + A1out ghost + Am LRU),
//! * [`Arc`] — adaptive replacement cache (T1/T2 with B1/B2 ghosts),
//! * [`SharingAware`] — evict single-application blocks before blocks
//!   shared across applications, LRU within each class.
//!
//! Every policy embeds a [`FrameTable`] — the shared residency / pin /
//! **ownership** bookkeeping. Ownership (which application installed each
//! frame) powers the **owner-filtered scan protocol**: the manager passes
//! an owner filter to every
//! [`next_candidate`](ReplacementPolicy::next_candidate) call, and the
//! table rejects every candidate not owned by the filtered application.
//! This is what makes per-application cache partitioning work *inside*
//! any policy: the policy keeps ranking exactly as before, the filter
//! narrows which ranked frames may leave the cache.
//!
//! Concurrency contract: policy state is a **leaf lock** in the manager's
//! lock order (bucket → frame → policy). The trait is `Send` (not `Sync`);
//! the manager wraps the boxed policy in a `Mutex` and never holds that
//! lock while acquiring a bucket or frame lock.
//!
//! The **hit fast path does not take that lock at all**: hits and recency
//! touches store into the table's per-frame atomic [`RefWords`] (ref bit +
//! app-touch mask) and enqueue an [`AccessEvent`] into the manager's
//! bounded side-buffer. The policy sees the deferred events in batches via
//! [`ReplacementPolicy::drain`] — applied before anything that ranks or
//! reports (eviction scans, inserts, epoch ticks, stats reads), so under a
//! single thread the drained path is observation-equivalent to calling the
//! eager hooks at access time (pinned by differential tests). [`Clock`]
//! never needs the replayed `on_access` at all: it ranks directly from the
//! atomic ref bits, recovering the seed's store-only per-hit cost.

pub mod arc;
pub mod clock;
pub mod lfu;
pub mod lru;
pub mod sharing;
pub mod table;
pub mod twoq;

pub use arc::Arc;
pub use clock::Clock;
pub use lfu::Lfu;
pub use lru::ExactLru;
pub use sharing::SharingAware;
pub use table::{FrameTable, RefWords};
pub use twoq::TwoQ;

/// Identity of the application instance performing an access.
///
/// The cache module learns it at client-registration time and threads it
/// through every hit/insert so sharing-aware policies can count distinct
/// referents per frame. Accesses whose origin is unknown (direct manager
/// API use, tests) carry [`AppId::UNKNOWN`] and never count as sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

impl AppId {
    pub const UNKNOWN: AppId = AppId(u32::MAX);
}

/// Per-application slice of the policy ledger: how many frames the
/// application currently owns and the hit/miss/eviction traffic attributed
/// to it. Maintained by the [`FrameTable`]; this is what per-app cache
/// partitioning reports (occupancy, per-app hit ratio) and what quota
/// enforcement audits against.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppUsage {
    /// Frames currently owned (installed) by this application.
    pub resident: u64,
    /// Cache hits attributed to this application.
    pub hits: u64,
    /// Cache misses attributed to this application.
    pub misses: u64,
    /// Evictions of frames this application owned.
    pub evictions: u64,
}

impl AppUsage {
    /// Hits over total attributed accesses (`None` before any traffic).
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Per-policy event counters (the subsystem's own ledger, independent of
/// the buffer manager's atomic counters). Hits/misses/evictions are fed by
/// the manager; inserts/removes are maintained by the policy's
/// [`FrameTable`]; `scans` counts eviction scans started.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PolicyStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub removes: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub scans: u64,
}

impl PolicyStats {
    /// Field-wise accumulation — kept next to the struct so adding a
    /// counter cannot silently drop it from aggregated ledgers.
    pub fn merge(&mut self, other: &PolicyStats) {
        let PolicyStats { hits, misses, inserts, removes, evictions_clean, evictions_dirty, scans } =
            *other;
        self.hits += hits;
        self.misses += misses;
        self.inserts += inserts;
        self.removes += removes;
        self.evictions_clean += evictions_clean;
        self.evictions_dirty += evictions_dirty;
        self.scans += scans;
    }
}

/// What kind of access a deferred [`AccessEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A data-serving hit: hit ledgers + recency refresh.
    Hit,
    /// A lookup-only hit (`probe`): hit ledgers, **no** recency refresh —
    /// planning a request split is not a use of the block.
    ProbeHit,
    /// A miss: miss ledgers only (the eventual install arrives as an
    /// eager `on_insert`).
    Miss,
    /// A recency-only touch (sync-write refresh, secondary-waiter
    /// attribution, merge into a resident block): recency refresh, no
    /// hit/miss ledger.
    Touch,
}

/// One deferred access, produced lock-free on the buffer manager's hit
/// fast path and applied to the policy in batches via
/// [`ReplacementPolicy::drain`]. `frame`/`key` are meaningless for
/// [`AccessKind::ProbeHit`]/[`AccessKind::Miss`] (no frame is involved).
///
/// Producer contract: for `Hit` and `Touch` events the producer has
/// already updated the table's [`RefWords`] at access time — that *is*
/// the lock-free recency store. `drain` applies everything that was
/// deferred: the [`PolicyStats`] hit/miss counters, the per-app
/// [`AppUsage`] ledger, and (for policies that do not rank from the
/// atomic words) the `on_access` recency replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    pub kind: AccessKind,
    pub frame: u32,
    pub key: u64,
    pub app: AppId,
}

impl AccessEvent {
    pub fn hit(frame: u32, key: u64, app: AppId) -> AccessEvent {
        AccessEvent { kind: AccessKind::Hit, frame, key, app }
    }

    pub fn probe_hit(app: AppId) -> AccessEvent {
        AccessEvent { kind: AccessKind::ProbeHit, frame: u32::MAX, key: 0, app }
    }

    pub fn miss(app: AppId) -> AccessEvent {
        AccessEvent { kind: AccessKind::Miss, frame: u32::MAX, key: 0, app }
    }

    pub fn touch(frame: u32, key: u64, app: AppId) -> AccessEvent {
        AccessEvent { kind: AccessKind::Touch, frame, key, app }
    }
}

/// A quota adjustment recommended by a meta-policy's tuner: set `app`'s
/// frame quota to `quota`. The buffer manager — the only component with
/// authority over the charge ledger — validates and applies these at the
/// epoch boundary that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaUpdate {
    pub app: AppId,
    pub quota: usize,
}

/// One live policy switch performed by a meta-policy at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRecord {
    /// Epoch index (1-based; the tick that decided the switch).
    pub epoch: u64,
    pub from: PolicyKind,
    pub to: PolicyKind,
    /// The outgoing policy's ghost hit rate over the deciding epoch.
    pub from_rate: f64,
    /// The incoming policy's ghost hit rate over the deciding epoch.
    pub to_rate: f64,
}

/// One quota transfer performed by a meta-policy's marginal-utility tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaMoveRecord {
    pub epoch: u64,
    /// The app whose quota shrank (lowest marginal utility).
    pub from: AppId,
    /// The app whose quota grew (highest marginal utility).
    pub to: AppId,
    pub frames: usize,
    /// The loser's epoch refault count — the marginal-utility evidence
    /// that it would lose the least by shrinking.
    pub from_refaults: u64,
    /// The winner's epoch refault count — the evidence that it would
    /// gain the most by growing. Always `> from_refaults` (the tuner
    /// only moves quota on a strict utility gap).
    pub to_refaults: u64,
}

/// Lifetime hit/miss ledger of one candidate's ghost cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostRate {
    pub kind: PolicyKind,
    pub hits: u64,
    pub misses: u64,
}

impl GhostRate {
    /// Hits over total simulated accesses (0.0 before any traffic).
    pub fn rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Observability ledger of an adaptive meta-policy: epoch/switch counts,
/// the per-epoch switch log, lifetime ghost hit rates per candidate, and
/// the quota-tuner move log. Defined here (next to [`PolicyStats`]) so the
/// `ReplacementPolicy` trait can expose it without depending on any
/// particular meta-policy implementation.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct AdaptiveStats {
    /// Epoch ticks observed.
    pub epochs: u64,
    /// Live policy switches performed.
    pub switches: u64,
    pub switch_log: Vec<SwitchRecord>,
    /// Lifetime ghost ledgers, one per candidate (candidate order).
    pub ghost_rates: Vec<GhostRate>,
    /// Quota transfers performed by the tuner.
    pub quota_moves: u64,
    pub quota_log: Vec<QuotaMoveRecord>,
}

impl AdaptiveStats {
    /// Field-wise accumulation across cache modules (ghost ledgers merge
    /// by kind so per-node candidate lists may differ).
    pub fn merge(&mut self, other: &AdaptiveStats) {
        self.epochs += other.epochs;
        self.switches += other.switches;
        self.switch_log.extend(other.switch_log.iter().copied());
        for g in &other.ghost_rates {
            match self.ghost_rates.iter_mut().find(|m| m.kind == g.kind) {
                Some(m) => {
                    m.hits += g.hits;
                    m.misses += g.misses;
                }
                None => self.ghost_rates.push(*g),
            }
        }
        self.quota_moves += other.quota_moves;
        self.quota_log.extend(other.quota_log.iter().copied());
    }
}

/// A replacement policy: residency/recency bookkeeping plus ranked
/// eviction candidates.
///
/// Invariants every implementation must uphold (property-tested in
/// `tests/invariants.rs`):
///
/// * [`next_candidate`](ReplacementPolicy::next_candidate) only returns
///   frames that are resident, unpinned, `< capacity`, and — when an
///   owner filter is passed — owned by the filtered application;
/// * the set of resident frames never exceeds `capacity`;
/// * a scan terminates (`next_candidate` eventually returns `None`),
///   filtered or not.
///
/// The owner filter is a **per-call parameter**, not policy state: the
/// caller passes it on every `next_candidate`, so two interleaved scans
/// (possible under the manager's drop-the-lock-between-candidates
/// discipline) can disturb each other's *ordering* — harmless, a raced
/// candidate is simply rejected and asked again — but never each other's
/// partition boundary.
///
/// The residency / pin / ownership state lives in the embedded
/// [`FrameTable`]; the provided methods (pinning, the per-application
/// ledger, stats access) are table-backed so individual policies only
/// implement ranking.
pub trait ReplacementPolicy: Send {
    /// Which [`PolicyKind`] built this policy.
    fn kind(&self) -> PolicyKind;

    /// The shared residency/pin/ownership bookkeeping this policy embeds.
    fn table(&self) -> &FrameTable;
    fn table_mut(&mut self) -> &mut FrameTable;

    /// A resident frame was hit by `app`; `key` is the block's fingerprint.
    ///
    /// Callers that defer hit bookkeeping (the buffer manager's lock-free
    /// fast path) do not call this directly — they enqueue an
    /// [`AccessEvent`] and the default [`drain`](Self::drain) replays it
    /// here. Either way, an implementation must tolerate `frame` having
    /// been vacated or re-assigned since the access (the manager's
    /// drop-the-lock-between-steps discipline always allowed that race):
    /// stale recency on a non-resident frame is reset by the next
    /// `on_insert`.
    fn on_access(&mut self, frame: u32, key: u64, app: AppId);

    /// Does this policy rank eviction candidates directly from the
    /// table's atomic [`RefWords`] (clock), never needing the deferred
    /// `on_access` replay? Producers use this to collapse *unattributed*
    /// hit/miss/touch events — whose only other deferred effect is a
    /// counter bump, since [`AppId::UNKNOWN`] never enters the per-app
    /// ledger — into plain atomic counters instead of ring traffic.
    /// Meta-policies that feed ghost simulators from the event stream
    /// must leave this `false` even when their live candidate is clock.
    fn ranks_from_ref_words(&self) -> bool {
        false
    }

    /// Does this policy consume the [`RefWords`] app-touch mask at scan
    /// time ([`RefWords::take_app_mask`])? The manager stores app bits
    /// on every hit/touch when this is `true`, even though the policy
    /// does not *rank* from the words — sharing-aware folds undrained
    /// touches into its referent sets so protection is current at scan
    /// time, not as of the last drain.
    fn consumes_app_mask(&self) -> bool {
        false
    }

    /// Credit `hits`/`misses` collapsed count-only events (see
    /// [`ranks_from_ref_words`](Self::ranks_from_ref_words)) into the
    /// stats ledger. Order relative to drained batches is irrelevant:
    /// counters commute, and count-only events carry no recency or
    /// per-app information by construction.
    fn credit_counts(&mut self, hits: u64, misses: u64) {
        self.stats_mut().hits += hits;
        self.stats_mut().misses += misses;
    }

    /// Apply a batch of deferred access events, oldest first. The
    /// provided default replays each event through the eager hooks —
    /// hit/miss counters, the per-app ledger, `on_access` for recency —
    /// so a policy that implements only the eager surface is drain-ready.
    /// Policies that rank from the table's atomic [`RefWords`] (clock)
    /// override this to skip the `on_access` replay: the producer already
    /// stored the recency word at access time, and replaying it later
    /// could resurrect a reference bit an eviction scan legitimately
    /// consumed in between.
    fn drain(&mut self, events: &[AccessEvent]) {
        for ev in events {
            match ev.kind {
                AccessKind::Hit => {
                    self.stats_mut().hits += 1;
                    self.note_app_hit(ev.app);
                    self.on_access(ev.frame, ev.key, ev.app);
                }
                AccessKind::ProbeHit => {
                    self.stats_mut().hits += 1;
                    self.note_app_hit(ev.app);
                }
                AccessKind::Miss => {
                    self.stats_mut().misses += 1;
                    self.note_app_miss(ev.app);
                }
                AccessKind::Touch => self.on_access(ev.frame, ev.key, ev.app),
            }
        }
    }

    /// A new block (fingerprint `key`) was installed into `frame`.
    fn on_insert(&mut self, frame: u32, key: u64, app: AppId);

    /// `frame` was vacated (eviction or invalidation); `key` identifies the
    /// departing block so ghost-list policies can remember it.
    fn on_remove(&mut self, frame: u32, key: u64);

    /// `frame` was dropped by **coherence invalidation** rather than
    /// capacity pressure. Defaults to [`on_remove`](Self::on_remove);
    /// meta-policies override it to keep invalidations out of the
    /// refault memory their quota tuner reads (an invalidated block
    /// re-read later says nothing about partition sizing).
    fn on_remove_invalidated(&mut self, frame: u32, key: u64) {
        self.on_remove(frame, key);
    }

    /// Start a fresh eviction scan. Candidate order is decided here (or
    /// lazily in [`next_candidate`](ReplacementPolicy::next_candidate));
    /// candidate *eligibility* (residency, pins, the owner filter) is the
    /// table's business.
    fn begin_scan(&mut self);

    /// Next eviction candidate in preference order, or `None` when the
    /// scan is exhausted. With `filter: Some(app)` only frames owned by
    /// `app` are offered — the partition-local scan quota enforcement
    /// runs — and other owners' ranking state must be left untouched
    /// (skipped, not consumed). The caller may reject a candidate (dirty
    /// during a clean-only pass, raced away, …) and simply ask again.
    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32>;

    /// The resident frames in this policy's *eviction-preference order* —
    /// soonest-to-evict first, most-protected last — without consuming any
    /// ranking state (a read-only view of what a scan *would* offer).
    /// [`migrate`] replays residency through the incoming policy in this
    /// order, so the outgoing policy's recency/utility ranking survives a
    /// live switch instead of degrading to frame-index order. `None`
    /// means the policy has no meaningful ordering to export and the
    /// caller falls back to frame order.
    fn recency_ranking(&self) -> Option<Vec<u32>> {
        None
    }

    // ------------------------------------------------------------------
    // Provided, table-backed surface.
    // ------------------------------------------------------------------

    /// `frame` is (un)pinned: pinned frames (e.g. dirty data in flight to
    /// an iod) must not be offered as candidates.
    fn set_pinned(&mut self, frame: u32, pinned: bool) {
        self.table_mut().set_pinned(frame, pinned);
    }

    /// Application that installed the block in `frame`.
    fn owner_of(&self, frame: u32) -> AppId {
        self.table().owner_of(frame)
    }

    /// Frames currently owned by `app`.
    fn resident_of(&self, app: AppId) -> usize {
        self.table().resident_of(app)
    }

    /// Per-application usage ledger (occupancy + attributed traffic).
    fn app_usage(&self) -> Vec<(AppId, AppUsage)> {
        self.table().app_usage()
    }

    /// Attribute one hit / miss / eviction to an application.
    fn note_app_hit(&mut self, app: AppId) {
        self.table_mut().note_app_hit(app);
    }
    fn note_app_miss(&mut self, app: AppId) {
        self.table_mut().note_app_miss(app);
    }
    fn note_app_eviction(&mut self, app: AppId) {
        self.table_mut().note_app_eviction(app);
    }

    /// The policy's event counters.
    fn stats(&self) -> &PolicyStats {
        &self.table().stats
    }
    fn stats_mut(&mut self) -> &mut PolicyStats {
        &mut self.table_mut().stats
    }

    // ------------------------------------------------------------------
    // Epoch protocol (driven by the buffer manager).
    // ------------------------------------------------------------------

    /// An epoch boundary: the manager calls this every `epoch_accesses`
    /// cache accesses (when epochs are enabled at all). `quotas` is the
    /// current effective frame quota of every quota'd application — the
    /// tuner's starting point. The returned [`QuotaUpdate`]s are
    /// *recommendations*; the manager validates and applies them to its
    /// charge ledger. Static policies may use the tick for time-based
    /// aging ([`SharingAware`]'s referent decay); the default is a no-op.
    fn epoch_tick(&mut self, quotas: &[(AppId, usize)]) -> Vec<QuotaUpdate> {
        let _ = quotas;
        Vec::new()
    }

    /// The meta-policy observability ledger (`None` for static policies).
    fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        None
    }

    // ------------------------------------------------------------------
    // Coordinated epoch protocol (sharded managers).
    // ------------------------------------------------------------------

    /// Export what this policy observed over the closing epoch *without*
    /// taking any decision: ghost hit/access counts per candidate and the
    /// per-application refault evidence. A sharded manager collects one
    /// observation per shard, merges the ledgers, decides once globally,
    /// and pushes the verdict back through
    /// [`epoch_apply`](Self::epoch_apply) — so every shard switches (or
    /// stays) in lockstep. Static policies have nothing to report
    /// (`None`); the caller then just runs their ordinary
    /// [`epoch_tick`](Self::epoch_tick).
    fn epoch_observe(&self) -> Option<EpochObservation> {
        None
    }

    /// Apply a globally-decided epoch verdict: advance the epoch clock,
    /// perform the directed live switch (if any), and close out the ghost
    /// ledgers the observation was taken from. Only meaningful for
    /// policies that returned `Some` from
    /// [`epoch_observe`](Self::epoch_observe); the default ignores the
    /// directive.
    fn epoch_apply(&mut self, directive: &EpochDirective) {
        let _ = directive;
    }
}

/// What an adaptive meta-policy saw over one epoch, exported *before* any
/// switch/tuning decision so a sharded manager can merge per-shard ledgers
/// and decide once for the whole pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochObservation {
    /// The currently live candidate's kind.
    pub live: Option<PolicyKind>,
    /// Per-candidate ghost traffic this epoch: `(kind, hits, accesses)`.
    pub ghost_epoch: Vec<(PolicyKind, u64, u64)>,
    /// Per-application refaults this epoch (ghost-list re-reads of blocks
    /// the app recently lost to eviction) — the quota tuner's evidence.
    pub refaults: Vec<(AppId, u64)>,
}

impl EpochObservation {
    /// Merge another shard's observation into this one (ledgers sum by
    /// kind / app; `live` must agree — shards switch in lockstep).
    pub fn merge(&mut self, other: &EpochObservation) {
        if self.live.is_none() {
            self.live = other.live;
        }
        for &(kind, hits, accesses) in &other.ghost_epoch {
            match self.ghost_epoch.iter_mut().find(|(k, _, _)| *k == kind) {
                Some(slot) => {
                    slot.1 += hits;
                    slot.2 += accesses;
                }
                None => self.ghost_epoch.push((kind, hits, accesses)),
            }
        }
        for &(app, n) in &other.refaults {
            match self.refaults.iter_mut().find(|(a, _)| *a == app) {
                Some(slot) => slot.1 += n,
                None => self.refaults.push((app, n)),
            }
        }
    }
}

/// A globally-decided epoch verdict pushed back into each shard's policy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochDirective {
    /// `Some((to, from_rate, to_rate))` directs a live switch to `to`
    /// (rates are the merged ghost rates that justified it, recorded in
    /// the switch log). `None` keeps the live policy.
    pub switch_to: Option<(PolicyKind, f64, f64)>,
    /// A globally-decided quota transfer to enter into the move log:
    /// `(from, to, frames, from_refaults, to_refaults)`. The transfer
    /// itself is applied by the manager's charge ledger; this field only
    /// carries the bookkeeping so the decision shows up in
    /// [`AdaptiveStats::quota_log`].
    pub quota_move: Option<(AppId, AppId, usize, u64, u64)>,
}

/// Live-migrate a policy's frame state into a fresh policy of `to`'s kind:
/// every resident frame is replayed through the new policy's `on_insert`
/// in the outgoing policy's [`recency_ranking`] order (soonest-to-evict
/// first, so the incoming policy ends up protecting what the outgoing one
/// protected; frame order is the fallback when the outgoing policy exports
/// no ranking), then the shared [`FrameTable`] is carried over verbatim so
/// pins, ownership, the per-application ledger and the [`PolicyStats`]
/// counters all survive the switch unchanged. The table carries its atomic
/// [`RefWords`] with it (shared `Arc`), so reference bits set before the
/// switch keep protecting their frames when the incoming policy is clock.
///
/// [`recency_ranking`]: ReplacementPolicy::recency_ranking
pub fn migrate(old: &dyn ReplacementPolicy, to: PolicyKind) -> Box<dyn ReplacementPolicy> {
    let table = old.table();
    let mut new = to.build(table.capacity());
    let order = old
        .recency_ranking()
        .unwrap_or_else(|| table.resident_entries().iter().map(|&(f, _, _)| f).collect());
    for frame in order {
        if table.is_resident(frame) {
            new.on_insert(frame, table.key_of(frame), table.owner_of(frame));
        }
    }
    *new.table_mut() = table.clone();
    new
}

/// Selector for the built-in policies — what configs, JSON experiment
/// specs, and ablations name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Second chance / approximate LRU (the paper's §3.2 choice).
    Clock,
    /// Exact LRU list updated on every access (the paper's ablation).
    ExactLru,
    /// Least frequently used, LRU tie-break.
    Lfu,
    /// 2Q: FIFO admission queue + ghost list + main LRU.
    TwoQ,
    /// Adaptive replacement cache.
    Arc,
    /// Protect blocks referenced by multiple applications.
    SharingAware,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Clock,
        PolicyKind::ExactLru,
        PolicyKind::Lfu,
        PolicyKind::TwoQ,
        PolicyKind::Arc,
        PolicyKind::SharingAware,
    ];

    /// Stable textual name (JSON configs, figure series labels).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Clock => "clock",
            PolicyKind::ExactLru => "exact-lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Arc => "arc",
            PolicyKind::SharingAware => "sharing-aware",
        }
    }

    /// Inverse of [`name`](PolicyKind::name), tolerant of common aliases.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "clock" | "second-chance" => Some(PolicyKind::Clock),
            "exact-lru" | "lru" => Some(PolicyKind::ExactLru),
            "lfu" => Some(PolicyKind::Lfu),
            "2q" | "twoq" => Some(PolicyKind::TwoQ),
            "arc" => Some(PolicyKind::Arc),
            "sharing-aware" | "sharing" => Some(PolicyKind::SharingAware),
            _ => None,
        }
    }

    /// Instantiate the policy for a pool of `capacity` frames.
    pub fn build(self, capacity: usize) -> Box<dyn ReplacementPolicy> {
        assert!(capacity > 0, "policy over empty frame pool");
        match self {
            PolicyKind::Clock => Box::new(Clock::new(capacity)),
            PolicyKind::ExactLru => Box::new(ExactLru::new(capacity)),
            PolicyKind::Lfu => Box::new(Lfu::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
            PolicyKind::Arc => Box::new(Arc::new(capacity)),
            PolicyKind::SharingAware => Box::new(SharingAware::new(capacity)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(PolicyKind::parse("lru"), Some(PolicyKind::ExactLru));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn build_produces_matching_kind() {
        for kind in PolicyKind::ALL {
            let p = kind.build(8);
            assert_eq!(p.kind(), kind);
            assert_eq!(*p.stats(), PolicyStats::default());
        }
    }

    #[test]
    fn owner_filtered_scans_respect_partitions_in_every_policy() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build(8);
            // Frames 0..4 belong to app 0, frames 4..8 to app 1.
            for f in 0..8u32 {
                p.on_insert(f, 100 + f as u64, AppId(f / 4));
            }
            assert_eq!(p.resident_of(AppId(0)), 4, "{kind}");
            assert_eq!(p.owner_of(6), AppId(1), "{kind}");
            p.begin_scan();
            let mut offered = Vec::new();
            while let Some(c) = p.next_candidate(Some(AppId(1))) {
                offered.push(c);
                assert!(offered.len() <= 32, "{kind}: filtered scan did not terminate");
            }
            assert!(!offered.is_empty(), "{kind}: filtered scan found no candidate");
            assert!(
                offered.iter().all(|&f| (4..8).contains(&f)),
                "{kind}: filtered scan leaked another app's frames: {offered:?}"
            );
            // Without the filter the whole pool is eligible again.
            p.begin_scan();
            let mut all = std::collections::BTreeSet::new();
            while let Some(c) = p.next_candidate(None) {
                all.insert(c);
                assert!(all.len() <= 8, "{kind}: unfiltered scan did not terminate");
            }
            assert!(!all.is_empty(), "{kind}: unfiltered scan found no candidate");
        }
    }

    #[test]
    fn migrate_preserves_residency_pins_and_ledger() {
        for from in PolicyKind::ALL {
            for to in PolicyKind::ALL {
                let mut p = from.build(8);
                for f in 0..6u32 {
                    p.on_insert(f, 500 + f as u64, AppId(f % 2));
                }
                p.on_access(1, 501, AppId(1));
                p.note_app_hit(AppId(1));
                p.note_app_miss(AppId(0));
                p.set_pinned(2, true);
                p.on_remove(5, 505);
                let new = migrate(p.as_ref(), to);
                assert_eq!(new.kind(), to, "{from}->{to}");
                assert_eq!(
                    new.table().resident_frames(),
                    p.table().resident_frames(),
                    "{from}->{to}: residency changed"
                );
                assert_eq!(
                    new.table().resident_entries(),
                    p.table().resident_entries(),
                    "{from}->{to}: keys/owners changed"
                );
                assert!(new.table().is_pinned(2), "{from}->{to}: pin lost");
                assert_eq!(new.app_usage(), p.app_usage(), "{from}->{to}: app ledger changed");
                assert_eq!(new.stats(), p.stats(), "{from}->{to}: stats changed");
                // The migrated policy must still run a working scan.
                let mut new = new;
                new.begin_scan();
                let c = new.next_candidate(None).expect("migrated policy must find a victim");
                assert!(new.table().evictable(c), "{from}->{to}: bad candidate {c}");
            }
        }
    }

    #[test]
    fn recency_ranking_covers_residency_without_consuming_state() {
        for kind in PolicyKind::ALL {
            let mut p = kind.build(8);
            for f in 0..6u32 {
                p.on_insert(f, 100 + f as u64, AppId(f % 2));
            }
            p.on_access(1, 101, AppId(1));
            p.table().ref_words().touch(2, AppId(0));
            let Some(order) = p.recency_ranking() else {
                panic!("{kind}: every built-in policy exports a ranking");
            };
            let set: std::collections::BTreeSet<u32> = order.iter().copied().collect();
            assert_eq!(
                set,
                p.table().resident_frames().into_iter().collect(),
                "{kind}: ranking must cover exactly the resident set"
            );
            assert_eq!(order.len(), 6, "{kind}: ranking has duplicates");
            assert_eq!(
                p.recency_ranking().unwrap(),
                order,
                "{kind}: exporting the ranking must not consume ranking state"
            );
            assert!(
                p.table().ref_words().is_referenced(2),
                "{kind}: ranking export consumed a reference bit"
            );
        }
    }

    #[test]
    fn migrate_preserves_recency_order() {
        let mut p = PolicyKind::ExactLru.build(8);
        for f in 0..6u32 {
            p.on_insert(f, 500 + f as u64, AppId::UNKNOWN);
        }
        // Touch in an order that diverges from frame-index order.
        p.on_access(0, 500, AppId::UNKNOWN);
        p.on_access(3, 503, AppId::UNKNOWN);
        let want = p.recency_ranking().unwrap();
        assert_eq!(want, vec![1, 2, 4, 5, 0, 3]);
        let mut new = migrate(p.as_ref(), PolicyKind::ExactLru);
        assert_eq!(new.recency_ranking().unwrap(), want, "LRU order must survive the switch");
        new.begin_scan();
        assert_eq!(new.next_candidate(None), Some(1), "victim choice carries over");
    }

    #[test]
    fn epoch_observation_merges_by_kind_and_app() {
        let mut a = EpochObservation {
            live: Some(PolicyKind::Clock),
            ghost_epoch: vec![(PolicyKind::Clock, 3, 10), (PolicyKind::Arc, 5, 10)],
            refaults: vec![(AppId(0), 2)],
        };
        let b = EpochObservation {
            live: Some(PolicyKind::Clock),
            ghost_epoch: vec![(PolicyKind::Arc, 1, 4), (PolicyKind::Lfu, 2, 4)],
            refaults: vec![(AppId(0), 1), (AppId(1), 7)],
        };
        a.merge(&b);
        assert_eq!(
            a.ghost_epoch,
            vec![(PolicyKind::Clock, 3, 10), (PolicyKind::Arc, 6, 14), (PolicyKind::Lfu, 2, 4)]
        );
        assert_eq!(a.refaults, vec![(AppId(0), 3), (AppId(1), 7)]);
    }

    #[test]
    fn app_usage_hit_ratio() {
        let u = AppUsage { resident: 3, hits: 3, misses: 1, evictions: 0 };
        assert_eq!(u.hit_ratio(), Some(0.75));
        assert_eq!(AppUsage::default().hit_ratio(), None);
    }
}
