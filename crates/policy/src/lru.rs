//! Exact LRU — the ablation the paper argues against ("exact LRU can
//! result in a significant overhead at each read/write invocation"),
//! extracted from the seed buffer manager's intrusive list.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};

const NIL: u32 = u32::MAX;

/// Intrusive doubly-linked list over frame indices, MRU at the head.
/// Every access relinks the frame to the head; an eviction scan snapshots
/// the list tail-first (LRU → MRU), exactly like the seed's `lru_order`.
pub struct ExactLru {
    table: FrameTable,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    linked: Vec<bool>,
    scan: Vec<u32>,
    scan_pos: usize,
}

impl ExactLru {
    pub fn new(capacity: usize) -> ExactLru {
        ExactLru {
            table: FrameTable::new(capacity),
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            linked: vec![false; capacity],
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    fn unlink(&mut self, i: u32) {
        if !self.linked[i as usize] {
            return;
        }
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.linked[i as usize] = false;
    }

    /// Move to the MRU position.
    fn touch(&mut self, i: u32) {
        self.unlink(i);
        self.prev[i as usize] = NIL;
        self.next[i as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.linked[i as usize] = true;
    }

    /// Frames from LRU to MRU.
    fn lru_order(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = self.tail;
        while i != NIL {
            out.push(i);
            i = self.prev[i as usize];
        }
        out
    }
}

impl ReplacementPolicy for ExactLru {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ExactLru
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        self.touch(frame);
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.touch(frame);
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
        self.unlink(frame);
    }

    fn begin_scan(&mut self) {
        self.scan = self.lru_order();
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        Some(self.lru_order())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_strictly_oldest() {
        let mut l = ExactLru::new(3);
        for f in 0..3 {
            l.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        l.on_access(0, 0, AppId::UNKNOWN); // 1 is now LRU
        l.begin_scan();
        assert_eq!(l.next_candidate(None), Some(1));
        assert_eq!(l.next_candidate(None), Some(2));
        assert_eq!(l.next_candidate(None), Some(0));
        assert_eq!(l.next_candidate(None), None);
    }

    #[test]
    fn remove_unlinks() {
        let mut l = ExactLru::new(3);
        for f in 0..3 {
            l.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        l.on_remove(0, 0);
        l.begin_scan();
        assert_eq!(l.next_candidate(None), Some(1));
        assert_eq!(l.next_candidate(None), Some(2));
        assert_eq!(l.next_candidate(None), None);
    }
}
