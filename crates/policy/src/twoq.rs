//! 2Q (Johnson & Shasha, VLDB '94) — a FIFO admission queue in front of
//! the main LRU, with a ghost list promoting genuinely re-referenced
//! blocks. Scan-resistant: a one-pass sweep drains through A1in without
//! displacing the hot set in Am.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    None,
    A1In,
    Am,
}

/// Full 2Q: `A1in` (FIFO over newly admitted frames), `A1out` (ghost FIFO
/// of fingerprints recently evicted from A1in), `Am` (LRU of proven-hot
/// frames). A block whose fingerprint is found in A1out at insert time is
/// admitted straight into Am. Eviction prefers A1in's front while A1in
/// holds at least `kin` frames, then Am's LRU end.
pub struct TwoQ {
    table: FrameTable,
    loc: Vec<Loc>,
    a1in: VecDeque<u32>,
    /// Front = LRU, back = MRU.
    am: VecDeque<u32>,
    a1out: VecDeque<u64>,
    kin: usize,
    kout: usize,
    scan: Vec<u32>,
    scan_pos: usize,
}

impl TwoQ {
    pub fn new(capacity: usize) -> TwoQ {
        TwoQ {
            table: FrameTable::new(capacity),
            loc: vec![Loc::None; capacity],
            a1in: VecDeque::new(),
            am: VecDeque::new(),
            a1out: VecDeque::new(),
            // The 2Q paper's rules of thumb: Kin ≈ 25%, Kout ≈ 50%.
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    fn detach(&mut self, frame: u32) {
        match self.loc[frame as usize] {
            Loc::A1In => self.a1in.retain(|&f| f != frame),
            Loc::Am => self.am.retain(|&f| f != frame),
            Loc::None => {}
        }
        self.loc[frame as usize] = Loc::None;
    }

    fn remember_ghost(&mut self, key: u64) {
        self.a1out.retain(|&k| k != key);
        self.a1out.push_back(key);
        while self.a1out.len() > self.kout {
            self.a1out.pop_front();
        }
    }
}

impl ReplacementPolicy for TwoQ {
    fn kind(&self) -> PolicyKind {
        PolicyKind::TwoQ
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        match self.loc[frame as usize] {
            // 2Q: hits inside the admission FIFO do not reorder it.
            Loc::A1In => {}
            Loc::Am => {
                self.am.retain(|&f| f != frame);
                self.am.push_back(frame);
            }
            Loc::None => {}
        }
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.detach(frame);
        if let Some(pos) = self.a1out.iter().position(|&k| k == key) {
            // Seen recently and re-requested: proven hot, straight to Am.
            self.a1out.remove(pos);
            self.am.push_back(frame);
            self.loc[frame as usize] = Loc::Am;
        } else {
            self.a1in.push_back(frame);
            self.loc[frame as usize] = Loc::A1In;
        }
    }

    fn on_remove(&mut self, frame: u32, key: u64) {
        if self.loc[frame as usize] == Loc::A1In {
            // Only A1in departures enter the ghost list (Am blocks had
            // their chance to prove heat; 2Q forgets them).
            self.remember_ghost(key);
        }
        self.detach(frame);
        self.table.remove(frame);
    }

    fn begin_scan(&mut self) {
        self.scan.clear();
        if self.a1in.len() >= self.kin {
            self.scan.extend(self.a1in.iter());
            self.scan.extend(self.am.iter());
        } else {
            self.scan.extend(self.am.iter());
            self.scan.extend(self.a1in.iter());
        }
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        // Same composition begin_scan would pick right now: the queue
        // that drains first ranks as least protected.
        let mut order = Vec::with_capacity(self.a1in.len() + self.am.len());
        if self.a1in.len() >= self.kin {
            order.extend(self.a1in.iter());
            order.extend(self.am.iter());
        } else {
            order.extend(self.am.iter());
            order.extend(self.a1in.iter());
        }
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_fifo_drains_first() {
        let mut q = TwoQ::new(4);
        for f in 0..4 {
            q.on_insert(f, 100 + f as u64, AppId::UNKNOWN);
        }
        // All four sit in A1in (>= kin = 1): FIFO order, oldest first.
        q.begin_scan();
        assert_eq!(q.next_candidate(None), Some(0));
    }

    #[test]
    fn ghost_hit_promotes_to_am() {
        let mut q = TwoQ::new(2);
        q.on_insert(0, 100, AppId::UNKNOWN);
        q.on_remove(0, 100); // 100 now ghosted in A1out
        q.on_insert(0, 100, AppId::UNKNOWN); // re-admitted: goes to Am
        q.on_insert(1, 200, AppId::UNKNOWN); // fresh: A1in
        q.begin_scan();
        assert_eq!(q.next_candidate(None), Some(1), "A1in drains before the proven-hot Am block");
    }

    #[test]
    fn am_is_lru_ordered() {
        let mut q = TwoQ::new(3);
        for (f, k) in [(0u32, 10u64), (1, 11)] {
            q.on_insert(f, k, AppId::UNKNOWN);
            q.on_remove(f, k);
            q.on_insert(f, k, AppId::UNKNOWN); // both promoted to Am
        }
        q.on_access(0, 10, AppId::UNKNOWN); // 1 is now Am's LRU
        q.begin_scan();
        assert_eq!(q.next_candidate(None), Some(1));
    }
}
