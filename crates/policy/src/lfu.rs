//! LFU — least frequently used, LRU tie-break. Differentiates from
//! clock/LRU only under skewed popularity (the workload's `hotspot` knob).

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};

/// Per-frame access frequency plus a logical access clock for the
/// tie-break. Candidates are offered coldest-first; among equally cold
/// frames, least recently touched first.
pub struct Lfu {
    table: FrameTable,
    freq: Vec<u64>,
    last: Vec<u64>,
    tick: u64,
    scan: Vec<u32>,
    scan_pos: usize,
}

impl Lfu {
    pub fn new(capacity: usize) -> Lfu {
        Lfu {
            table: FrameTable::new(capacity),
            freq: vec![0; capacity],
            last: vec![0; capacity],
            tick: 0,
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    fn stamp(&mut self, frame: u32) {
        self.tick += 1;
        self.last[frame as usize] = self.tick;
    }
}

impl ReplacementPolicy for Lfu {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        self.freq[frame as usize] = self.freq[frame as usize].saturating_add(1);
        self.stamp(frame);
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.freq[frame as usize] = 1;
        self.stamp(frame);
    }

    fn on_remove(&mut self, frame: u32, _key: u64) {
        self.table.remove(frame);
        self.freq[frame as usize] = 0;
    }

    fn begin_scan(&mut self) {
        self.scan = self.table.resident_frames();
        let (freq, last) = (&self.freq, &self.last);
        self.scan.sort_by_key(|&f| (freq[f as usize], last[f as usize]));
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        let mut order = self.table.resident_frames();
        order.sort_by_key(|&f| (self.freq[f as usize], self.last[f as usize]));
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_frame_goes_first() {
        let mut l = Lfu::new(3);
        for f in 0..3 {
            l.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        for _ in 0..5 {
            l.on_access(0, 0, AppId::UNKNOWN);
            l.on_access(2, 2, AppId::UNKNOWN);
        }
        l.on_access(1, 1, AppId::UNKNOWN);
        l.begin_scan();
        assert_eq!(l.next_candidate(None), Some(1), "frame 1 is the coldest");
    }

    #[test]
    fn lru_breaks_frequency_ties() {
        let mut l = Lfu::new(2);
        l.on_insert(0, 0, AppId::UNKNOWN);
        l.on_insert(1, 1, AppId::UNKNOWN);
        l.on_access(0, 0, AppId::UNKNOWN);
        l.on_access(1, 1, AppId::UNKNOWN); // equal freq; 0 touched earlier
        l.begin_scan();
        assert_eq!(l.next_candidate(None), Some(0));
    }

    #[test]
    fn reinsert_resets_frequency() {
        let mut l = Lfu::new(2);
        l.on_insert(0, 0, AppId::UNKNOWN);
        for _ in 0..9 {
            l.on_access(0, 0, AppId::UNKNOWN);
        }
        l.on_remove(0, 0);
        l.on_insert(0, 7, AppId::UNKNOWN);
        l.on_insert(1, 8, AppId::UNKNOWN);
        l.on_access(1, 8, AppId::UNKNOWN);
        l.begin_scan();
        assert_eq!(l.next_candidate(None), Some(0), "old frequency must not leak to the new block");
    }
}
