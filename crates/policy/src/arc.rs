//! ARC (Megiddo & Modha, FAST '03) — adaptive replacement cache. Balances
//! a recency list (T1) against a frequency list (T2), steering the split
//! with ghost-list hits so the policy adapts to the workload instead of
//! being tuned for it.

use crate::table::FrameTable;
use crate::{AppId, PolicyKind, ReplacementPolicy};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    None,
    T1,
    T2,
}

/// T1 holds frames seen once recently, T2 frames seen at least twice; B1
/// and B2 remember fingerprints recently evicted from each. A B1 hit at
/// insert time means "recency is being starved" and grows the T1 target
/// `p`; a B2 hit shrinks it. Eviction takes T1's LRU end while T1 exceeds
/// its target, T2's otherwise.
pub struct Arc {
    table: FrameTable,
    loc: Vec<Loc>,
    /// Front = LRU, back = MRU.
    t1: VecDeque<u32>,
    t2: VecDeque<u32>,
    b1: VecDeque<u64>,
    b2: VecDeque<u64>,
    /// Target size of T1, adapted on ghost hits. `0 ..= capacity`.
    p: usize,
    scan: Vec<u32>,
    scan_pos: usize,
}

impl Arc {
    pub fn new(capacity: usize) -> Arc {
        Arc {
            table: FrameTable::new(capacity),
            loc: vec![Loc::None; capacity],
            t1: VecDeque::new(),
            t2: VecDeque::new(),
            b1: VecDeque::new(),
            b2: VecDeque::new(),
            p: 0,
            scan: Vec::new(),
            scan_pos: 0,
        }
    }

    /// Current T1 target (diagnostics/tests).
    pub fn target_t1(&self) -> usize {
        self.p
    }

    fn detach(&mut self, frame: u32) {
        match self.loc[frame as usize] {
            Loc::T1 => self.t1.retain(|&f| f != frame),
            Loc::T2 => self.t2.retain(|&f| f != frame),
            Loc::None => {}
        }
        self.loc[frame as usize] = Loc::None;
    }

    fn trim_ghost(ghost: &mut VecDeque<u64>, cap: usize) {
        while ghost.len() > cap {
            ghost.pop_front();
        }
    }
}

impl ReplacementPolicy for Arc {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Arc
    }

    fn table(&self) -> &FrameTable {
        &self.table
    }

    fn table_mut(&mut self) -> &mut FrameTable {
        &mut self.table
    }

    fn on_access(&mut self, frame: u32, _key: u64, _app: AppId) {
        // Any resident hit proves frequency: promote to T2's MRU end.
        self.detach(frame);
        self.t2.push_back(frame);
        self.loc[frame as usize] = Loc::T2;
    }

    fn on_insert(&mut self, frame: u32, key: u64, app: AppId) {
        self.table.insert(frame, key, app);
        self.detach(frame);
        if let Some(pos) = self.b1.iter().position(|&k| k == key) {
            // Recency ghost hit: T1 was evicted too aggressively.
            self.b1.remove(pos);
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.table.capacity());
            self.t2.push_back(frame);
            self.loc[frame as usize] = Loc::T2;
        } else if let Some(pos) = self.b2.iter().position(|&k| k == key) {
            // Frequency ghost hit: give T2 more room.
            self.b2.remove(pos);
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.t2.push_back(frame);
            self.loc[frame as usize] = Loc::T2;
        } else {
            self.t1.push_back(frame);
            self.loc[frame as usize] = Loc::T1;
        }
    }

    fn on_remove(&mut self, frame: u32, key: u64) {
        let cap = self.table.capacity();
        match self.loc[frame as usize] {
            Loc::T1 => {
                self.b1.push_back(key);
                Self::trim_ghost(&mut self.b1, cap);
            }
            Loc::T2 => {
                self.b2.push_back(key);
                Self::trim_ghost(&mut self.b2, cap);
            }
            Loc::None => {}
        }
        self.detach(frame);
        self.table.remove(frame);
    }

    fn begin_scan(&mut self) {
        self.scan.clear();
        // REPLACE(): evict from T1 while it exceeds its target, else T2;
        // the other list follows as fallback so a scan never starves.
        if !self.t1.is_empty() && self.t1.len() > self.p {
            self.scan.extend(self.t1.iter());
            self.scan.extend(self.t2.iter());
        } else {
            self.scan.extend(self.t2.iter());
            self.scan.extend(self.t1.iter());
        }
        self.scan_pos = 0;
    }

    fn next_candidate(&mut self, filter: Option<AppId>) -> Option<u32> {
        while self.scan_pos < self.scan.len() {
            let idx = self.scan[self.scan_pos];
            self.scan_pos += 1;
            if self.table.evictable_for(idx, filter) {
                return Some(idx);
            }
        }
        None
    }

    fn recency_ranking(&self) -> Option<Vec<u32>> {
        // Same composition begin_scan would pick right now (REPLACE()'s
        // rule): the list being drained ranks least protected.
        let mut order = Vec::with_capacity(self.t1.len() + self.t2.len());
        if !self.t1.is_empty() && self.t1.len() > self.p {
            order.extend(self.t1.iter());
            order.extend(self.t2.iter());
        } else {
            order.extend(self.t2.iter());
            order.extend(self.t1.iter());
        }
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_seen_frames_drain_before_hot_ones() {
        let mut a = Arc::new(4);
        for f in 0..4 {
            a.on_insert(f, f as u64, AppId::UNKNOWN);
        }
        a.on_access(2, 2, AppId::UNKNOWN); // 2 → T2
        a.begin_scan();
        assert_eq!(a.next_candidate(None), Some(0), "T1 LRU end goes first");
        let mut seen = Vec::new();
        while let Some(f) = a.next_candidate(None) {
            seen.push(f);
        }
        assert_eq!(seen, vec![1, 3, 2], "T2 member offered last");
    }

    #[test]
    fn recency_ghost_hit_grows_t1_target() {
        let mut a = Arc::new(4);
        a.on_insert(0, 42, AppId::UNKNOWN);
        a.on_remove(0, 42); // 42 → B1
        assert_eq!(a.target_t1(), 0);
        a.on_insert(1, 42, AppId::UNKNOWN); // B1 hit
        assert!(a.target_t1() > 0, "p must grow on a B1 hit");
        a.begin_scan();
        // The re-admitted block went to T2, and T1 is empty.
        assert_eq!(a.next_candidate(None), Some(1));
    }

    #[test]
    fn frequency_ghost_hit_shrinks_t1_target() {
        let mut a = Arc::new(4);
        a.on_insert(0, 7, AppId::UNKNOWN);
        a.on_access(0, 7, AppId::UNKNOWN); // → T2
        a.on_remove(0, 7); // 7 → B2
        a.on_insert(1, 99, AppId::UNKNOWN);
        a.on_remove(1, 99); // 99 → B1
        a.on_insert(2, 99, AppId::UNKNOWN); // grow p
        let grown = a.target_t1();
        a.on_insert(3, 7, AppId::UNKNOWN); // B2 hit: shrink p
        assert!(a.target_t1() < grown);
    }
}
