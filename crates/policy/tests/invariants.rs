//! Property tests over every policy, plus differential tests pinning the
//! extracted Clock/ExactLru implementations to the seed buffer manager's
//! behavior.

use kcache_policy::{AccessEvent, AppId, PolicyKind, ReplacementPolicy};
use proptest::prelude::*;

const CAP: usize = 8;

/// Model of the manager's view: which frames are resident/pinned, which
/// application installed them, plus a per-frame fingerprint so ghost-list
/// policies see realistic keys.
struct Model {
    resident: [bool; CAP],
    pinned: [bool; CAP],
    key_of: [u64; CAP],
    owner_of: [AppId; CAP],
}

impl Model {
    fn new() -> Model {
        Model {
            resident: [false; CAP],
            pinned: [false; CAP],
            key_of: [0; CAP],
            owner_of: [AppId::UNKNOWN; CAP],
        }
    }

    fn resident_count(&self) -> usize {
        self.resident.iter().filter(|&&r| r).count()
    }

    fn any_evictable(&self) -> bool {
        (0..CAP).any(|f| self.resident[f] && !self.pinned[f])
    }

    fn any_evictable_owned(&self, owner: AppId) -> bool {
        (0..CAP).any(|f| self.resident[f] && !self.pinned[f] && self.owner_of[f] == owner)
    }
}

/// Drive one policy through an op sequence, checking the candidate
/// invariants at every eviction. Ops honor the manager's calling contract
/// (access/remove only resident frames, insert only vacant ones).
fn drive(kind: PolicyKind, ops: &[(u8, u64)]) {
    let mut boxed = kind.build(CAP);
    let policy: &mut dyn ReplacementPolicy = boxed.as_mut();
    let mut m = Model::new();
    for &(op, arg) in ops {
        let frame = (arg % CAP as u64) as u32;
        let app = AppId((arg % 3) as u32);
        match op {
            0 => {
                // Access (hit) if resident, else treat as an insert.
                if m.resident[frame as usize] {
                    policy.on_access(frame, m.key_of[frame as usize], app);
                } else {
                    m.resident[frame as usize] = true;
                    m.key_of[frame as usize] = arg;
                    m.owner_of[frame as usize] = app;
                    policy.on_insert(frame, arg, app);
                }
            }
            1 => {
                // Invalidate.
                if m.resident[frame as usize] {
                    m.resident[frame as usize] = false;
                    m.pinned[frame as usize] = false;
                    m.owner_of[frame as usize] = AppId::UNKNOWN;
                    policy.on_remove(frame, m.key_of[frame as usize]);
                }
            }
            2 => {
                // Pin toggle (flush in flight / acknowledged).
                if m.resident[frame as usize] {
                    let p = !m.pinned[frame as usize];
                    m.pinned[frame as usize] = p;
                    policy.set_pinned(frame, p);
                }
            }
            3 => {
                // Owner-filtered eviction scan (the partition-local path the
                // quota-enforcing manager runs): every candidate must be
                // owned by the filtered app on top of the usual rules, and
                // the scan must find a victim iff the app owns one.
                policy.begin_scan();
                let got = policy.next_candidate(Some(app));
                if let Some(c) = got {
                    prop_assert!((c as usize) < CAP, "{kind}: filtered candidate {c} out of pool");
                    prop_assert!(m.resident[c as usize], "{kind}: filtered candidate not resident");
                    prop_assert!(!m.pinned[c as usize], "{kind}: filtered candidate is pinned");
                    prop_assert_eq!(
                        m.owner_of[c as usize],
                        app,
                        "{}: candidate {} not owned by the filtered app",
                        kind,
                        c
                    );
                    m.resident[c as usize] = false;
                    m.owner_of[c as usize] = AppId::UNKNOWN;
                    policy.on_remove(c, m.key_of[c as usize]);
                }
                prop_assert!(
                    got.is_some() || !m.any_evictable_owned(app),
                    "{kind}: filtered scan missed an evictable frame owned by app {app:?}"
                );
                let mut offered = 0usize;
                while let Some(c) = policy.next_candidate(Some(app)) {
                    offered += 1;
                    prop_assert!(offered <= 4 * CAP, "{kind}: filtered scan did not terminate");
                    prop_assert!(
                        (c as usize) < CAP
                            && m.resident[c as usize]
                            && !m.pinned[c as usize]
                            && m.owner_of[c as usize] == app,
                        "{kind}: late filtered candidate {c} violates invariants"
                    );
                }
            }
            _ => {
                // Eviction scan: every candidate must be in-pool, resident,
                // and unpinned; the scan must terminate; and when an
                // evictable frame exists the policy must find one.
                policy.begin_scan();
                let mut victim = None;
                if let Some(c) = policy.next_candidate(None) {
                    prop_assert!((c as usize) < CAP, "{kind}: candidate {c} out of pool");
                    prop_assert!(m.resident[c as usize], "{kind}: candidate {c} not resident");
                    prop_assert!(!m.pinned[c as usize], "{kind}: candidate {c} is pinned");
                    victim = Some(c); // manager accepts the first workable candidate
                }
                prop_assert_eq!(
                    victim.is_some(),
                    m.any_evictable(),
                    "{}: policy must find a victim iff one exists",
                    kind
                );
                if let Some(v) = victim {
                    m.resident[v as usize] = false;
                    policy.on_remove(v, m.key_of[v as usize]);
                }
                // Exhausting the rest of the scan must terminate and keep
                // honoring the same candidate rules.
                let mut offered = 0usize;
                while let Some(c) = policy.next_candidate(None) {
                    offered += 1;
                    prop_assert!(offered <= 4 * CAP, "{kind}: scan did not terminate");
                    prop_assert!(
                        (c as usize) < CAP && m.resident[c as usize] && !m.pinned[c as usize],
                        "{kind}: late candidate {c} violates invariants"
                    );
                }
            }
        }
        prop_assert!(m.resident_count() <= CAP, "model residency overflow (test harness bug)");
    }
}

proptest! {
    #[test]
    fn all_policies_uphold_candidate_invariants(
        ops in collection::vec((0u8..5, 0u64..1024), 1..300),
    ) {
        for kind in PolicyKind::ALL {
            drive(kind, &ops);
        }
    }
}

/// Drive two instances of one policy through the same access stream — one
/// applying every event eagerly at access time (a drain batch of one,
/// exactly the manager's eager mode), one buffering events and draining
/// them only at decision points (scans) and checkpoints — and require
/// identical stats, per-app ledgers, and candidate sequences. This is the
/// policy-level half of the drained-equals-eager contract; the producer
/// obligation (store the ref word at event time) is honored for both.
fn drive_drain(kind: PolicyKind, ops: &[(u8, u64)]) {
    let mut eager = kind.build(CAP);
    let mut drained = kind.build(CAP);
    let mut pending: Vec<AccessEvent> = Vec::new();
    let mut resident = [false; CAP];
    let mut key_of = [0u64; CAP];
    for &(op, arg) in ops {
        let frame = (arg % CAP as u64) as u32;
        let app = AppId((arg % 3) as u32);
        let emit = |eager: &mut Box<dyn ReplacementPolicy>,
                    pending: &mut Vec<AccessEvent>,
                    ev: AccessEvent| {
            // The producer contract: ref words stored at access time on
            // BOTH sides (the manager does this lock-free in either mode).
            if matches!(ev.kind, kcache_policy::AccessKind::Hit | kcache_policy::AccessKind::Touch)
            {
                eager.table().ref_words().touch(ev.frame, ev.app);
                drained.table().ref_words().touch(ev.frame, ev.app);
            }
            eager.drain(std::slice::from_ref(&ev));
            pending.push(ev);
        };
        match op {
            0 => {
                if resident[frame as usize] {
                    emit(
                        &mut eager,
                        &mut pending,
                        AccessEvent::hit(frame, key_of[frame as usize], app),
                    );
                } else {
                    resident[frame as usize] = true;
                    key_of[frame as usize] = arg;
                    // Inserts are eager on both sides, after a drain —
                    // the manager's note_insert discipline.
                    drained.drain(&pending);
                    pending.clear();
                    eager.on_insert(frame, arg, app);
                    drained.on_insert(frame, arg, app);
                }
            }
            // A hit/touch may target a frame that was vacated since the
            // access (the manager's benign race class) — policies must
            // treat it identically on both paths.
            1 => {
                emit(&mut eager, &mut pending, AccessEvent::hit(frame, key_of[frame as usize], app))
            }
            2 => emit(
                &mut eager,
                &mut pending,
                AccessEvent::touch(frame, key_of[frame as usize], app),
            ),
            3 => emit(&mut eager, &mut pending, AccessEvent::miss(app)),
            4 => emit(&mut eager, &mut pending, AccessEvent::probe_hit(app)),
            _ => {
                // Decision point: drain, then both sides run one eviction
                // scan and must offer the same full candidate sequence.
                drained.drain(&pending);
                pending.clear();
                eager.begin_scan();
                drained.begin_scan();
                let mut first = true;
                loop {
                    let (a, b) = (eager.next_candidate(None), drained.next_candidate(None));
                    prop_assert_eq!(a, b, "{} candidate order diverged", kind);
                    let Some(v) = a else { break };
                    if first {
                        // The manager takes the first workable candidate.
                        first = false;
                        resident[v as usize] = false;
                        eager.on_remove(v, key_of[v as usize]);
                        drained.on_remove(v, key_of[v as usize]);
                    }
                }
            }
        }
    }
    drained.drain(&pending);
    prop_assert_eq!(eager.stats(), drained.stats(), "{} stats diverged", kind);
    prop_assert_eq!(eager.app_usage(), drained.app_usage(), "{} app ledger diverged", kind);
    prop_assert_eq!(
        eager.table().resident_frames(),
        drained.table().resident_frames(),
        "{} residency diverged",
        kind
    );
}

proptest! {
    #[test]
    fn drained_batches_match_eager_application(
        ops in collection::vec((0u8..6, 0u64..1024), 1..250),
    ) {
        for kind in PolicyKind::ALL {
            drive_drain(kind, &ops);
        }
    }
}

// ---------------------------------------------------------------------
// Differential: extracted Clock vs the seed manager's clock algorithm.
// ---------------------------------------------------------------------

/// The seed manager's eviction scan, verbatim: persistent hand, 2n-step
/// budget, swap-then-skip reference bits, first evictable frame wins.
struct SeedClock {
    bits: [bool; CAP],
    resident: [bool; CAP],
    hand: usize,
}

impl SeedClock {
    fn evict(&mut self) -> Option<u32> {
        for _ in 0..2 * CAP {
            let idx = self.hand;
            self.hand = (self.hand + 1) % CAP;
            if std::mem::take(&mut self.bits[idx]) {
                continue;
            }
            if self.resident[idx] {
                self.resident[idx] = false;
                return Some(idx as u32);
            }
        }
        None
    }
}

proptest! {
    #[test]
    fn clock_matches_seed_manager(ops in collection::vec((0u8..3, 0u64..64), 1..300)) {
        let mut seed = SeedClock { bits: [false; CAP], resident: [false; CAP], hand: 0 };
        let mut p = PolicyKind::Clock.build(CAP);
        for (op, arg) in ops {
            let f = (arg % CAP as u64) as usize;
            match op {
                0 => {
                    if seed.resident[f] {
                        seed.bits[f] = true;
                        p.on_access(f as u32, arg, AppId::UNKNOWN);
                    } else {
                        seed.resident[f] = true;
                        seed.bits[f] = false;
                        p.on_insert(f as u32, arg, AppId::UNKNOWN);
                    }
                }
                1 => {
                    if seed.resident[f] {
                        seed.resident[f] = false;
                        p.on_remove(f as u32, arg);
                    }
                }
                _ => {
                    let want = seed.evict();
                    p.begin_scan();
                    let got = p.next_candidate(None);
                    prop_assert_eq!(got, want, "clock diverged from the seed algorithm");
                    if let Some(v) = got {
                        p.on_remove(v, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn exact_lru_matches_seed_manager(ops in collection::vec((0u8..3, 0u64..64), 1..300)) {
        // Seed reference: a simple MRU-front vector, relinked on every
        // access/insert — the observable contract of the seed's LruList.
        let mut order: Vec<u32> = Vec::new(); // index 0 = MRU, last = LRU
        let mut p = PolicyKind::ExactLru.build(CAP);
        for (op, arg) in ops {
            let f = (arg % CAP as u64) as u32;
            match op {
                0 => {
                    let resident = order.contains(&f);
                    order.retain(|&x| x != f);
                    order.insert(0, f);
                    if resident {
                        p.on_access(f, arg, AppId::UNKNOWN);
                    } else {
                        p.on_insert(f, arg, AppId::UNKNOWN);
                    }
                }
                1 => {
                    if order.contains(&f) {
                        order.retain(|&x| x != f);
                        p.on_remove(f, arg);
                    }
                }
                _ => {
                    let want = order.pop();
                    p.begin_scan();
                    let got = p.next_candidate(None);
                    prop_assert_eq!(got, want, "exact LRU diverged from the seed list");
                    if let Some(v) = got {
                        p.on_remove(v, 0);
                    }
                }
            }
        }
    }
}
