//! The PVFS data server daemon (`iod`).
//!
//! One per storage node. Serves striped reads/writes from its local file
//! system through the node's OS page cache and disk, listens on a separate
//! port for cache-module flushes (the paper's server-side flusher), and —
//! for the coherence extension — keeps a **per-block directory** of which
//! client nodes cache each block, so a sync-write can invalidate them
//! (§3.2: "requires a directory entry per block (at the IOD)").

use crate::config::{CostModel, PvfsConfig};
use crate::protocol::{
    pattern_bytes, ByteRange, Fid, FlushAck, FlushBlocks, Invalidate, InvalidateAck, ReadAck,
    ReadData, ReadReq, WriteAck, WriteReq, CACHE_PORT, IOD_FLUSH_PORT, IOD_PORT,
};
use bytes::Bytes;
use sim_core::{resource, Actor, ActorId, Ctx, Dur, Msg, SharedResource, SimTime};
use sim_disk::{BlockFs, DiskOp, DiskReply, DiskRequest, Ino, PageCache, BLOCK_SIZE};
use sim_net::{Deliver, NetMessage, NodeId, Port, Xmit};
use std::any::Any;
use std::collections::HashMap;

/// iod statistics.
#[derive(Debug, Default, Clone)]
pub struct IodStats {
    pub read_reqs: u64,
    pub write_reqs: u64,
    pub flush_reqs: u64,
    pub sync_writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub invalidations_sent: u64,
    pub directory_entries: u64,
}

struct PendingRead {
    req: ReadReq,
    disk_remaining: usize,
}

struct PendingSync {
    req_id: u64,
    reply_to: (NodeId, Port),
    acks_remaining: usize,
    bytes: u64,
}

/// Periodic dirty-page write-back tick (Linux kupdate analogue).
struct KupdateTick;

/// The data server actor.
pub struct Iod {
    node: NodeId,
    fabric: ActorId,
    disk: ActorId,
    cpu: SharedResource,
    costs: CostModel,
    cfg: PvfsConfig,
    fs: BlockFs,
    files: HashMap<Fid, Ino>,
    pcache: PageCache,
    /// (fid, logical 4 KB block) → client nodes holding a cached copy.
    directory: HashMap<(Fid, u64), Vec<NodeId>>,
    pending_reads: HashMap<u64, PendingRead>,
    /// disk token → pending read id.
    token_owner: HashMap<u64, u64>,
    pending_syncs: HashMap<u64, PendingSync>,
    next_pending: u64,
    next_token: u64,
    next_inv_req: u64,
    tag: u64,
    stats: IodStats,
    started: bool,
}

impl Iod {
    pub fn new(
        node: NodeId,
        fabric: ActorId,
        disk: ActorId,
        cpu: SharedResource,
        costs: CostModel,
        cfg: PvfsConfig,
        fs_capacity_blocks: u64,
    ) -> Iod {
        let pages = cfg.iod_page_cache_pages;
        Iod {
            node,
            fabric,
            disk,
            cpu,
            costs,
            cfg,
            fs: BlockFs::new(fs_capacity_blocks),
            files: HashMap::new(),
            pcache: PageCache::new(pages),
            directory: HashMap::new(),
            pending_reads: HashMap::new(),
            token_owner: HashMap::new(),
            pending_syncs: HashMap::new(),
            next_pending: 1,
            next_token: 1,
            next_inv_req: 1,
            tag: 0,
            stats: IodStats::default(),
            started: false,
        }
    }

    pub fn stats(&self) -> &IodStats {
        &self.stats
    }

    pub fn page_cache(&self) -> &PageCache {
        &self.pcache
    }

    /// Number of nodes registered for a block in the coherence directory.
    pub fn directory_sharers(&self, fid: Fid, block: u64) -> usize {
        self.directory.get(&(fid, block)).map_or(0, |v| v.len())
    }

    /// First physical block backing a fid's local file, if any (test probe).
    pub fn fs_extent_probe(&self, fid: Fid) -> Option<u64> {
        let ino = *self.files.get(&fid)?;
        self.fs.extents_of(ino, 0, BLOCK_SIZE).ok().and_then(|e| e.first().map(|x| x.pblk))
    }

    /// Pre-populate this iod's share of a file with deterministic pattern
    /// bytes, outside simulated time (experiment setup). With `warm` the
    /// pages are also brought into the server page cache, modelling a file
    /// written recently enough to still be memory-resident — the state the
    /// paper's measurements run against.
    pub fn preload(&mut self, fid: Fid, ranges: &[ByteRange], warm: bool) {
        let ino = self.file_for(fid);
        for r in ranges {
            let data = pattern_bytes(fid, r.offset, r.len as usize);
            let out = self.fs.write(ino, r.offset, &data).expect("preload write failed");
            if warm {
                for e in &out.extents {
                    for p in e.pblk..e.pblk + e.blocks as u64 {
                        self.pcache.insert(p, false);
                    }
                }
            }
        }
    }

    fn file_for(&mut self, fid: Fid) -> Ino {
        match self.files.get(&fid) {
            Some(&ino) => ino,
            None => {
                let ino =
                    self.fs.open_or_create(&format!("fid{}", fid.0)).expect("iod namespace full");
                self.files.insert(fid, ino);
                ino
            }
        }
    }

    fn send(
        &mut self,
        ctx: &mut Ctx<'_>,
        at: SimTime,
        src_port: Port,
        dst: (NodeId, Port),
        wire: u32,
        payload: impl Any,
    ) {
        self.tag += 1;
        let m = NetMessage::new((self.node, src_port), dst, wire, self.tag, payload);
        ctx.schedule_in(at.since(ctx.now()), self.fabric, Xmit(m));
    }

    fn register_reader(&mut self, fid: Fid, blocks: impl Iterator<Item = u64>, node: NodeId) {
        for b in blocks {
            let entry = self.directory.entry((fid, b)).or_default();
            if !entry.contains(&node) {
                entry.push(node);
                self.stats.directory_entries += 1;
            }
        }
    }

    fn blocks_of(range: &ByteRange) -> impl Iterator<Item = u64> {
        let first = range.offset / BLOCK_SIZE as u64;
        let last = (range.end().saturating_sub(1)) / BLOCK_SIZE as u64;
        first..=last
    }

    /// Bring every page backing `range` into the page cache; returns the
    /// physical extents that must be read from disk, and handles dirty
    /// evictions by issuing background disk writes.
    fn stage_range(&mut self, ctx: &mut Ctx<'_>, ino: Ino, range: &ByteRange) -> Vec<(u64, u32)> {
        let mut miss_pblks: Vec<u64> = Vec::new();
        let exts = self.fs.extents_of(ino, range.offset, range.len as usize).unwrap_or_default();
        for e in exts {
            for p in e.pblk..e.pblk + e.blocks as u64 {
                if !self.pcache.lookup(p) {
                    miss_pblks.push(p);
                    if let Some(ev) = self.pcache.insert(p, false) {
                        if ev.dirty {
                            self.issue_disk(ctx, DiskOp::Write, ev.pblk, 1, 0);
                        }
                    }
                }
            }
        }
        // Coalesce into contiguous disk requests.
        miss_pblks.sort_unstable();
        miss_pblks.dedup();
        let mut runs: Vec<(u64, u32)> = Vec::new();
        for p in miss_pblks {
            match runs.last_mut() {
                Some((start, n)) if *start + *n as u64 == p => *n += 1,
                _ => runs.push((p, 1)),
            }
        }
        runs
    }

    fn issue_disk(&mut self, ctx: &mut Ctx<'_>, op: DiskOp, pblk: u64, blocks: u32, token: u64) {
        match op {
            DiskOp::Read => self.stats.disk_reads += 1,
            DiskOp::Write => self.stats.disk_writes += 1,
        }
        ctx.schedule_in(
            Dur::ZERO,
            self.disk,
            DiskRequest { op, pblk, blocks, reply_to: ctx.self_id(), token },
        );
    }

    fn handle_read(&mut self, ctx: &mut Ctx<'_>, req: ReadReq) {
        self.stats.read_reqs += 1;
        let now = ctx.now();
        let total: u64 = req.ranges.iter().map(|r| r.len as u64).sum();
        self.stats.bytes_read += total;
        let t1 = resource::reserve(
            &self.cpu,
            now,
            self.costs.recv_overhead + self.costs.iod_request_overhead + self.costs.send_overhead,
        );
        // Acknowledge acceptance (libpvfs blocks on this).
        self.send(
            ctx,
            t1,
            IOD_PORT,
            req.reply_to,
            ReadAck { req_id: req.req_id, bytes: total }.wire_bytes(),
            ReadAck { req_id: req.req_id, bytes: total },
        );
        if req.caching {
            let fid = req.fid;
            let node = req.reply_to.0;
            let blocks: Vec<u64> = req.ranges.iter().flat_map(Self::blocks_of).collect();
            self.register_reader(fid, blocks.into_iter(), node);
        }
        let ino = self.file_for(req.fid);
        // Stage pages; issue disk reads for the misses.
        let mut disk_ops = 0usize;
        let pending_id = self.next_pending;
        let ranges = req.ranges.clone();
        for r in &ranges {
            for (pblk, blocks) in self.stage_range(ctx, ino, r) {
                let token = self.next_token;
                self.next_token += 1;
                self.token_owner.insert(token, pending_id);
                self.issue_disk(ctx, DiskOp::Read, pblk, blocks, token);
                disk_ops += 1;
            }
        }
        if disk_ops == 0 {
            self.finish_read(ctx, req);
        } else {
            self.next_pending += 1;
            self.pending_reads.insert(pending_id, PendingRead { req, disk_remaining: disk_ops });
        }
    }

    fn finish_read(&mut self, ctx: &mut Ctx<'_>, req: ReadReq) {
        let now = ctx.now();
        let ino = self.file_for(req.fid);
        // Copy cost: per 4 KB block moved from page cache to the socket,
        // plus one send per data message.
        let total_blocks: u64 = req.ranges.iter().map(|r| Self::blocks_of(r).count() as u64).sum();
        let cpu = Dur::nanos(self.costs.iod_copy_per_block.as_nanos() * total_blocks)
            + Dur::nanos(self.costs.send_overhead.as_nanos() * req.ranges.len().max(1) as u64);
        let t = resource::reserve(&self.cpu, now, cpu);
        for r in &req.ranges {
            let mut buf = vec![0u8; r.len as usize];
            let got = self.fs.read(ino, r.offset, &mut buf).map(|o| o.bytes).unwrap_or(0);
            // Bytes past EOF stay zero: the logical file is pre-sized by the
            // mgr, unwritten regions read as holes.
            let _ = got;
            let rd =
                ReadData { req_id: req.req_id, fid: req.fid, range: *r, data: Bytes::from(buf) };
            let wire = rd.wire_bytes();
            self.send(ctx, t, IOD_PORT, req.reply_to, wire, rd);
        }
    }

    fn apply_write(&mut self, ctx: &mut Ctx<'_>, fid: Fid, range: &ByteRange, data: &Bytes) {
        let ino = self.file_for(fid);
        debug_assert_eq!(data.len(), range.len as usize);
        let out = self.fs.write(ino, range.offset, data).expect("iod disk full");
        for e in &out.extents {
            for p in e.pblk..e.pblk + e.blocks as u64 {
                if let Some(ev) = self.pcache.insert(p, true) {
                    if ev.dirty {
                        self.issue_disk(ctx, DiskOp::Write, ev.pblk, 1, 0);
                    }
                }
            }
        }
    }

    fn handle_write(&mut self, ctx: &mut Ctx<'_>, req: WriteReq) {
        self.stats.write_reqs += 1;
        let now = ctx.now();
        let total = req.total_bytes();
        let blocks: u64 = req.parts.iter().map(|p| Self::blocks_of(&p.range).count() as u64).sum();
        self.stats.bytes_written += total;
        let cpu = self.costs.recv_overhead
            + self.costs.iod_request_overhead
            + Dur::nanos(self.costs.iod_copy_per_block.as_nanos() * blocks)
            + self.costs.send_overhead;
        let t = resource::reserve(&self.cpu, now, cpu);
        for part in &req.parts {
            self.apply_write(ctx, req.fid, &part.range, &part.data);
        }
        if req.caching {
            let blocks: Vec<u64> =
                req.parts.iter().flat_map(|p| Self::blocks_of(&p.range)).collect();
            self.register_reader(req.fid, blocks.into_iter(), req.reply_to.0);
        }
        if req.sync {
            self.stats.sync_writes += 1;
            self.start_invalidation(ctx, t, req);
        } else {
            let ack = WriteAck { req_id: req.req_id, bytes: total };
            self.send(ctx, t, IOD_PORT, req.reply_to, ack.wire_bytes(), ack);
        }
    }

    /// Sync-write coherence: invalidate every *other* node caching one of
    /// the written blocks, ack the writer once all invalidations complete.
    fn start_invalidation(&mut self, ctx: &mut Ctx<'_>, t: SimTime, req: WriteReq) {
        let writer = req.reply_to.0;
        let mut per_node: HashMap<NodeId, Vec<u64>> = HashMap::new();
        for b in req.parts.iter().flat_map(|p| Self::blocks_of(&p.range)) {
            if let Some(nodes) = self.directory.get_mut(&(req.fid, b)) {
                nodes.retain(|n| {
                    if *n == writer {
                        true
                    } else {
                        per_node.entry(*n).or_default().push(b);
                        false // invalidated below: drop from directory
                    }
                });
            }
        }
        if per_node.is_empty() {
            let ack = WriteAck { req_id: req.req_id, bytes: req.total_bytes() };
            self.send(ctx, t, IOD_PORT, req.reply_to, ack.wire_bytes(), ack);
            return;
        }
        let inv_req = self.next_inv_req;
        self.next_inv_req += 1;
        self.pending_syncs.insert(
            inv_req,
            PendingSync {
                req_id: req.req_id,
                reply_to: req.reply_to,
                acks_remaining: per_node.len(),
                bytes: req.total_bytes(),
            },
        );
        for (node, blocks) in per_node {
            self.stats.invalidations_sent += 1;
            let inv = Invalidate {
                req_id: inv_req,
                fid: req.fid,
                blocks,
                reply_to: (self.node, IOD_PORT),
            };
            let wire = inv.wire_bytes();
            let t_send = resource::reserve(&self.cpu, t, self.costs.send_overhead);
            self.send(ctx, t_send, IOD_PORT, (node, CACHE_PORT), wire, inv);
        }
    }

    fn handle_flush(&mut self, ctx: &mut Ctx<'_>, f: FlushBlocks) {
        self.stats.flush_reqs += 1;
        let now = ctx.now();
        let nblocks = f.blocks.len() as u64;
        self.stats.bytes_written += f.total_bytes();
        let cpu = self.costs.recv_overhead
            + self.costs.iod_request_overhead
            + Dur::nanos(self.costs.iod_copy_per_block.as_nanos() * nblocks)
            + self.costs.send_overhead;
        let t = resource::reserve(&self.cpu, now, cpu);
        for e in &f.blocks {
            let range =
                ByteRange::new(e.blk * BLOCK_SIZE as u64 + e.offset as u64, e.data.len() as u32);
            self.apply_write(ctx, f.fid, &range, &e.data);
        }
        // The flushing node keeps the blocks cached (now clean): track it.
        let flusher = f.reply_to.0;
        let blocks: Vec<u64> = f.blocks.iter().map(|e| e.blk).collect();
        self.register_reader(f.fid, blocks.into_iter(), flusher);
        let ack = FlushAck { req_id: f.req_id };
        self.send(ctx, t, IOD_FLUSH_PORT, f.reply_to, ack.wire_bytes(), ack);
    }

    fn handle_disk_reply(&mut self, ctx: &mut Ctx<'_>, r: DiskReply) {
        if r.token == 0 {
            return; // background write-back completion
        }
        let Some(pending_id) = self.token_owner.remove(&r.token) else {
            return;
        };
        let done = {
            let p = self.pending_reads.get_mut(&pending_id).expect("orphan disk token");
            p.disk_remaining -= 1;
            p.disk_remaining == 0
        };
        if done {
            let p = self.pending_reads.remove(&pending_id).unwrap();
            self.finish_read(ctx, p.req);
        }
    }

    fn kupdate(&mut self, ctx: &mut Ctx<'_>) {
        let dirty = self.pcache.drain_dirty(self.cfg.iod_flush_batch);
        // Coalesce contiguous pages into single disk writes.
        let mut sorted = dirty;
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let start = sorted[i];
            let mut n = 1u32;
            while i + (n as usize) < sorted.len() && sorted[i + n as usize] == start + n as u64 {
                n += 1;
            }
            self.issue_disk(ctx, DiskOp::Write, start, n, 0);
            i += n as usize;
        }
        ctx.schedule_self(self.cfg.iod_flush_interval, KupdateTick);
    }
}

impl Actor for Iod {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if !self.started {
            self.started = true;
            ctx.schedule_self(self.cfg.iod_flush_interval, KupdateTick);
        }
        let msg = match msg.cast::<Deliver>() {
            Ok(d) => {
                let net = d.0;
                let net = match net.cast::<ReadReq>() {
                    Ok((_, r)) => return self.handle_read(ctx, *r),
                    Err(n) => n,
                };
                let net = match net.cast::<WriteReq>() {
                    Ok((_, w)) => return self.handle_write(ctx, *w),
                    Err(n) => n,
                };
                let net = match net.cast::<FlushBlocks>() {
                    Ok((_, f)) => return self.handle_flush(ctx, *f),
                    Err(n) => n,
                };
                match net.cast::<InvalidateAck>() {
                    Ok((_, ack)) => {
                        let done = {
                            let Some(p) = self.pending_syncs.get_mut(&ack.req_id) else {
                                return;
                            };
                            p.acks_remaining -= 1;
                            p.acks_remaining == 0
                        };
                        if done {
                            let p = self.pending_syncs.remove(&ack.req_id).unwrap();
                            let t = resource::reserve(
                                &self.cpu,
                                ctx.now(),
                                self.costs.recv_overhead + self.costs.send_overhead,
                            );
                            let wack = WriteAck { req_id: p.req_id, bytes: p.bytes };
                            self.send(ctx, t, IOD_PORT, p.reply_to, wack.wire_bytes(), wack);
                        }
                        return;
                    }
                    Err(n) => panic!("iod received unknown network payload: {:?}", n),
                }
            }
            Err(m) => m,
        };
        let msg = match msg.cast::<DiskReply>() {
            Ok(r) => return self.handle_disk_reply(ctx, *r),
            Err(m) => m,
        };
        if msg.is::<KupdateTick>() {
            self.kupdate(ctx);
        } else {
            panic!("iod received unexpected message");
        }
    }

    fn name(&self) -> String {
        format!("iod-{}", self.node)
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{pattern_byte, FlushEntry, WritePart};
    use sim_core::{Engine, FifoResource};
    use sim_disk::{DiskGeometry, DiskSched};
    use sim_net::{Fabric, NetConfig};

    /// Endpoint that records every delivered protocol message.
    struct Client {
        acks: Vec<ReadAck>,
        data: Vec<ReadData>,
        wacks: Vec<WriteAck>,
        facks: Vec<FlushAck>,
        invs: Vec<(Invalidate, SimTime)>,
        auto_ack_invalidate: bool,
        fabric: ActorId,
        node: NodeId,
    }

    impl Actor for Client {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            let d = match msg.cast::<Deliver>() {
                Ok(d) => d.0,
                Err(_) => return,
            };
            let d = match d.cast::<ReadAck>() {
                Ok((_, a)) => return self.acks.push(*a),
                Err(d) => d,
            };
            let d = match d.cast::<ReadData>() {
                Ok((_, r)) => return self.data.push(*r),
                Err(d) => d,
            };
            let d = match d.cast::<WriteAck>() {
                Ok((_, a)) => return self.wacks.push(*a),
                Err(d) => d,
            };
            let d = match d.cast::<FlushAck>() {
                Ok((_, a)) => return self.facks.push(*a),
                Err(d) => d,
            };
            if let Ok((_, inv)) = d.cast::<Invalidate>() {
                if self.auto_ack_invalidate {
                    let ack = InvalidateAck { req_id: inv.req_id };
                    let m = NetMessage::new(
                        (self.node, CACHE_PORT),
                        inv.reply_to,
                        ack.wire_bytes(),
                        0,
                        ack,
                    );
                    ctx.schedule_in(Dur::ZERO, self.fabric, Xmit(m));
                }
                self.invs.push((*inv, ctx.now()));
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    struct Rig {
        eng: Engine,
        iod: ActorId,
        clients: Vec<ActorId>,
        fabric: ActorId,
    }

    /// Node 0 runs the iod; nodes 1.. are client endpoints.
    fn rig(n_clients: usize) -> Rig {
        let mut eng = Engine::new(7);
        let fabric_slot = eng.reserve_actor();
        let disk = eng.add_actor(Box::new(sim_disk::Disk::new(
            DiskGeometry::maxtor_20gb(),
            DiskSched::CLook,
        )));
        let iod = eng.add_actor(Box::new(Iod::new(
            NodeId(0),
            fabric_slot,
            disk,
            FifoResource::shared("iod-cpu"),
            CostModel::default(),
            PvfsConfig::default(),
            1 << 20,
        )));
        let mut endpoints = vec![iod];
        let mut clients = Vec::new();
        for i in 0..n_clients {
            let c = eng.add_actor(Box::new(Client {
                acks: vec![],
                data: vec![],
                wacks: vec![],
                facks: vec![],
                invs: vec![],
                auto_ack_invalidate: true,
                fabric: fabric_slot,
                node: NodeId(i as u16 + 1),
            }));
            endpoints.push(c);
            clients.push(c);
        }
        eng.install(fabric_slot, Box::new(Fabric::new(NetConfig::hub_100mbps(), endpoints)));
        Rig { eng, iod, clients, fabric: fabric_slot }
    }

    fn send_to_iod(rig: &mut Rig, from: u16, port: Port, wire: u32, payload: impl Any) {
        let m = NetMessage::new((NodeId(from), Port(9000)), (NodeId(0), port), wire, 0, payload);
        rig.eng.post(Dur::ZERO, rig.fabric, Xmit(m));
    }

    #[test]
    fn preloaded_warm_read_serves_without_disk() {
        let mut r = rig(1);
        {
            let iod = r.eng.actor_as_mut::<Iod>(r.iod).unwrap();
            iod.preload(Fid(1), &[ByteRange::new(0, 65536)], true);
        }
        let req = ReadReq {
            req_id: 42,
            fid: Fid(1),
            ranges: vec![ByteRange::new(0, 8192)],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
        };
        let wire = req.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, req);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.acks.len(), 1);
        assert_eq!(c.acks[0].bytes, 8192);
        assert_eq!(c.data.len(), 1);
        assert_eq!(c.data[0].data.len(), 8192);
        // Data integrity: pattern bytes round-trip.
        for (i, b) in c.data[0].data.iter().enumerate() {
            assert_eq!(*b, pattern_byte(Fid(1), i as u64), "byte {} corrupted", i);
        }
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert_eq!(iod.stats().disk_reads, 0, "warm pages must not touch disk");
    }

    #[test]
    fn cold_read_goes_to_disk() {
        let mut r = rig(1);
        {
            let iod = r.eng.actor_as_mut::<Iod>(r.iod).unwrap();
            iod.preload(Fid(1), &[ByteRange::new(0, 65536)], false);
        }
        let req = ReadReq {
            req_id: 1,
            fid: Fid(1),
            ranges: vec![ByteRange::new(0, 16384)],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
        };
        let wire = req.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, req);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.data.len(), 1);
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert!(iod.stats().disk_reads >= 1, "cold read must hit the disk");
        // Second identical read is now warm.
        assert!(iod.page_cache().contains(iod.fs_extent_probe(Fid(1)).expect("file exists")));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut r = rig(1);
        let payload = pattern_bytes(Fid(9), 4096, 8192);
        let req = WriteReq {
            req_id: 5,
            fid: Fid(9),
            parts: vec![WritePart { range: ByteRange::new(4096, 8192), data: payload }],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
            sync: false,
        };
        let wire = req.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, req);
        r.eng.run_until(SimTime::ZERO + Dur::millis(100));
        assert_eq!(r.eng.actor_as::<Client>(r.clients[0]).unwrap().wacks.len(), 1);
        let rreq = ReadReq {
            req_id: 6,
            fid: Fid(9),
            ranges: vec![ByteRange::new(4096, 8192)],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
        };
        let wire = rreq.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, rreq);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.data.len(), 1);
        for (i, b) in c.data[0].data.iter().enumerate() {
            assert_eq!(*b, pattern_byte(Fid(9), 4096 + i as u64));
        }
    }

    #[test]
    fn flush_applies_blocks_and_acks_on_flush_port() {
        let mut r = rig(1);
        let blocks = vec![
            FlushEntry { blk: 3, offset: 0, data: pattern_bytes(Fid(2), 3 * 4096, 4096) },
            FlushEntry { blk: 4, offset: 0, data: pattern_bytes(Fid(2), 4 * 4096, 4096) },
        ];
        let f = FlushBlocks { req_id: 11, fid: Fid(2), blocks, reply_to: (NodeId(1), Port(9000)) };
        let wire = f.wire_bytes();
        send_to_iod(&mut r, 1, IOD_FLUSH_PORT, wire, f);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.facks.len(), 1);
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert_eq!(iod.stats().flush_reqs, 1);
        // The flusher node is now a registered sharer.
        assert_eq!(iod.directory_sharers(Fid(2), 3), 1);
        assert_eq!(iod.directory_sharers(Fid(2), 4), 1);
    }

    #[test]
    fn caching_reads_register_in_directory() {
        let mut r = rig(2);
        for (i, node) in [1u16, 2u16].iter().enumerate() {
            let req = ReadReq {
                req_id: i as u64,
                fid: Fid(3),
                ranges: vec![ByteRange::new(0, 4096)],
                reply_to: (NodeId(*node), Port(9000)),
                caching: true,
            };
            let wire = req.wire_bytes();
            send_to_iod(&mut r, *node, IOD_PORT, wire, req);
        }
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert_eq!(iod.directory_sharers(Fid(3), 0), 2);
        // Non-caching reads do not register.
        assert_eq!(iod.directory_sharers(Fid(3), 1), 0);
    }

    #[test]
    fn sync_write_invalidates_other_sharers() {
        let mut r = rig(2);
        // Node 1 and node 2 cache block 0 of fid 4.
        for node in [1u16, 2u16] {
            let req = ReadReq {
                req_id: node as u64,
                fid: Fid(4),
                ranges: vec![ByteRange::new(0, 4096)],
                reply_to: (NodeId(node), Port(9000)),
                caching: true,
            };
            let wire = req.wire_bytes();
            send_to_iod(&mut r, node, IOD_PORT, wire, req);
        }
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        // Node 1 sync-writes block 0: node 2 must be invalidated, node 1 not.
        let w = WriteReq {
            req_id: 99,
            fid: Fid(4),
            parts: vec![WritePart {
                range: ByteRange::new(0, 4096),
                data: pattern_bytes(Fid(4), 0, 4096),
            }],
            reply_to: (NodeId(1), Port(9000)),
            caching: true,
            sync: true,
        };
        let wire = w.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, w);
        r.eng.run_until(SimTime::ZERO + Dur::secs(2));
        let c1 = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        let c2 = r.eng.actor_as::<Client>(r.clients[1]).unwrap();
        assert_eq!(c1.invs.len(), 0, "writer must not be invalidated");
        assert_eq!(c2.invs.len(), 1);
        assert_eq!(c2.invs[0].0.blocks, vec![0]);
        // Writer got its ack only after the invalidation round.
        assert_eq!(c1.wacks.len(), 1);
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert_eq!(iod.stats().sync_writes, 1);
        assert_eq!(iod.stats().invalidations_sent, 1);
        assert_eq!(iod.directory_sharers(Fid(4), 0), 1, "only the writer remains");
    }

    #[test]
    fn sync_write_with_no_sharers_acks_immediately() {
        let mut r = rig(1);
        let w = WriteReq {
            req_id: 1,
            fid: Fid(5),
            parts: vec![WritePart {
                range: ByteRange::new(0, 4096),
                data: pattern_bytes(Fid(5), 0, 4096),
            }],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
            sync: true,
        };
        let wire = w.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, w);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.wacks.len(), 1);
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert_eq!(iod.stats().invalidations_sent, 0);
    }

    #[test]
    fn kupdate_writes_dirty_pages_to_disk() {
        let mut r = rig(1);
        let w = WriteReq {
            req_id: 1,
            fid: Fid(6),
            parts: vec![WritePart {
                range: ByteRange::new(0, 65536),
                data: pattern_bytes(Fid(6), 0, 65536),
            }],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
            sync: false,
        };
        let wire = w.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, w);
        // Run past one kupdate interval.
        r.eng.run_until(SimTime::ZERO + Dur::secs(11));
        let iod = r.eng.actor_as::<Iod>(r.iod).unwrap();
        assert!(iod.stats().disk_writes >= 1, "kupdate must flush dirty pages");
        assert_eq!(iod.page_cache().dirty_pages(), 0);
    }

    #[test]
    fn multi_range_read_sends_one_data_message_per_range() {
        let mut r = rig(1);
        {
            let iod = r.eng.actor_as_mut::<Iod>(r.iod).unwrap();
            iod.preload(Fid(7), &[ByteRange::new(0, 262144)], true);
        }
        let req = ReadReq {
            req_id: 1,
            fid: Fid(7),
            ranges: vec![ByteRange::new(0, 4096), ByteRange::new(65536, 4096)],
            reply_to: (NodeId(1), Port(9000)),
            caching: false,
        };
        let wire = req.wire_bytes();
        send_to_iod(&mut r, 1, IOD_PORT, wire, req);
        r.eng.run_until(SimTime::ZERO + Dur::secs(1));
        let c = r.eng.actor_as::<Client>(r.clients[0]).unwrap();
        assert_eq!(c.data.len(), 2);
        assert_eq!(c.acks[0].bytes, 8192);
    }
}
