//! # pvfs — the parallel file system substrate
//!
//! A faithful model of the PVFS deployment the paper builds on:
//!
//! * [`mgr`] — the single metadata server (namespace, fids, striping).
//! * [`iod`] — the per-node data server: local file system + OS page
//!   cache + disk, a separate flush listener for cache-module
//!   write-back, and the per-block coherence directory used by
//!   sync-writes.
//! * [`client`] — libpvfs: the in-process client library (striping,
//!   per-iod request aggregation, the request/ack/data protocol), which
//!   addresses an opaque socket layer so a cache module can interpose
//!   transparently.
//! * [`protocol`] / [`striping`] / [`config`] — wire messages, stripe
//!   arithmetic, and the calibrated cost model.
//!
//! Files hold deterministic pattern bytes ([`protocol::pattern_byte`]), so
//! every byte that moves through cache, network, page cache and disk can be
//! verified end to end.

pub mod client;
pub mod config;
pub mod iod;
pub mod mgr;
pub mod protocol;
pub mod striping;

pub use client::{ClientConfig, ClientStats, Completion, PvfsClient};
pub use config::{CostModel, PvfsConfig};
pub use iod::{Iod, IodStats};
pub use mgr::{Mgr, MgrStats, StripePolicy};
pub use protocol::{
    pattern_byte, pattern_bytes, BlockDirQuery, BlockDirReply, BlockDirUpdate, ByteRange, Fid,
    FileHandle, FlushAck, FlushBlocks, FlushEntry, Invalidate, InvalidateAck, MgrCall, MgrReply,
    MgrRequest, PeerReadReply, PeerReadReq, ReadAck, ReadData, ReadReq, StripeSpec, WriteAck,
    WritePart, WriteReq, CACHE_PORT, CLIENT_PORT_BASE, IOD_FLUSH_PORT, IOD_PORT, MGR_PORT,
    MSG_HEADER_BYTES,
};
pub use striping::{split_ranges, tiles_exactly};
