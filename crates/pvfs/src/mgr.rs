//! The PVFS metadata server (`mgr`).
//!
//! One instance per cluster. Owns the namespace: file names, fids, sizes,
//! and striping descriptors. The paper's cache module never caches metadata
//! ("they necessarily go to the meta-data server"), so every open/create is
//! a real network round trip to this actor.

use crate::config::CostModel;
use crate::protocol::{
    BlockDirQuery, BlockDirReply, BlockDirUpdate, Fid, FileHandle, MgrCall, MgrReply, MgrRequest,
    StripeSpec, MGR_PORT,
};
use kcache_obs::{EventId, ObsHub, Phase};
use sim_core::{resource, Actor, ActorId, Ctx, Msg, SharedResource};
use sim_net::{Deliver, NetMessage, NodeId, Xmit};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Trace `tid` lane for the mgr's directory work (cache modules use
/// lanes 0-2 on their own node's `pid`).
const MGR_TRACE_LANE: u32 = 3;

/// Pre-resolved observability handles (None = tracing off, one
/// never-taken branch on the query path).
struct MgrObs {
    hub: Arc<ObsHub>,
    ev_dir_lookup: EventId,
    ev_flow: EventId,
}

/// Striping policy applied to newly created files.
#[derive(Debug, Clone)]
pub struct StripePolicy {
    pub unit: u32,
    /// Stripe across this many iods (usually all of them).
    pub n_iods: u32,
    /// Total iods in the cluster (for round-robin base assignment).
    pub total_iods: u32,
}

/// Metadata server statistics.
#[derive(Debug, Default, Clone)]
pub struct MgrStats {
    pub creates: u64,
    pub opens: u64,
    pub errors: u64,
    /// Block location directory traffic (cooperative caching).
    pub dir_updates: u64,
    pub dir_queries: u64,
    /// Queried blocks for which a peer location was returned.
    pub dir_located: u64,
    /// Queried blocks with no known remote sharer.
    pub dir_unknown: u64,
    /// Hint-mode sharer entries aged out (never decremented): the
    /// directory's defense against unbounded growth when modules skip
    /// eviction removals.
    pub dir_stale_dropped: u64,
}

/// The metadata server actor.
pub struct Mgr {
    node: NodeId,
    fabric: ActorId,
    cpu: SharedResource,
    costs: CostModel,
    policy: StripePolicy,
    files: HashMap<String, FileHandle>,
    next_fid: u64,
    tag: u64,
    stats: MgrStats,
    /// Block location directory for cooperative caching: which nodes
    /// currently cache each logical block, each sharer stamped with the
    /// update generation that last confirmed it. Maintained by
    /// `BlockDirUpdate` deltas from the per-node cache modules; consulted
    /// by `BlockDirQuery` on local misses. In hint mode the modules skip
    /// eviction removals, so entries here may be stale — queries then
    /// misdirect and the fetch falls through to disk at the requester,
    /// and `hint_max_age` bounds how long such ghosts survive.
    directory: HashMap<(Fid, u64), Vec<(NodeId, u64)>>,
    /// Monotone directory logical clock: one tick per applied update.
    dir_gen: u64,
    /// `Some(age)`: sharer stamps older than `age` generations are
    /// dropped (on refresh, on query, and by a periodic sweep). `None`
    /// (authoritative mode) never ages — removals keep the map tight.
    hint_max_age: Option<u64>,
    obs: Option<MgrObs>,
}

impl Mgr {
    pub fn new(
        node: NodeId,
        fabric: ActorId,
        cpu: SharedResource,
        costs: CostModel,
        policy: StripePolicy,
    ) -> Mgr {
        assert!(policy.n_iods >= 1 && policy.n_iods <= policy.total_iods);
        Mgr {
            node,
            fabric,
            cpu,
            costs,
            policy,
            files: HashMap::new(),
            next_fid: 1,
            tag: 0,
            stats: MgrStats::default(),
            directory: HashMap::new(),
            dir_gen: 0,
            hint_max_age: None,
            obs: None,
        }
    }

    /// Wire the mgr into a telemetry hub (the mgr node's per-node hub,
    /// or the cluster-shared one): directory lookups become spans, and
    /// flow-stamped queries get their `t` correlation step.
    pub fn set_obs(&mut self, hub: Arc<ObsHub>) {
        self.obs = Some(MgrObs {
            ev_dir_lookup: hub.intern("dir_lookup", Some("blocks"), Some("located")),
            ev_flow: hub.intern("coop_fetch", None, None),
            hub,
        });
    }

    /// Age hint-mode directory entries out after `max_age` update
    /// generations. The cluster builder arms this only when the cache
    /// runs the directory in hint mode; authoritative directories are
    /// kept tight by explicit removals and must not age (an aged-out
    /// authoritative entry would be a lost remote hit, not a stale one).
    pub fn set_hint_aging(&mut self, max_age: u64) {
        self.hint_max_age = Some(max_age.max(1));
    }

    pub fn stats(&self) -> &MgrStats {
        &self.stats
    }

    /// Namespace lookup for tests/diagnostics.
    pub fn lookup(&self, name: &str) -> Option<&FileHandle> {
        self.files.get(name)
    }

    /// Experiment-setup backdoor: register a file outside simulated time
    /// (the benchmark's files exist before measurement starts). Follows the
    /// same fid/striping policy as a protocol-level create.
    pub fn install_file(&mut self, name: &str, size: u64) -> FileHandle {
        if let Some(h) = self.files.get(name) {
            return h.clone();
        }
        let fid = Fid(self.next_fid);
        self.next_fid += 1;
        let stripe = StripeSpec {
            unit: self.policy.unit,
            n_iods: self.policy.n_iods,
            base: (fid.0 % self.policy.total_iods as u64) as u32,
        };
        let handle = FileHandle { fid, size, stripe };
        self.files.insert(name.to_string(), handle.clone());
        handle
    }

    /// Directory size, for tests/diagnostics.
    pub fn directory_entries(&self) -> usize {
        self.directory.len()
    }

    /// Nodes the directory believes cache `(fid, blk)` (stale-for-age
    /// hints excluded, exactly as a query would see it).
    pub fn directory_sharers(&self, fid: Fid, blk: u64) -> Vec<NodeId> {
        let cut = self.stale_cutoff();
        self.directory
            .get(&(fid, blk))
            .map(|sharers| {
                sharers
                    .iter()
                    .filter(|(_, g)| cut.is_none_or(|c| *g >= c))
                    .map(|(n, _)| *n)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Oldest still-believable generation stamp (`None` = believe all).
    fn stale_cutoff(&self) -> Option<u64> {
        self.hint_max_age.map(|age| self.dir_gen.saturating_sub(age))
    }

    fn apply_dir_update(&mut self, up: BlockDirUpdate) {
        self.stats.dir_updates += 1;
        self.dir_gen += 1;
        let gen = self.dir_gen;
        let cut = self.stale_cutoff();
        for blk in up.added {
            let sharers = self.directory.entry((up.fid, blk)).or_default();
            match sharers.iter_mut().find(|(n, _)| *n == up.node) {
                Some(s) => s.1 = gen,
                None => sharers.push((up.node, gen)),
            }
            // A refresh is the cheap moment to shed this entry's other
            // stale sharers.
            if let Some(c) = cut {
                let before = sharers.len();
                sharers.retain(|(_, g)| *g >= c);
                self.stats.dir_stale_dropped += (before - sharers.len()) as u64;
            }
        }
        for blk in up.removed {
            if let Some(sharers) = self.directory.get_mut(&(up.fid, blk)) {
                sharers.retain(|(n, _)| *n != up.node);
                if sharers.is_empty() {
                    self.directory.remove(&(up.fid, blk));
                }
            }
        }
        // Amortized full sweep: entries nobody refreshes or queries again
        // would otherwise be immortal — exactly the blocks-ever-cached
        // accretion hint mode used to suffer.
        if let Some(age) = self.hint_max_age {
            if gen.is_multiple_of(age) {
                self.sweep_stale();
            }
        }
    }

    /// Drop every sharer stamp older than the cutoff and every entry
    /// left empty by that.
    fn sweep_stale(&mut self) {
        let Some(cut) = self.stale_cutoff() else {
            return;
        };
        let mut dropped = 0u64;
        self.directory.retain(|_, sharers| {
            let before = sharers.len();
            sharers.retain(|(_, g)| *g >= cut);
            dropped += (before - sharers.len()) as u64;
            !sharers.is_empty()
        });
        self.stats.dir_stale_dropped += dropped;
    }

    fn serve_dir_query(&mut self, q: &BlockDirQuery) -> BlockDirReply {
        self.stats.dir_queries += 1;
        let requester = q.reply_to.0;
        let cut = self.stale_cutoff();
        let mut locations = Vec::new();
        for &blk in &q.blocks {
            let peer = self
                .directory
                .get(&(q.fid, blk))
                .and_then(|sharers| {
                    sharers.iter().find(|(n, g)| *n != requester && cut.is_none_or(|c| *g >= c))
                })
                .map(|(n, _)| *n);
            match peer {
                Some(node) => {
                    self.stats.dir_located += 1;
                    locations.push((blk, node));
                }
                None => self.stats.dir_unknown += 1,
            }
        }
        BlockDirReply { req_id: q.req_id, fid: q.fid, locations }
    }

    fn serve(&mut self, call: MgrCall) -> MgrReply {
        match call.req {
            MgrRequest::Create { name, size } => {
                if self.files.contains_key(&name) {
                    self.stats.errors += 1;
                    return MgrReply::Err { req_id: call.req_id, reason: "exists".into() };
                }
                let fid = Fid(self.next_fid);
                self.next_fid += 1;
                self.stats.creates += 1;
                // Round-robin the base iod across files so simultaneous
                // single-file workloads do not all hammer iod 0 first.
                let stripe = StripeSpec {
                    unit: self.policy.unit,
                    n_iods: self.policy.n_iods,
                    base: (fid.0 % self.policy.total_iods as u64) as u32,
                };
                let handle = FileHandle { fid, size, stripe };
                self.files.insert(name, handle.clone());
                MgrReply::Ok { req_id: call.req_id, handle }
            }
            MgrRequest::Open { name } => match self.files.get(&name) {
                Some(handle) => {
                    self.stats.opens += 1;
                    MgrReply::Ok { req_id: call.req_id, handle: handle.clone() }
                }
                None => {
                    self.stats.errors += 1;
                    MgrReply::Err { req_id: call.req_id, reason: "no such file".into() }
                }
            },
        }
    }
}

impl Actor for Mgr {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let d = match msg.cast::<Deliver>() {
            Ok(d) => d.0,
            Err(other) => panic!("mgr received unexpected message: {:?}", other),
        };
        let d = match d.cast::<MgrCall>() {
            Ok((_, call)) => {
                let reply_to = call.reply_to;
                let reply = self.serve(*call);
                // Charge receive + service + send on the mgr node's CPU,
                // then put the reply on the wire.
                let service = self.costs.recv_overhead
                    + self.costs.mgr_request_overhead
                    + self.costs.send_overhead;
                let done = resource::reserve(&self.cpu, ctx.now(), service);
                self.tag += 1;
                let out = NetMessage::new(
                    (self.node, MGR_PORT),
                    reply_to,
                    crate::protocol::MSG_HEADER_BYTES + 64, // handle encoding
                    self.tag,
                    reply,
                );
                ctx.schedule_in(done.since(ctx.now()), self.fabric, Xmit(out));
                return;
            }
            Err(m) => m,
        };
        let d = match d.cast::<BlockDirUpdate>() {
            Ok((_, up)) => {
                // Fire-and-forget bookkeeping: receive cost only.
                let _ = resource::reserve(&self.cpu, ctx.now(), self.costs.recv_overhead);
                self.apply_dir_update(*up);
                return;
            }
            Err(m) => m,
        };
        match d.cast::<BlockDirQuery>() {
            Ok((_, q)) => {
                let reply = self.serve_dir_query(&q);
                let service = self.costs.recv_overhead
                    + self.costs.mgr_request_overhead
                    + self.costs.send_overhead;
                let done = resource::reserve(&self.cpu, ctx.now(), service);
                if let Some(o) = &self.obs {
                    let pid = self.node.0 as u32;
                    o.hub.span(
                        o.ev_dir_lookup,
                        pid,
                        MGR_TRACE_LANE,
                        ctx.now().nanos(),
                        done.since(ctx.now()).as_nanos(),
                        q.blocks.len() as u64,
                        reply.locations.len() as u64,
                    );
                    if !q.flow.is_none() {
                        // The requester opened this flow at its miss;
                        // step it through the directory lookup.
                        o.hub.flow(
                            o.ev_flow,
                            Phase::FlowStep,
                            ctx.now().nanos(),
                            pid,
                            MGR_TRACE_LANE,
                            q.flow,
                        );
                    }
                }
                self.tag += 1;
                let wire = reply.wire_bytes();
                let out = NetMessage::new((self.node, MGR_PORT), q.reply_to, wire, self.tag, reply);
                ctx.schedule_in(done.since(ctx.now()), self.fabric, Xmit(out));
            }
            Err(m) => panic!("mgr received unexpected payload: {:?}", m),
        }
    }

    fn name(&self) -> String {
        "mgr".into()
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{Dur, Engine, FifoResource};
    use sim_net::Port;

    struct Capture {
        replies: Vec<MgrReply>,
        dir_replies: Vec<BlockDirReply>,
    }
    impl Actor for Capture {
        fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            // In this unit test we short-circuit the fabric: Xmit arrives here.
            if let Ok(x) = msg.cast::<Xmit>() {
                match x.0.cast::<MgrReply>() {
                    Ok((_, r)) => self.replies.push(*r),
                    Err(m) => {
                        let (_, r) = m.cast::<BlockDirReply>().expect("mgr reply type");
                        self.dir_replies.push(*r);
                    }
                }
            }
        }
        fn as_any(&self) -> Option<&dyn Any> {
            Some(self)
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
            Some(self)
        }
    }

    fn call(req_id: u64, req: MgrRequest) -> Deliver {
        Deliver(NetMessage::new(
            (NodeId(1), Port(9000)),
            (NodeId(0), MGR_PORT),
            64,
            0,
            MgrCall { req_id, reply_to: (NodeId(1), Port(9000)), req },
        ))
    }

    fn setup() -> (Engine, ActorId, ActorId) {
        let mut eng = Engine::new(0);
        let cap = eng.add_actor(Box::new(Capture { replies: vec![], dir_replies: vec![] }));
        let mgr = eng.add_actor(Box::new(Mgr::new(
            NodeId(0),
            cap,
            FifoResource::shared("mgr-cpu"),
            CostModel::default(),
            StripePolicy { unit: 65536, n_iods: 4, total_iods: 6 },
        )));
        (eng, mgr, cap)
    }

    #[test]
    fn create_then_open_returns_same_handle() {
        let (mut eng, mgr, cap) = setup();
        eng.post(Dur::ZERO, mgr, call(1, MgrRequest::Create { name: "f".into(), size: 1 << 20 }));
        eng.post(Dur::micros(1), mgr, call(2, MgrRequest::Open { name: "f".into() }));
        eng.run();
        let replies = &eng.actor_as::<Capture>(cap).unwrap().replies;
        assert_eq!(replies.len(), 2);
        let (h1, h2) = match (&replies[0], &replies[1]) {
            (MgrReply::Ok { handle: a, .. }, MgrReply::Ok { handle: b, .. }) => (a, b),
            other => panic!("unexpected replies: {:?}", other),
        };
        assert_eq!(h1.fid, h2.fid);
        assert_eq!(h1.size, 1 << 20);
        assert_eq!(h1.stripe.n_iods, 4);
    }

    #[test]
    fn duplicate_create_and_missing_open_error() {
        let (mut eng, mgr, cap) = setup();
        eng.post(Dur::ZERO, mgr, call(1, MgrRequest::Create { name: "f".into(), size: 10 }));
        eng.post(Dur::micros(1), mgr, call(2, MgrRequest::Create { name: "f".into(), size: 10 }));
        eng.post(Dur::micros(2), mgr, call(3, MgrRequest::Open { name: "nope".into() }));
        eng.run();
        let replies = &eng.actor_as::<Capture>(cap).unwrap().replies;
        assert!(matches!(replies[0], MgrReply::Ok { .. }));
        assert!(matches!(replies[1], MgrReply::Err { .. }));
        assert!(matches!(replies[2], MgrReply::Err { .. }));
        let m = eng.actor_as::<Mgr>(mgr).unwrap();
        assert_eq!(m.stats().creates, 1);
        assert_eq!(m.stats().errors, 2);
    }

    #[test]
    fn base_iod_round_robins_across_files() {
        let (mut eng, mgr, cap) = setup();
        for i in 0..6 {
            eng.post(
                Dur::micros(i),
                mgr,
                call(i, MgrRequest::Create { name: format!("f{i}"), size: 1 }),
            );
        }
        eng.run();
        let replies = &eng.actor_as::<Capture>(cap).unwrap().replies;
        let bases: Vec<u32> = replies
            .iter()
            .map(|r| match r {
                MgrReply::Ok { handle, .. } => handle.stripe.base,
                _ => panic!(),
            })
            .collect();
        let distinct: std::collections::HashSet<u32> = bases.iter().copied().collect();
        assert!(distinct.len() >= 5, "bases should spread: {:?}", bases);
    }

    fn dir_update(node: u16, added: Vec<u64>, removed: Vec<u64>) -> Deliver {
        Deliver(NetMessage::new(
            (NodeId(node), Port(7100)),
            (NodeId(0), MGR_PORT),
            64,
            0,
            BlockDirUpdate { fid: Fid(1), node: NodeId(node), added, removed },
        ))
    }

    fn dir_query(node: u16, req_id: u64, blocks: Vec<u64>) -> Deliver {
        Deliver(NetMessage::new(
            (NodeId(node), Port(7100)),
            (NodeId(0), MGR_PORT),
            64,
            0,
            BlockDirQuery {
                req_id,
                fid: Fid(1),
                blocks,
                reply_to: (NodeId(node), Port(7100)),
                flow: kcache_obs::FlowId::NONE,
            },
        ))
    }

    #[test]
    fn traced_query_emits_lookup_span_and_flow_step() {
        use kcache_obs::FlowId;
        let mut eng = Engine::new(0);
        let cap = eng.add_actor(Box::new(Capture { replies: vec![], dir_replies: vec![] }));
        let hub = kcache_obs::ObsHub::new(64);
        let mut m = Mgr::new(
            NodeId(0),
            cap,
            FifoResource::shared("mgr-cpu"),
            CostModel::default(),
            StripePolicy { unit: 65536, n_iods: 4, total_iods: 6 },
        );
        m.set_obs(hub.clone());
        let mgr = eng.add_actor(Box::new(m));
        eng.post(Dur::ZERO, mgr, dir_update(1, vec![10], vec![]));
        let flow = FlowId::coop(3, 9);
        eng.post(
            Dur::micros(1),
            mgr,
            Deliver(NetMessage::new(
                (NodeId(3), Port(7100)),
                (NodeId(0), MGR_PORT),
                64,
                0,
                BlockDirQuery {
                    req_id: 9,
                    fid: Fid(1),
                    blocks: vec![10, 11],
                    reply_to: (NodeId(3), Port(7100)),
                    flow,
                },
            )),
        );
        eng.run();
        let ev = hub.drain_trace();
        let span = ev
            .iter()
            .find(|e| e.name == "dir_lookup" && e.phase == Phase::Span)
            .expect("dir_lookup span");
        assert_eq!((span.pid, span.tid), (0, MGR_TRACE_LANE));
        assert!(span.dur_ns > 0, "span covers the charged service time");
        assert_eq!(span.args, vec![("blocks".to_string(), 2), ("located".to_string(), 1)]);
        let step = ev
            .iter()
            .find(|e| e.name == "coop_fetch" && e.phase == Phase::FlowStep)
            .expect("flow step");
        assert_eq!(step.flow_id, flow.0);
    }

    #[test]
    fn directory_tracks_updates_and_answers_queries() {
        let (mut eng, mgr, cap) = setup();
        eng.post(Dur::ZERO, mgr, dir_update(1, vec![10, 11], vec![]));
        eng.post(Dur::micros(1), mgr, dir_update(2, vec![10], vec![]));
        eng.post(Dur::micros(2), mgr, dir_update(1, vec![], vec![11]));
        // Query from node 3: block 10 has sharers {1,2}, 11 was removed,
        // 12 was never registered.
        eng.post(Dur::micros(3), mgr, dir_query(3, 7, vec![10, 11, 12]));
        eng.run();
        let m = eng.actor_as::<Mgr>(mgr).unwrap();
        assert_eq!(m.stats().dir_updates, 3);
        assert_eq!(m.stats().dir_queries, 1);
        assert_eq!(m.stats().dir_located, 1);
        assert_eq!(m.stats().dir_unknown, 2);
        assert_eq!(m.directory_sharers(Fid(1), 10), vec![NodeId(1), NodeId(2)]);
        assert_eq!(m.directory_entries(), 1);
        // The capture actor received the reply destined for node 3.
        let cap = eng.actor_as::<Capture>(cap).unwrap();
        assert_eq!(cap.dir_replies.len(), 1);
        let r = &cap.dir_replies[0];
        assert_eq!(r.req_id, 7);
        assert_eq!(r.locations, vec![(10, NodeId(1))]);
    }

    #[test]
    fn query_never_points_the_requester_at_itself() {
        let (mut eng, mgr, cap) = setup();
        eng.post(Dur::ZERO, mgr, dir_update(1, vec![10], vec![]));
        eng.post(Dur::micros(1), mgr, dir_update(2, vec![10], vec![]));
        // Node 1 asks about a block it itself registered: the answer must
        // be the other sharer.
        eng.post(Dur::micros(2), mgr, dir_query(1, 1, vec![10]));
        eng.run();
        let cap = eng.actor_as::<Capture>(cap).unwrap();
        assert_eq!(cap.dir_replies[0].locations, vec![(10, NodeId(2))]);
    }

    #[test]
    fn hint_directory_growth_is_bounded_by_aging() {
        // Hint mode sends adds but never removals: without aging the
        // directory accretes every block ever cached. With aging armed,
        // a long run of distinct-block updates must stay bounded by the
        // age window, not grow with the total block count.
        let (mut eng, mgr, _cap) = setup();
        const AGE: u64 = 64;
        const UPDATES: u64 = 1_000;
        eng.actor_as_mut::<Mgr>(mgr).unwrap().set_hint_aging(AGE);
        for i in 0..UPDATES {
            eng.post(Dur::micros(i), mgr, dir_update(1, vec![i], vec![]));
        }
        eng.run();
        let m = eng.actor_as::<Mgr>(mgr).unwrap();
        // Between sweeps (every AGE generations) at most 2*AGE entries
        // can be live-or-not-yet-swept.
        assert!(
            m.directory_entries() as u64 <= 2 * AGE,
            "hint directory accreted: {} entries after {} updates",
            m.directory_entries(),
            UPDATES
        );
        assert!(m.stats().dir_stale_dropped >= UPDATES - 2 * AGE);
        // Fresh entries survive; aged-out ones are gone.
        assert_eq!(m.directory_sharers(Fid(1), UPDATES - 1), vec![NodeId(1)]);
        assert!(m.directory_sharers(Fid(1), 0).is_empty());
    }

    #[test]
    fn authoritative_directory_never_ages() {
        let (mut eng, mgr, cap) = setup();
        // No set_hint_aging: stamps live forever, removals keep it tight.
        for i in 0..200u64 {
            eng.post(Dur::micros(i), mgr, dir_update(1, vec![i], vec![]));
        }
        eng.post(Dur::micros(200), mgr, dir_query(3, 9, vec![0]));
        eng.run();
        let m = eng.actor_as::<Mgr>(mgr).unwrap();
        assert_eq!(m.directory_entries(), 200);
        assert_eq!(m.stats().dir_stale_dropped, 0);
        let cap = eng.actor_as::<Capture>(cap).unwrap();
        assert_eq!(cap.dir_replies[0].locations, vec![(0, NodeId(1))]);
    }

    #[test]
    fn service_takes_cpu_time() {
        let (mut eng, mgr, _cap) = setup();
        eng.post(Dur::ZERO, mgr, call(1, MgrRequest::Open { name: "x".into() }));
        let report = eng.run();
        let c = CostModel::default();
        let expect = c.recv_overhead + c.mgr_request_overhead + c.send_overhead;
        assert_eq!(report.end_time.since(sim_core::SimTime::ZERO), expect);
    }
}
