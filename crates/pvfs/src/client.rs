//! libpvfs — the client library linked into every application process.
//!
//! `PvfsClient` is *not* an actor: it is a state machine embedded in the
//! owning application actor, exactly as the real libpvfs lives inside the
//! application process. The owner feeds it network deliveries and receives
//! [`Completion`]s.
//!
//! Crucially, the library addresses all iod traffic to an opaque
//! `sock_target` — the node's socket layer. On a plain node that is the
//! fabric; on a caching node it is the cache module, which the library
//! cannot distinguish (the paper's transparency requirement).

use crate::config::CostModel;
use crate::protocol::{
    pattern_bytes, ByteRange, Fid, FileHandle, MgrCall, MgrReply, MgrRequest, ReadAck, ReadData,
    ReadReq, WriteAck, WritePart, WriteReq, MGR_PORT,
};
use crate::striping::split_ranges;
use sim_core::{resource, ActorId, Ctx, Dur, SharedResource, SimTime, Tally};
use sim_disk::BLOCK_SIZE;
use sim_net::{NetMessage, NodeId, Port, Xmit};
use std::collections::HashMap;

/// Static wiring of a client instance.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Node this process runs on.
    pub node: NodeId,
    /// This process's unique reply port.
    pub port: Port,
    /// Node hosting the mgr.
    pub mgr_node: NodeId,
    /// Global iod index → node running that iod.
    pub iod_nodes: Vec<NodeId>,
    /// Outbound socket layer for iod traffic: the fabric, or the node's
    /// cache module when one is installed.
    pub sock_target: ActorId,
    /// The fabric (mgr traffic is never intercepted / cached).
    pub fabric: ActorId,
    /// This node's CPU.
    pub cpu: SharedResource,
    pub costs: CostModel,
    /// Whether this node runs a cache module (propagated in requests so
    /// iods maintain the coherence directory).
    pub caching: bool,
    /// Verify all read data against the deterministic file pattern.
    pub verify_reads: bool,
}

/// What the application gets back when an operation finishes.
#[derive(Debug, Clone)]
pub enum Completion {
    Meta { req_id: u64, handle: FileHandle, at: SimTime },
    MetaErr { req_id: u64, reason: String, at: SimTime },
    Read { req_id: u64, bytes: u64, latency: Dur, at: SimTime },
    Write { req_id: u64, bytes: u64, latency: Dur, at: SimTime },
}

impl Completion {
    /// The instant the operation's CPU work finished; the application
    /// resumes at this time.
    pub fn at(&self) -> SimTime {
        match self {
            Completion::Meta { at, .. }
            | Completion::MetaErr { at, .. }
            | Completion::Read { at, .. }
            | Completion::Write { at, .. } => *at,
        }
    }
}

enum Pending {
    Mgr,
    Read {
        issued: SimTime,
        bytes_remaining: u64,
        acks_remaining: u32,
        total_bytes: u64,
        ready_at: SimTime,
    },
    Write {
        issued: SimTime,
        acks_remaining: u32,
        total_bytes: u64,
        ready_at: SimTime,
    },
}

/// Client-side counters.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub read_latency: Tally,
    pub write_latency: Tally,
    pub verify_failures: u64,
}

/// The libpvfs client state machine.
pub struct PvfsClient {
    cfg: ClientConfig,
    next_req: u64,
    tag: u64,
    handles: HashMap<Fid, FileHandle>,
    pending: HashMap<u64, Pending>,
    stats: ClientStats,
}

impl PvfsClient {
    pub fn new(cfg: ClientConfig) -> PvfsClient {
        PvfsClient {
            cfg,
            next_req: 1,
            tag: 0,
            handles: HashMap::new(),
            pending: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    pub fn handle_of(&self, fid: Fid) -> Option<&FileHandle> {
        self.handles.get(&fid)
    }

    fn fresh_req(&mut self) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        id
    }

    fn xmit(&mut self, ctx: &mut Ctx<'_>, at: SimTime, target: ActorId, m: NetMessage) {
        ctx.schedule_in(at.since(ctx.now()), target, Xmit(m));
    }

    fn mgr_call(&mut self, ctx: &mut Ctx<'_>, req: MgrRequest) -> u64 {
        let req_id = self.fresh_req();
        let now = ctx.now();
        let t = resource::reserve(
            &self.cfg.cpu,
            now,
            self.cfg.costs.client_request_overhead + self.cfg.costs.send_overhead,
        );
        self.tag += 1;
        let call = MgrCall { req_id, reply_to: (self.cfg.node, self.cfg.port), req };
        let m = NetMessage::new(
            (self.cfg.node, self.cfg.port),
            (self.cfg.mgr_node, MGR_PORT),
            crate::protocol::MSG_HEADER_BYTES + 64,
            self.tag,
            call,
        );
        let fabric = self.cfg.fabric;
        self.xmit(ctx, t, fabric, m);
        self.pending.insert(req_id, Pending::Mgr);
        req_id
    }

    /// Create a file of `size` logical bytes.
    pub fn create(&mut self, ctx: &mut Ctx<'_>, name: &str, size: u64) -> u64 {
        self.mgr_call(ctx, MgrRequest::Create { name: name.to_string(), size })
    }

    /// Open an existing file.
    pub fn open(&mut self, ctx: &mut Ctx<'_>, name: &str) -> u64 {
        self.mgr_call(ctx, MgrRequest::Open { name: name.to_string() })
    }

    /// Issue a striped read of `[offset, offset+len)`. One request per iod
    /// holding part of the range, all put on the wire together (libpvfs
    /// aggregation), then completion when every ack and every byte arrived.
    pub fn read(&mut self, ctx: &mut Ctx<'_>, fid: Fid, offset: u64, len: u32) -> u64 {
        let req_id = self.fresh_req();
        let now = ctx.now();
        let handle = self.handles.get(&fid).expect("read on unopened fid").clone();
        let split = split_ranges(&handle.stripe, ByteRange::new(offset, len));
        let involved: Vec<(u32, Vec<ByteRange>)> = split
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(slot, v)| (slot as u32, v))
            .collect();
        let cpu = self.cfg.costs.client_request_overhead
            + Dur::nanos(
                (self.cfg.costs.client_per_iod_overhead + self.cfg.costs.send_overhead).as_nanos()
                    * involved.len() as u64,
            );
        let t = resource::reserve(&self.cfg.cpu, now, cpu);
        let n_iods = involved.len() as u32;
        for (slot, ranges) in involved {
            let iod_node = self.cfg.iod_nodes
                [handle.stripe.global_iod(slot, self.cfg.iod_nodes.len() as u32) as usize];
            let rr = ReadReq {
                req_id,
                fid,
                ranges,
                reply_to: (self.cfg.node, self.cfg.port),
                caching: self.cfg.caching,
            };
            self.tag += 1;
            let wire = rr.wire_bytes();
            let m = NetMessage::new(
                (self.cfg.node, self.cfg.port),
                (iod_node, crate::protocol::IOD_PORT),
                wire,
                self.tag,
                rr,
            );
            let target = self.cfg.sock_target;
            self.xmit(ctx, t, target, m);
        }
        self.stats.reads += 1;
        self.stats.bytes_read += len as u64;
        self.pending.insert(
            req_id,
            Pending::Read {
                issued: now,
                bytes_remaining: len as u64,
                acks_remaining: n_iods,
                total_bytes: len as u64,
                ready_at: t,
            },
        );
        req_id
    }

    /// Issue a striped write of deterministic pattern bytes over
    /// `[offset, offset+len)`. `sync` requests the paper's coherent
    /// sync-write.
    pub fn write(&mut self, ctx: &mut Ctx<'_>, fid: Fid, offset: u64, len: u32, sync: bool) -> u64 {
        let req_id = self.fresh_req();
        let now = ctx.now();
        let handle = self.handles.get(&fid).expect("write on unopened fid").clone();
        let split = split_ranges(&handle.stripe, ByteRange::new(offset, len));
        let involved: Vec<(u32, Vec<ByteRange>)> = split
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(slot, v)| (slot as u32, v))
            .collect();
        // Copy cost: the user buffer crosses into the socket layer once.
        let blocks = (len as u64).div_ceil(BLOCK_SIZE as u64);
        let cpu = self.cfg.costs.client_request_overhead
            + Dur::nanos(self.cfg.costs.client_copy_per_block.as_nanos() * blocks)
            + Dur::nanos(
                (self.cfg.costs.client_per_iod_overhead + self.cfg.costs.send_overhead).as_nanos()
                    * involved.len() as u64,
            );
        let t = resource::reserve(&self.cfg.cpu, now, cpu);
        let n_iods = involved.len() as u32;
        for (slot, ranges) in involved {
            let iod_node = self.cfg.iod_nodes
                [handle.stripe.global_iod(slot, self.cfg.iod_nodes.len() as u32) as usize];
            let parts: Vec<WritePart> = ranges
                .into_iter()
                .map(|r| WritePart { range: r, data: pattern_bytes(fid, r.offset, r.len as usize) })
                .collect();
            let wr = WriteReq {
                req_id,
                fid,
                parts,
                reply_to: (self.cfg.node, self.cfg.port),
                caching: self.cfg.caching,
                sync,
            };
            self.tag += 1;
            let wire = wr.wire_bytes();
            let m = NetMessage::new(
                (self.cfg.node, self.cfg.port),
                (iod_node, crate::protocol::IOD_PORT),
                wire,
                self.tag,
                wr,
            );
            let target = self.cfg.sock_target;
            self.xmit(ctx, t, target, m);
        }
        self.stats.writes += 1;
        self.stats.bytes_written += len as u64;
        self.pending.insert(
            req_id,
            Pending::Write {
                issued: now,
                acks_remaining: n_iods,
                total_bytes: len as u64,
                ready_at: t,
            },
        );
        req_id
    }

    /// Feed one delivered network message to the library. Returns a
    /// completion when an outstanding operation finishes.
    pub fn on_deliver(&mut self, ctx: &mut Ctx<'_>, msg: NetMessage) -> Option<Completion> {
        let msg = match msg.cast::<MgrReply>() {
            Ok((_, reply)) => {
                return match *reply {
                    MgrReply::Ok { req_id, handle } => {
                        self.pending.remove(&req_id);
                        self.handles.insert(handle.fid, handle.clone());
                        let t = resource::reserve(
                            &self.cfg.cpu,
                            ctx.now(),
                            self.cfg.costs.recv_overhead,
                        );
                        Some(Completion::Meta { req_id, handle, at: t })
                    }
                    MgrReply::Err { req_id, reason } => {
                        self.pending.remove(&req_id);
                        Some(Completion::MetaErr { req_id, reason, at: ctx.now() })
                    }
                };
            }
            Err(m) => m,
        };
        let msg = match msg.cast::<ReadAck>() {
            Ok((_, ack)) => {
                let t = resource::reserve(&self.cfg.cpu, ctx.now(), self.cfg.costs.recv_overhead);
                return self.note_read_progress(ack.req_id, 0, t);
            }
            Err(m) => m,
        };
        let msg = match msg.cast::<ReadData>() {
            Ok((_, rd)) => {
                let blocks = (rd.range.len as u64).div_ceil(BLOCK_SIZE as u64);
                let cpu = self.cfg.costs.recv_overhead
                    + Dur::nanos(self.cfg.costs.client_copy_per_block.as_nanos() * blocks);
                let t = resource::reserve(&self.cfg.cpu, ctx.now(), cpu);
                if self.cfg.verify_reads {
                    let expect = pattern_bytes(rd.fid, rd.range.offset, rd.range.len as usize);
                    if rd.data != expect {
                        self.stats.verify_failures += 1;
                    }
                }
                return self.note_read_progress(rd.req_id, rd.range.len as u64, t);
            }
            Err(m) => m,
        };
        match msg.cast::<WriteAck>() {
            Ok((_, ack)) => {
                let t = resource::reserve(&self.cfg.cpu, ctx.now(), self.cfg.costs.recv_overhead);
                let done = {
                    let Some(Pending::Write { acks_remaining, ready_at, .. }) =
                        self.pending.get_mut(&ack.req_id)
                    else {
                        return None;
                    };
                    *acks_remaining -= 1;
                    *ready_at = (*ready_at).max(t);
                    *acks_remaining == 0
                };
                if done {
                    let Some(Pending::Write { issued, total_bytes, ready_at, .. }) =
                        self.pending.remove(&ack.req_id)
                    else {
                        unreachable!()
                    };
                    let latency = ready_at.since(issued);
                    self.stats.write_latency.record_dur(latency);
                    return Some(Completion::Write {
                        req_id: ack.req_id,
                        bytes: total_bytes,
                        latency,
                        at: ready_at,
                    });
                }
                None
            }
            Err(m) => panic!("libpvfs received unknown payload: {:?}", m),
        }
    }

    fn note_read_progress(&mut self, req_id: u64, bytes: u64, t: SimTime) -> Option<Completion> {
        let done = {
            let Some(Pending::Read { bytes_remaining, acks_remaining, ready_at, .. }) =
                self.pending.get_mut(&req_id)
            else {
                return None;
            };
            if bytes == 0 {
                debug_assert!(*acks_remaining > 0, "duplicate ack for {}", req_id);
                *acks_remaining -= 1;
            } else {
                debug_assert!(*bytes_remaining >= bytes, "over-delivery on {}", req_id);
                *bytes_remaining -= bytes;
            }
            *ready_at = (*ready_at).max(t);
            *bytes_remaining == 0 && *acks_remaining == 0
        };
        if done {
            let Some(Pending::Read { issued, total_bytes, ready_at, .. }) =
                self.pending.remove(&req_id)
            else {
                unreachable!()
            };
            let latency = ready_at.since(issued);
            self.stats.read_latency.record_dur(latency);
            return Some(Completion::Read { req_id, bytes: total_bytes, latency, at: ready_at });
        }
        None
    }
}
