//! Striping arithmetic: how a logical file spreads across iods.
//!
//! PVFS stripes files round-robin in fixed `unit`-byte stripes over `n`
//! iods starting at a base iod. The client library uses [`split_ranges`] to
//! turn one application request into per-iod range lists — the paper's
//! "libpvfs read protocol aggregates all the reads to each iod".

use crate::protocol::{ByteRange, StripeSpec};

impl StripeSpec {
    /// Which iod (0-based slot within the file's iod set) owns this byte.
    #[inline]
    pub fn iod_of(&self, offset: u64) -> u32 {
        ((offset / self.unit as u64) % self.n_iods as u64) as u32
    }

    /// Bytes remaining in the stripe unit containing `offset`.
    #[inline]
    pub fn left_in_unit(&self, offset: u64) -> u64 {
        self.unit as u64 - (offset % self.unit as u64)
    }

    /// Global iod index for slot `k` of this file.
    #[inline]
    pub fn global_iod(&self, slot: u32, total_iods: u32) -> u32 {
        (self.base + slot) % total_iods
    }
}

/// Split a logical byte range into per-iod-slot range lists. Returned as a
/// dense vector indexed by iod slot; empty lists for slots the range misses.
/// Consecutive stripe units on the same iod are *not* merged (they are not
/// contiguous in the file), but each returned range is contiguous both
/// logically and on its iod.
pub fn split_ranges(stripe: &StripeSpec, range: ByteRange) -> Vec<Vec<ByteRange>> {
    let mut per_iod: Vec<Vec<ByteRange>> = vec![Vec::new(); stripe.n_iods as usize];
    if range.is_empty() {
        return per_iod;
    }
    let mut off = range.offset;
    let mut left = range.len as u64;
    while left > 0 {
        let chunk = stripe.left_in_unit(off).min(left) as u32;
        let slot = stripe.iod_of(off) as usize;
        per_iod[slot].push(ByteRange::new(off, chunk));
        off += chunk as u64;
        left -= chunk as u64;
    }
    per_iod
}

/// Reassembly check: do the per-iod lists exactly tile the original range?
pub fn tiles_exactly(stripe: &StripeSpec, range: ByteRange, split: &[Vec<ByteRange>]) -> bool {
    let mut pieces: Vec<ByteRange> = split.iter().flatten().copied().collect();
    pieces.sort_by_key(|r| r.offset);
    let mut cursor = range.offset;
    for p in &pieces {
        if p.offset != cursor {
            return false;
        }
        cursor = p.end();
    }
    cursor == range.end()
        && split
            .iter()
            .enumerate()
            .all(|(slot, rs)| rs.iter().all(|r| stripe.iod_of(r.offset) as usize == slot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(unit: u32, n: u32) -> StripeSpec {
        StripeSpec { unit, n_iods: n, base: 0 }
    }

    #[test]
    fn small_request_hits_one_iod() {
        let s = spec(65536, 4);
        let split = split_ranges(&s, ByteRange::new(1000, 4096));
        assert_eq!(split[0], vec![ByteRange::new(1000, 4096)]);
        assert!(split[1..].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn request_spanning_units_splits_at_boundaries() {
        let s = spec(65536, 4);
        let split = split_ranges(&s, ByteRange::new(65536 - 100, 200));
        assert_eq!(split[0], vec![ByteRange::new(65436, 100)]);
        assert_eq!(split[1], vec![ByteRange::new(65536, 100)]);
    }

    #[test]
    fn wraps_around_all_iods() {
        let s = spec(65536, 3);
        // Four units: iods 0,1,2,0.
        let split = split_ranges(&s, ByteRange::new(0, 4 * 65536));
        assert_eq!(split[0], vec![ByteRange::new(0, 65536), ByteRange::new(3 * 65536, 65536)]);
        assert_eq!(split[1], vec![ByteRange::new(65536, 65536)]);
        assert_eq!(split[2], vec![ByteRange::new(2 * 65536, 65536)]);
        assert!(tiles_exactly(&s, ByteRange::new(0, 4 * 65536), &split));
    }

    #[test]
    fn empty_range_splits_empty() {
        let s = spec(65536, 2);
        let split = split_ranges(&s, ByteRange::new(1234, 0));
        assert!(split.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn iod_of_cycles() {
        let s = spec(65536, 4);
        assert_eq!(s.iod_of(0), 0);
        assert_eq!(s.iod_of(65536), 1);
        assert_eq!(s.iod_of(4 * 65536), 0);
        assert_eq!(s.left_in_unit(0), 65536);
        assert_eq!(s.left_in_unit(65535), 1);
    }

    #[test]
    fn global_iod_applies_base() {
        let s = StripeSpec { unit: 65536, n_iods: 4, base: 2 };
        assert_eq!(s.global_iod(0, 6), 2);
        assert_eq!(s.global_iod(3, 6), 5);
        let s2 = StripeSpec { unit: 65536, n_iods: 4, base: 4 };
        assert_eq!(s2.global_iod(3, 6), 1, "wraps modulo total");
    }

    #[test]
    fn tiles_exactly_rejects_gaps_and_misrouting() {
        let s = spec(65536, 2);
        let r = ByteRange::new(0, 2 * 65536);
        let mut split = split_ranges(&s, r);
        assert!(tiles_exactly(&s, r, &split));
        // Introduce a gap.
        split[0][0].len -= 1;
        assert!(!tiles_exactly(&s, r, &split));
        // Misroute a range to the wrong iod.
        let mut bad = split_ranges(&s, r);
        let moved = bad[0].remove(0);
        bad[1].push(moved);
        assert!(!tiles_exactly(&s, r, &bad));
    }

    #[test]
    fn unaligned_offsets_and_sizes_tile() {
        let s = spec(65536, 5);
        for (off, len) in [(1u64, 1u32), (65535, 2), (123_456, 777_777), (9_999, 65_536 * 7 + 13)] {
            let r = ByteRange::new(off, len);
            let split = split_ranges(&s, r);
            assert!(tiles_exactly(&s, r, &split), "({}, {}) failed to tile", off, len);
        }
    }
}
