//! Calibrated software-path costs.
//!
//! All CPU charges live here so the whole reproduction is calibrated in one
//! place. The anchor measurements come from the paper's platform (800 MHz
//! Pentium-III, Linux 2.4): the paper reports the cache module's extra work
//! on a socket call at **under 400 µs per 4 KB block**, and the figure
//! levels imply a millisecond-scale fixed cost per libpvfs call.

use sim_core::Dur;

/// Per-operation CPU costs charged to node CPUs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Sender-side cost of one socket send (syscall + TCP/IP stack).
    pub send_overhead: Dur,
    /// Receiver-side cost of one socket receive.
    pub recv_overhead: Dur,
    /// Fixed libpvfs cost per application-level call (request setup,
    /// partitioning, bookkeeping).
    pub client_request_overhead: Dur,
    /// Additional libpvfs cost per iod contacted in one call.
    pub client_per_iod_overhead: Dur,
    /// Client-side copy of arriving data to the user buffer, per 4 KB.
    pub client_copy_per_block: Dur,
    /// iod cost to parse and set up one request.
    pub iod_request_overhead: Dur,
    /// iod copy cost per 4 KB moved between page cache and socket.
    pub iod_copy_per_block: Dur,
    /// mgr cost per metadata request.
    pub mgr_request_overhead: Dur,
    /// Cache module: hash lookup per block (paid hit or miss).
    pub cache_lookup_per_block: Dur,
    /// Cache module: copy of one cached 4 KB block to/from user space.
    /// lookup + copy is the paper's "< 400 us per 4 KB block".
    pub cache_copy_per_block: Dur,
    /// Cache module: insert/bookkeeping per block on the miss path.
    pub cache_insert_per_block: Dur,
    /// Cache module: fixed FSM cost per intercepted socket call.
    pub cache_call_overhead: Dur,
}

impl CostModel {
    /// Values for the paper's 800 MHz P-III / Linux 2.4 platform.
    pub fn pentium3_800() -> CostModel {
        CostModel {
            send_overhead: Dur::micros(150),
            recv_overhead: Dur::micros(150),
            client_request_overhead: Dur::micros(900),
            client_per_iod_overhead: Dur::micros(200),
            client_copy_per_block: Dur::micros(40),
            iod_request_overhead: Dur::micros(400),
            iod_copy_per_block: Dur::micros(40),
            mgr_request_overhead: Dur::micros(200),
            cache_lookup_per_block: Dur::micros(30),
            cache_copy_per_block: Dur::micros(320),
            cache_insert_per_block: Dur::micros(40),
            cache_call_overhead: Dur::micros(25),
        }
    }

    /// The paper's headline number: full cache service cost of one 4 KB
    /// block on a socket call (lookup + copy). Must stay under 400 µs.
    pub fn cache_block_service(&self) -> Dur {
        self.cache_lookup_per_block + self.cache_copy_per_block
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::pentium3_800()
    }
}

/// PVFS deployment constants.
#[derive(Debug, Clone)]
pub struct PvfsConfig {
    /// Stripe unit in bytes (PVFS default 64 KB).
    pub stripe_unit: u32,
    /// iod page cache capacity, in 4 KB pages (server-side OS cache).
    pub iod_page_cache_pages: usize,
    /// kupdate-style dirty write-back period on iod nodes.
    pub iod_flush_interval: Dur,
    /// Max dirty pages written back per kupdate tick.
    pub iod_flush_batch: usize,
}

impl Default for PvfsConfig {
    fn default() -> Self {
        PvfsConfig {
            stripe_unit: 64 * 1024,
            iod_page_cache_pages: 8192, // 32 MB of the node's 128 MB
            iod_flush_interval: Dur::secs(5),
            iod_flush_batch: 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_service_under_papers_bound() {
        let c = CostModel::pentium3_800();
        assert!(
            c.cache_block_service() < Dur::micros(400),
            "cache block service {} exceeds the paper's 400us bound",
            c.cache_block_service()
        );
    }

    #[test]
    fn defaults_are_sane() {
        let p = PvfsConfig::default();
        assert_eq!(p.stripe_unit, 65536);
        assert!(p.iod_page_cache_pages * 4096 <= 64 * 1024 * 1024, "page cache fits in node RAM");
        assert!(p.iod_flush_interval > Dur::ZERO);
    }
}
