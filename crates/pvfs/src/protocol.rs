//! The PVFS wire protocol, as exercised by the paper.
//!
//! libpvfs speaks three conversations over sockets:
//! * client ↔ mgr — metadata (create/open/stat); never cached (§3.2),
//! * client ↔ iod — striped reads and writes (request, ack, data),
//! * flusher ↔ iod — background write-back of dirty cache blocks to a
//!   *separate* listener port on the iod (§3.2, "server version of this
//!   flusher thread").
//!
//! All messages carry explicit byte ranges in *logical file* coordinates;
//! each iod owns a deterministic subset of any file's bytes (see
//! [`crate::striping`]) and maps them to its local store. The cache module
//! rewrites the range lists in flight — that is precisely the paper's
//! "discount these [cached blocks] in the request(s)" mechanism.

use bytes::Bytes;
use kcache_obs::FlowId;
use sim_net::{NodeId, Port};

/// Well-known ports.
pub const MGR_PORT: Port = Port(3000);
pub const IOD_PORT: Port = Port(7000);
/// The iod's separate flush listener socket.
pub const IOD_FLUSH_PORT: Port = Port(7001);
/// The per-node cache module's control port (invalidations arrive here).
pub const CACHE_PORT: Port = Port(7100);
/// Client processes get `CLIENT_PORT_BASE + k` reply ports.
pub const CLIENT_PORT_BASE: u16 = 9000;

/// Fixed per-message protocol header cost (request ids, fid, counts, TCP
/// framing the real implementation pays per send).
pub const MSG_HEADER_BYTES: u32 = 64;
/// Wire cost of one encoded byte range.
pub const RANGE_ENCODING_BYTES: u32 = 12;

/// PVFS file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fid(pub u64);

/// A contiguous byte range of a logical file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    pub offset: u64,
    pub len: u32,
}

impl ByteRange {
    pub fn new(offset: u64, len: u32) -> ByteRange {
        ByteRange { offset, len }
    }

    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Total bytes covered by a range list.
pub fn ranges_bytes(ranges: &[ByteRange]) -> u64 {
    ranges.iter().map(|r| r.len as u64).sum()
}

/// Wire size of a range list encoding.
pub fn ranges_encoding_bytes(ranges: &[ByteRange]) -> u32 {
    ranges.len() as u32 * RANGE_ENCODING_BYTES
}

// ---------------------------------------------------------------------------
// Metadata conversation (client <-> mgr)
// ---------------------------------------------------------------------------

/// Striping descriptor handed out by the mgr at open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSpec {
    /// Stripe unit in bytes (PVFS default 64 KB).
    pub unit: u32,
    /// Number of iods the file is striped across.
    pub n_iods: u32,
    /// Index of the iod holding stripe 0.
    pub base: u32,
}

#[derive(Debug, Clone)]
pub enum MgrRequest {
    /// Create a file with the given logical size (the micro-benchmark
    /// pre-sizes its files) striped per the mgr's policy.
    Create {
        name: String,
        size: u64,
    },
    Open {
        name: String,
    },
}

#[derive(Debug, Clone)]
pub struct FileHandle {
    pub fid: Fid,
    pub size: u64,
    pub stripe: StripeSpec,
}

#[derive(Debug, Clone)]
pub enum MgrReply {
    Ok { req_id: u64, handle: FileHandle },
    Err { req_id: u64, reason: String },
}

/// Envelope for mgr requests (carries the reply address).
#[derive(Debug, Clone)]
pub struct MgrCall {
    pub req_id: u64,
    pub reply_to: (NodeId, Port),
    pub req: MgrRequest,
}

// ---------------------------------------------------------------------------
// Data conversation (client <-> iod)
// ---------------------------------------------------------------------------

/// Read request to one iod: the listed logical ranges (all owned by that
/// iod under the file's striping).
#[derive(Debug, Clone)]
pub struct ReadReq {
    pub req_id: u64,
    pub fid: Fid,
    pub ranges: Vec<ByteRange>,
    pub reply_to: (NodeId, Port),
    /// Set when the sending node runs a cache module; the iod then tracks
    /// this node in the block directory for sync-write invalidations.
    pub caching: bool,
}

impl ReadReq {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + ranges_encoding_bytes(&self.ranges)
    }
}

/// The iod's acknowledgment that a read request was accepted. libpvfs
/// blocks on this before collecting data messages; the cache module fakes
/// it locally for fully-cached requests.
#[derive(Debug, Clone, Copy)]
pub struct ReadAck {
    pub req_id: u64,
    /// Bytes the iod will send for this request.
    pub bytes: u64,
}

impl ReadAck {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
    }
}

/// One data message, covering a contiguous logical range.
#[derive(Debug, Clone)]
pub struct ReadData {
    pub req_id: u64,
    pub fid: Fid,
    pub range: ByteRange,
    pub data: Bytes,
}

impl ReadData {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + self.range.len
    }
}

/// One contiguous piece of a write (range + its bytes).
#[derive(Debug, Clone)]
pub struct WritePart {
    pub range: ByteRange,
    pub data: Bytes,
}

/// Write request to one iod. Like reads, writes are aggregated: one request
/// carries every piece of the application write owned by this iod (data
/// travels with the request).
#[derive(Debug, Clone)]
pub struct WriteReq {
    pub req_id: u64,
    pub fid: Fid,
    pub parts: Vec<WritePart>,
    pub reply_to: (NodeId, Port),
    pub caching: bool,
    /// Sync-writes propagate through to the iod and trigger invalidation of
    /// every other node's cached copies (§3.2 coherence).
    pub sync: bool,
}

impl WriteReq {
    pub fn total_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.range.len as u64).sum()
    }

    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
            + self.parts.iter().map(|p| RANGE_ENCODING_BYTES + p.range.len).sum::<u32>()
    }
}

/// Write completion from the iod.
#[derive(Debug, Clone, Copy)]
pub struct WriteAck {
    pub req_id: u64,
    pub bytes: u64,
}

impl WriteAck {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
    }
}

// ---------------------------------------------------------------------------
// Flush conversation (cache-module flusher <-> iod flush listener)
// ---------------------------------------------------------------------------

/// One dirty span pushed by a flusher: `data` lands at
/// `blk * 4096 + offset`. Sub-block spans matter: flushing a whole block
/// around a 1 KB write would clobber bytes the client never wrote.
#[derive(Debug, Clone)]
pub struct FlushEntry {
    pub blk: u64,
    pub offset: u32,
    pub data: Bytes,
}

/// A batch of dirty block spans pushed by a node's flusher thread.
#[derive(Debug, Clone)]
pub struct FlushBlocks {
    pub req_id: u64,
    pub fid: Fid,
    pub blocks: Vec<FlushEntry>,
    pub reply_to: (NodeId, Port),
}

impl FlushBlocks {
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|e| e.data.len() as u64).sum()
    }

    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + self.blocks.iter().map(|e| 12 + e.data.len() as u32).sum::<u32>()
    }
}

#[derive(Debug, Clone, Copy)]
pub struct FlushAck {
    pub req_id: u64,
}

impl FlushAck {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
    }
}

// ---------------------------------------------------------------------------
// Coherence conversation (iod <-> cache modules)
// ---------------------------------------------------------------------------

/// Invalidate cached copies of the listed logical blocks (sent by an iod
/// while processing a sync-write).
#[derive(Debug, Clone)]
pub struct Invalidate {
    pub req_id: u64,
    pub fid: Fid,
    pub blocks: Vec<u64>,
    pub reply_to: (NodeId, Port),
}

impl Invalidate {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + self.blocks.len() as u32 * 8
    }
}

#[derive(Debug, Clone, Copy)]
pub struct InvalidateAck {
    pub req_id: u64,
}

impl InvalidateAck {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
    }
}

// ---------------------------------------------------------------------------
// Cooperative-caching conversation (cache modules <-> mgr, module <-> module)
// ---------------------------------------------------------------------------

/// Residency delta pushed by a node's cache module to the mgr's block
/// location directory: `added` blocks are now resident on `node`, `removed`
/// blocks are not. Fire-and-forget (no ack): the directory is advisory and
/// a lost update only costs a misdirected peer fetch that falls through to
/// disk.
#[derive(Debug, Clone)]
pub struct BlockDirUpdate {
    pub fid: Fid,
    pub node: NodeId,
    pub added: Vec<u64>,
    pub removed: Vec<u64>,
}

impl BlockDirUpdate {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + (self.added.len() + self.removed.len()) as u32 * 8
    }
}

/// Ask the mgr which peer (if any) caches each of the listed blocks.
#[derive(Debug, Clone)]
pub struct BlockDirQuery {
    pub req_id: u64,
    pub fid: Fid,
    pub blocks: Vec<u64>,
    pub reply_to: (NodeId, Port),
    /// Trace-correlation id ([`kcache_obs::FlowId`]) minted by the
    /// requester; rides the whole cooperative conversation so the
    /// requester's miss, the mgr's directory lookup, and the peer's
    /// serve stitch into one flow in the exported trace. Zero when
    /// tracing is off.
    pub flow: FlowId,
}

impl BlockDirQuery {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + 8 + self.blocks.len() as u32 * 8
    }
}

/// The mgr's answer: per queried block, a peer node believed to cache it
/// (the requester itself is never named). Blocks with no known sharer are
/// omitted — the module fetches those from the iods.
#[derive(Debug, Clone)]
pub struct BlockDirReply {
    pub req_id: u64,
    pub fid: Fid,
    pub locations: Vec<(u64, NodeId)>,
}

impl BlockDirReply {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + self.locations.len() as u32 * 10
    }
}

/// Fetch whole cached blocks from a peer node's cache module.
#[derive(Debug, Clone)]
pub struct PeerReadReq {
    pub req_id: u64,
    pub fid: Fid,
    pub blocks: Vec<u64>,
    pub reply_to: (NodeId, Port),
    /// Same correlation id the requester stamped on its
    /// [`BlockDirQuery`] — see that field's docs.
    pub flow: FlowId,
}

impl PeerReadReq {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES + 8 + self.blocks.len() as u32 * 8
    }
}

/// The peer's answer: full 4 KB images for the blocks it still caches,
/// and the list it no longer holds (the requester falls back to the iods
/// for those — a stale directory entry costs latency, never correctness).
#[derive(Debug, Clone)]
pub struct PeerReadReply {
    pub req_id: u64,
    pub fid: Fid,
    pub hits: Vec<(u64, Bytes)>,
    pub misses: Vec<u64>,
}

impl PeerReadReply {
    pub fn wire_bytes(&self) -> u32 {
        MSG_HEADER_BYTES
            + self.hits.iter().map(|(_, d)| 12 + d.len() as u32).sum::<u32>()
            + self.misses.len() as u32 * 8
    }
}

// ---------------------------------------------------------------------------
// Deterministic file content
// ---------------------------------------------------------------------------

/// The byte every file holds at every offset, by construction. Workload
/// setup preloads files with this pattern and clients can verify every byte
/// that travels through cache, network and disk.
#[inline]
pub fn pattern_byte(fid: Fid, offset: u64) -> u8 {
    (fid.0.wrapping_mul(151).wrapping_add(offset) % 251) as u8
}

/// Materialize `len` pattern bytes of `fid` starting at `offset`.
pub fn pattern_bytes(fid: Fid, offset: u64, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    for i in 0..len as u64 {
        v.push(pattern_byte(fid, offset + i));
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_range_accessors() {
        let r = ByteRange::new(100, 50);
        assert_eq!(r.end(), 150);
        assert!(!r.is_empty());
        assert!(ByteRange::new(0, 0).is_empty());
    }

    #[test]
    fn range_list_sizes() {
        let rs = vec![ByteRange::new(0, 10), ByteRange::new(20, 30)];
        assert_eq!(ranges_bytes(&rs), 40);
        assert_eq!(ranges_encoding_bytes(&rs), 24);
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let rr = ReadReq {
            req_id: 1,
            fid: Fid(1),
            ranges: vec![ByteRange::new(0, 4096)],
            reply_to: (NodeId(0), Port(9000)),
            caching: false,
        };
        assert_eq!(rr.wire_bytes(), 64 + 12);
        let rd = ReadData {
            req_id: 1,
            fid: Fid(1),
            range: ByteRange::new(0, 4096),
            data: Bytes::from(vec![0u8; 4096]),
        };
        assert_eq!(rd.wire_bytes(), 64 + 4096);
        let wr = WriteReq {
            req_id: 1,
            fid: Fid(1),
            parts: vec![
                WritePart { range: ByteRange::new(0, 100), data: Bytes::from(vec![0u8; 100]) },
                WritePart { range: ByteRange::new(500, 20), data: Bytes::from(vec![0u8; 20]) },
            ],
            reply_to: (NodeId(0), Port(9000)),
            caching: false,
            sync: false,
        };
        assert_eq!(wr.wire_bytes(), 64 + 12 + 100 + 12 + 20);
        assert_eq!(wr.total_bytes(), 120);
        let fl = FlushBlocks {
            req_id: 1,
            fid: Fid(1),
            blocks: vec![
                FlushEntry { blk: 0, offset: 0, data: Bytes::from(vec![0u8; 4096]) },
                FlushEntry { blk: 7, offset: 100, data: Bytes::from(vec![1u8; 500]) },
            ],
            reply_to: (NodeId(0), Port(7100)),
        };
        assert_eq!(fl.wire_bytes(), 64 + (12 + 4096) + (12 + 500));
        assert_eq!(fl.total_bytes(), 4596);
        let inv = Invalidate {
            req_id: 1,
            fid: Fid(1),
            blocks: vec![1, 2, 3],
            reply_to: (NodeId(1), Port(7000)),
        };
        assert_eq!(inv.wire_bytes(), 64 + 24);
    }

    #[test]
    fn cooperative_wire_sizes_scale_with_content() {
        let up =
            BlockDirUpdate { fid: Fid(1), node: NodeId(2), added: vec![1, 2], removed: vec![3] };
        assert_eq!(up.wire_bytes(), 64 + 24);
        let q = BlockDirQuery {
            req_id: 1,
            fid: Fid(1),
            blocks: vec![1, 2, 3, 4],
            reply_to: (NodeId(0), Port(7100)),
            flow: FlowId::NONE,
        };
        assert_eq!(q.wire_bytes(), 64 + 8 + 32, "header + flow id + blocks");
        let r = BlockDirReply { req_id: 1, fid: Fid(1), locations: vec![(1, NodeId(3))] };
        assert_eq!(r.wire_bytes(), 64 + 10);
        let pr = PeerReadReq {
            req_id: 1,
            fid: Fid(1),
            blocks: vec![5],
            reply_to: (NodeId(0), Port(7100)),
            flow: FlowId::NONE,
        };
        assert_eq!(pr.wire_bytes(), 64 + 8 + 8, "header + flow id + blocks");
        let rep = PeerReadReply {
            req_id: 1,
            fid: Fid(1),
            hits: vec![(5, Bytes::from(vec![0u8; 4096]))],
            misses: vec![6, 7],
        };
        assert_eq!(rep.wire_bytes(), 64 + 12 + 4096 + 16);
    }
}
