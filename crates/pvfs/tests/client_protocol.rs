//! Protocol-level tests of the libpvfs client state machine against a
//! scripted fake network: ack/data ordering, striping fan-out, completion
//! conditions, and latency accounting.

use pvfs::{
    ByteRange, ClientConfig, Completion, CostModel, Fid, FileHandle, MgrReply, PvfsClient, ReadAck,
    ReadData, ReadReq, StripeSpec, WriteAck, WriteReq, CLIENT_PORT_BASE,
};
use sim_core::{Actor, ActorId, Ctx, Dur, Engine, FifoResource, Msg};
use sim_net::{Deliver, NetMessage, NodeId, Port, Xmit};
use std::any::Any;

/// Captures what the client puts on the wire.
struct WireTap {
    sent: Vec<NetMessage>,
}
impl Actor for WireTap {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        if let Ok(x) = msg.cast::<Xmit>() {
            self.sent.push(x.0);
        }
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

/// Returns the moved-out client to the host after a `with_client` turn.
struct GiveBack(PvfsClient);

/// Harness actor embedding the client, recording completions.
struct Host {
    client: PvfsClient,
    completions: Vec<Completion>,
}
impl Actor for Host {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.cast::<Deliver>() {
            Ok(d) => {
                if let Some(c) = self.client.on_deliver(ctx, d.0) {
                    self.completions.push(c);
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(g) = msg.cast::<GiveBack>() {
            self.client = g.0;
        }
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

struct Rig {
    eng: Engine,
    tap: ActorId,
    host: ActorId,
}

fn rig() -> Rig {
    let mut eng = Engine::new(0);
    let tap = eng.add_actor(Box::new(WireTap { sent: vec![] }));
    let cfg = ClientConfig {
        node: NodeId(1),
        port: Port(CLIENT_PORT_BASE),
        mgr_node: NodeId(0),
        iod_nodes: (0..4).map(NodeId).collect(),
        sock_target: tap,
        fabric: tap,
        cpu: FifoResource::shared("cpu"),
        costs: CostModel::default(),
        caching: false,
        verify_reads: false,
    };
    let host = eng.add_actor(Box::new(Host { client: PvfsClient::new(cfg), completions: vec![] }));
    Rig { eng, tap, host }
}

fn handle(fid: u64, size: u64, n_iods: u32) -> FileHandle {
    FileHandle { fid: Fid(fid), size, stripe: StripeSpec { unit: 65536, n_iods, base: 0 } }
}

/// Inject a handle as if the mgr replied to an open.
fn install_handle(rig: &mut Rig, h: FileHandle) {
    let reply = MgrReply::Ok { req_id: 0, handle: h };
    let m =
        NetMessage::new((NodeId(0), Port(3000)), (NodeId(1), Port(CLIENT_PORT_BASE)), 64, 0, reply);
    rig.eng.post(Dur::ZERO, rig.host, Deliver(m));
    rig.eng.run();
}

/// Drive `f` with mutable access to the embedded client inside an engine
/// turn (so a real `Ctx` is available): the client is moved into a shim
/// actor for one turn and handed back to the host afterwards.
fn with_client(rig: &mut Rig, f: impl FnOnce(&mut PvfsClient, &mut Ctx<'_>) + 'static) {
    type ClientClosure = Box<dyn FnOnce(&mut PvfsClient, &mut Ctx<'_>)>;
    struct Shim {
        f: Option<ClientClosure>,
        client: Option<PvfsClient>,
        host: ActorId,
    }
    struct Go;
    impl Actor for Shim {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if msg.is::<Go>() {
                let mut client = self.client.take().expect("client present");
                (self.f.take().expect("closure present"))(&mut client, ctx);
                ctx.send(self.host, GiveBack(client));
            }
        }
    }
    let placeholder = PvfsClient::new(ClientConfig {
        node: NodeId(9),
        port: Port(60000),
        mgr_node: NodeId(0),
        iod_nodes: vec![NodeId(0)],
        sock_target: rig.tap,
        fabric: rig.tap,
        cpu: FifoResource::shared("tmp"),
        costs: CostModel::default(),
        caching: false,
        verify_reads: false,
    });
    let client = {
        let h = rig.eng.actor_as_mut::<Host>(rig.host).expect("host");
        std::mem::replace(&mut h.client, placeholder)
    };
    let host = rig.host;
    let shim =
        rig.eng.add_actor(Box::new(Shim { f: Some(Box::new(f)), client: Some(client), host }));
    rig.eng.post(Dur::ZERO, shim, Go);
    rig.eng.run();
}

#[test]
fn open_completion_registers_handle() {
    let mut rig = rig();
    install_handle(&mut rig, handle(5, 1 << 20, 2));
    let h = rig.eng.actor_as::<Host>(rig.host).unwrap();
    assert_eq!(h.completions.len(), 1);
    assert!(matches!(h.completions[0], Completion::Meta { .. }));
    assert!(h.client.handle_of(Fid(5)).is_some());
}

#[test]
fn mgr_error_reported() {
    let mut rig = rig();
    let reply = MgrReply::Err { req_id: 1, reason: "no such file".into() };
    let m =
        NetMessage::new((NodeId(0), Port(3000)), (NodeId(1), Port(CLIENT_PORT_BASE)), 64, 0, reply);
    rig.eng.post(Dur::ZERO, rig.host, Deliver(m));
    rig.eng.run();
    let h = rig.eng.actor_as::<Host>(rig.host).unwrap();
    assert!(
        matches!(&h.completions[0], Completion::MetaErr { reason, .. } if reason.contains("no such"))
    );
}

#[test]
fn read_fans_out_one_request_per_involved_iod() {
    let mut rig = rig();
    install_handle(&mut rig, handle(5, 16 << 20, 4));
    with_client(&mut rig, |client, ctx| {
        // 256 KB spans 4 stripe units => all 4 iods involved.
        client.read(ctx, Fid(5), 0, 256 << 10);
    });
    let tap = rig.eng.actor_as::<WireTap>(rig.tap).unwrap();
    let reads: Vec<&NetMessage> =
        tap.sent.iter().filter(|m| m.peek::<ReadReq>().is_some()).collect();
    assert_eq!(reads.len(), 4, "one aggregated request per iod");
    let dsts: std::collections::BTreeSet<u16> = reads.iter().map(|m| m.dst.0).collect();
    assert_eq!(dsts.len(), 4, "requests target distinct iods");
    let total: u64 = reads
        .iter()
        .map(|m| {
            let rr = m.peek::<ReadReq>().unwrap();
            rr.ranges.iter().map(|r| r.len as u64).sum::<u64>()
        })
        .sum();
    assert_eq!(total, 256 << 10, "ranges tile the request");
}

#[test]
fn small_read_contacts_single_iod() {
    let mut rig = rig();
    install_handle(&mut rig, handle(5, 16 << 20, 4));
    with_client(&mut rig, |client, ctx| {
        client.read(ctx, Fid(5), 1000, 4096);
    });
    let tap = rig.eng.actor_as::<WireTap>(rig.tap).unwrap();
    let reads: Vec<_> = tap.sent.iter().filter(|m| m.peek::<ReadReq>().is_some()).collect();
    assert_eq!(reads.len(), 1);
}

#[test]
fn read_completes_only_after_all_acks_and_all_bytes() {
    let mut rig = rig();
    install_handle(&mut rig, handle(5, 16 << 20, 2));
    with_client(&mut rig, |client, ctx| {
        // 128 KB = 2 stripe units on 2 iods.
        client.read(ctx, Fid(5), 0, 128 << 10);
    });
    // Find the two requests and reply iod by iod.
    let reqs: Vec<(u64, NodeId, Vec<ByteRange>)> = {
        let tap = rig.eng.actor_as::<WireTap>(rig.tap).unwrap();
        tap.sent
            .iter()
            .filter_map(|m| m.peek::<ReadReq>().map(|rr| (rr.req_id, m.dst, rr.ranges.clone())))
            .collect()
    };
    assert_eq!(reqs.len(), 2);
    let to_client = (NodeId(1), Port(CLIENT_PORT_BASE));
    // First iod: ack + data. Client must NOT complete yet.
    let (req_id, iod, ranges) = reqs[0].clone();
    let ack = ReadAck { req_id, bytes: ranges.iter().map(|r| r.len as u64).sum() };
    rig.eng.post(
        Dur::ZERO,
        rig.host,
        Deliver(NetMessage::new((iod, Port(7000)), to_client, 64, 0, ack)),
    );
    for r in &ranges {
        let rd = ReadData {
            req_id,
            fid: Fid(5),
            range: *r,
            data: pvfs::pattern_bytes(Fid(5), r.offset, r.len as usize),
        };
        rig.eng.post(
            Dur::ZERO,
            rig.host,
            Deliver(NetMessage::new((iod, Port(7000)), to_client, 64 + r.len, 0, rd)),
        );
    }
    rig.eng.run();
    assert!(
        rig.eng.actor_as::<Host>(rig.host).unwrap().completions.len() <= 1,
        "read must not complete with an iod outstanding"
    );
    let before = rig.eng.actor_as::<Host>(rig.host).unwrap().completions.len();
    // Second iod.
    let (req_id, iod, ranges) = reqs[1].clone();
    let ack = ReadAck { req_id, bytes: ranges.iter().map(|r| r.len as u64).sum() };
    rig.eng.post(
        Dur::ZERO,
        rig.host,
        Deliver(NetMessage::new((iod, Port(7000)), to_client, 64, 0, ack)),
    );
    for r in &ranges {
        let rd = ReadData {
            req_id,
            fid: Fid(5),
            range: *r,
            data: pvfs::pattern_bytes(Fid(5), r.offset, r.len as usize),
        };
        rig.eng.post(
            Dur::ZERO,
            rig.host,
            Deliver(NetMessage::new((iod, Port(7000)), to_client, 64 + r.len, 0, rd)),
        );
    }
    rig.eng.run();
    let h = rig.eng.actor_as::<Host>(rig.host).unwrap();
    assert_eq!(h.completions.len(), before + 1, "read completes after the last iod");
    let c = h.completions.last().unwrap();
    match c {
        Completion::Read { bytes, latency, .. } => {
            assert_eq!(*bytes, 128 << 10);
            assert!(*latency > Dur::ZERO);
        }
        other => panic!("expected read completion, got {:?}", other),
    }
}

#[test]
fn write_completes_on_all_acks_and_carries_pattern_data() {
    let mut rig = rig();
    install_handle(&mut rig, handle(5, 16 << 20, 2));
    with_client(&mut rig, |client, ctx| {
        client.write(ctx, Fid(5), 65536, 65536, false);
    });
    let reqs: Vec<(u64, NodeId)> = {
        let tap = rig.eng.actor_as::<WireTap>(rig.tap).unwrap();
        tap.sent
            .iter()
            .filter_map(|m| {
                m.peek::<WriteReq>().map(|wr| {
                    // Data must be the deterministic pattern.
                    for part in &wr.parts {
                        let expect =
                            pvfs::pattern_bytes(Fid(5), part.range.offset, part.range.len as usize);
                        assert_eq!(part.data, expect, "write payload must be pattern bytes");
                    }
                    (wr.req_id, m.dst)
                })
            })
            .collect()
    };
    assert_eq!(reqs.len(), 1, "64 KB at offset 64 KB sits in one stripe unit");
    let (req_id, iod) = reqs[0];
    let to_client = (NodeId(1), Port(CLIENT_PORT_BASE));
    let ack = WriteAck { req_id, bytes: 65536 };
    rig.eng.post(
        Dur::ZERO,
        rig.host,
        Deliver(NetMessage::new((iod, Port(7000)), to_client, 64, 0, ack)),
    );
    rig.eng.run();
    let h = rig.eng.actor_as::<Host>(rig.host).unwrap();
    assert!(matches!(h.completions.last(), Some(Completion::Write { bytes: 65536, .. })));
    assert_eq!(h.client.stats().writes, 1);
}
